"""Whole-pipeline fusion of narrow RDD transformations.

Chains of narrow transformations (``map``, ``filter``, ``flatMap``) on
the substrate used to evaluate as a tower of nested generators — one
Python frame per operator per record.  Following Flare's whole-stage
code generation, this module collapses a chain into **one** compiled
generator function per partition: element-wise operators become inlined
statements of a single loop body, so a record flows through the whole
chain without ever crossing a generator frame boundary, and no
intermediate list is materialized.

The fused pipeline is recomposed *fresh on every partition evaluation*
(see :func:`run_pipeline`), so re-running a task — lineage recovery or a
speculative backup attempt — never shares iterator state with a
previous attempt.

Generated code is cached by the *shape* of the chain (the tuple of
operator kinds); the user functions are passed as arguments, so two
different ``map().filter()`` chains share one compiled code object.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

#: Element-wise operator kinds — fusable into one loop body.
KIND_MAP = "map"
KIND_FILTER = "filter"
KIND_FLATMAP = "flatmap"
#: Partition-level operator kinds — pipeline breakers inside a chain
#: (the whole partition iterator is handed to the function), but still
#: part of the fused per-partition pipeline: no intermediate list.
KIND_PARTITION = "partition"
KIND_PARTITION_INDEX = "partition_index"

_ELEMENT_KINDS = frozenset((KIND_MAP, KIND_FILTER, KIND_FLATMAP))


class NarrowOp:
    """One narrow transformation in a fusable chain."""

    __slots__ = ("kind", "func")

    def __init__(self, kind: str, func: Callable):
        self.kind = kind
        self.func = func

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NarrowOp({})".format(self.kind)


#: Compiled pipeline code objects, keyed by the chain's kind tuple.
_SEGMENT_CACHE: Dict[Tuple[str, ...], Callable] = {}


def _compile_segment(kinds: Tuple[str, ...]) -> Callable:
    """Generate one Python generator function fusing ``kinds``.

    ``map`` becomes an assignment, ``filter`` a ``continue`` guard and
    ``flatMap`` a nested ``for`` — all in a single loop body, exactly
    the loop a developer would hand-write for the chain.
    """
    cached = _SEGMENT_CACHE.get(kinds)
    if cached is not None:
        return cached
    names = ["_f{}".format(index) for index in range(len(kinds))]
    lines = ["def _fused(_source, {}):".format(", ".join(names))]
    indent = "    "
    lines.append(indent + "for _v0 in _source:")
    indent += "    "
    var = "_v0"
    for index, kind in enumerate(kinds):
        out = "_v{}".format(index + 1)
        if kind == KIND_MAP:
            lines.append("{}{} = _f{}({})".format(indent, out, index, var))
            var = out
        elif kind == KIND_FILTER:
            lines.append("{}if not _f{}({}):".format(indent, index, var))
            lines.append(indent + "    continue")
        else:  # flatmap
            lines.append("{}for {} in _f{}({}):".format(
                indent, out, index, var
            ))
            indent += "    "
            var = out
    lines.append(indent + "yield " + var)
    source = "\n".join(lines)
    namespace: Dict[str, Any] = {}
    exec(compile(source, "<fused:{}>".format("+".join(kinds)), "exec"),
         namespace)
    fused = namespace["_fused"]
    fused._fusion_source = source
    _SEGMENT_CACHE[kinds] = fused
    return fused


def run_pipeline(
    ops: Sequence[NarrowOp], split: int, source: Iterator[Any]
) -> Iterator[Any]:
    """Compose ``ops`` over ``source`` for partition ``split``.

    Consecutive element-wise operators run as one generated loop;
    partition-level operators (``mapPartitions`` and friends) break the
    stream into segments but stay inside the same per-partition
    pipeline.  Every call builds fresh generators, so concurrent or
    repeated attempts at the same task never share state.
    """
    stream = source
    index = 0
    total = len(ops)
    while index < total:
        op = ops[index]
        if op.kind in _ELEMENT_KINDS:
            end = index
            while end < total and ops[end].kind in _ELEMENT_KINDS:
                end += 1
            segment = ops[index:end]
            fused = _compile_segment(tuple(op.kind for op in segment))
            stream = fused(stream, *[op.func for op in segment])
            index = end
        elif op.kind == KIND_PARTITION:
            stream = iter(op.func(stream))
            index += 1
        else:  # KIND_PARTITION_INDEX
            stream = iter(op.func(split, stream))
            index += 1
    return stream


def legacy_transform(
    kind: str, func: Callable
) -> Callable[[int, Iterator[Any]], Iterator[Any]]:
    """The unfused (one generator frame per operator) transform for
    ``kind`` — the pre-fusion evaluation path, kept as the reference
    semantics the property tests compare against."""
    if kind == KIND_MAP:
        return lambda _, part: (func(record) for record in part)
    if kind == KIND_FILTER:
        return lambda _, part: (r for r in part if func(r))
    if kind == KIND_FLATMAP:
        return lambda _, part: (
            out for record in part for out in func(record)
        )
    if kind == KIND_PARTITION:
        return lambda _, part: iter(func(part))
    if kind == KIND_PARTITION_INDEX:
        return lambda split, part: iter(func(split, part))
    raise ValueError("unknown narrow-op kind: {}".format(kind))


def fused_chain(rdd) -> List[NarrowOp]:
    """The operators this RDD fuses with, outermost parent first.

    Stops at the first ancestor that is not a fusable narrow child or
    that has materialized (cached) partitions — that ancestor is the
    pipeline's source.  Used by :meth:`RDD._compute_fused`, the explain
    output and the fusion tests.
    """
    ops: List[NarrowOp] = []
    node = rdd
    while node._fuse_op is not None and node._cache is None:
        ops.append(node._fuse_op)
        node = node._fuse_parent
    ops.reverse()
    return ops


def fusion_source(rdd):
    """The ancestor RDD a fused chain reads from (see :func:`fused_chain`)."""
    node = rdd
    while node._fuse_op is not None and node._cache is None:
        node = node._fuse_parent
    return node


def describe_chain(rdd) -> str:
    """``map+filter+flatmap``-style summary of an RDD's fused chain.

    An operator function may carry a ``_columnar_label`` attribute (set
    by the columnar boxing boundary, e.g. ``unbox[$v]``) that replaces
    its generic kind in the summary."""
    ops = fused_chain(rdd)
    if not ops:
        return "(unfused)"
    return "+".join(
        getattr(op.func, "_columnar_label", op.kind) for op in ops
    )
