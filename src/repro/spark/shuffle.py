"""Partitioners and the shuffle used by wide transformations.

A *shuffle* redistributes records across partitions by key, exactly as
Spark does between map and reduce stages.  The implementation keeps per-
shuffle metrics (records and approximate bytes moved) so benchmarks can
report data movement the way Spark's UI does.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Sequence, Tuple

from repro.sanitizer import san_lock, shared_state


class Partitioner:
    """Maps a key to a partition index in ``range(num_partitions)``."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions

    def partition_for(self, key: Any) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Spark's default partitioner: ``hash(key) mod n``.

    Python randomizes string hashes per process; for deterministic tests we
    hash the pickled key with a stable algorithm instead.
    """

    def partition_for(self, key: Any) -> int:
        return stable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Range partitioner used by sortByKey: samples bounds, then bisects."""

    def __init__(self, num_partitions: int, keys: Sequence[Any],
                 key_func: Callable[[Any], Any] = lambda key: key):
        super().__init__(num_partitions)
        self._key_func = key_func
        sample = sorted(key_func(key) for key in keys)
        bounds = []
        if sample and num_partitions > 1:
            step = len(sample) / num_partitions
            bounds = [
                sample[min(len(sample) - 1, int(step * i))]
                for i in range(1, num_partitions)
            ]
        self.bounds = bounds

    def partition_for(self, key: Any) -> int:
        target = self._key_func(key)
        low, high = 0, len(self.bounds)
        while low < high:
            mid = (low + high) // 2
            if target <= self.bounds[mid]:
                high = mid
            else:
                low = mid + 1
        return low


def stable_hash(key: Any) -> int:
    """A process-stable, deterministic hash for arbitrary picklable keys.

    Tuples (the common shuffle key shape), strings, numbers, booleans and
    None are hashed structurally; anything else falls back to hashing its
    pickle, which stays deterministic but costs a serialization.
    """
    kind = type(key)
    if kind is str:
        return zlib.crc32(key.encode("utf-8")) & 0x7FFFFFFF
    if kind is bool:
        return 7 if key else 11
    if kind is int:
        return key & 0x7FFFFFFF
    if key is None:
        return 5381
    if kind is float:
        if key == int(key) and abs(key) < 2 ** 31:
            return int(key) & 0x7FFFFFFF
        return zlib.crc32(repr(key).encode()) & 0x7FFFFFFF
    if kind is tuple:
        value = 2166136261
        for part in key:
            value = (value * 16777619 + stable_hash(part)) & 0x7FFFFFFF
        return value
    return zlib.crc32(pickle.dumps(key, protocol=4)) & 0x7FFFFFFF


@dataclass
class ShuffleMetrics:
    """Accumulated cost of the shuffles executed by one context.

    ``measure_bytes`` makes every shuffle also pickle its records to
    weigh them — expensive, so it is off by default and only switched on
    by benchmarks that report data movement.
    """

    shuffles: int = 0
    records: int = 0
    bytes: int = 0
    measure_bytes: bool = False
    #: Optional observability sink (``observer.on_shuffle(count, size)``);
    #: attached by :meth:`repro.obs.Observability.attach` during profiling.
    observer: object = None

    def record(self, count: int, size: int) -> None:
        self.shuffles += 1
        self.records += count
        self.bytes += size
        if self.observer is not None:
            self.observer.on_shuffle(count, size)

    def reset(self) -> None:
        self.shuffles = 0
        self.records = 0
        self.bytes = 0


def bucketize(
    pairs: Iterable[Tuple[Any, Any]],
    partitioner: Partitioner,
    weigh: bool = False,
) -> Tuple[List[List[Tuple[Any, Any]]], int, int, List[int]]:
    """Route one map partition's pairs into per-reducer buckets.

    This is the *map side* of a shuffle: the returned bucket list is the
    map output one task writes, kept separately per producing partition
    so a lost output can be recomputed alone (lineage recovery).
    Returns ``(buckets, records_moved, approximate_bytes, bucket_bytes)``
    where ``bucket_bytes[i]`` is the pickled size of bucket ``i`` (all
    zeros unless ``weigh``).  Each pair is pickled at most once; the
    same measurement feeds both :class:`ShuffleMetrics` and the
    per-bucket :class:`ShuffleStats`.
    """
    buckets: List[List[Tuple[Any, Any]]] = [
        [] for _ in range(partitioner.num_partitions)
    ]
    bucket_bytes = [0] * partitioner.num_partitions
    moved = 0
    size = 0
    for pair in pairs:
        target = partitioner.partition_for(pair[0])
        buckets[target].append(pair)
        moved += 1
        if weigh:
            weight = len(pickle.dumps(pair, protocol=4))
            size += weight
            bucket_bytes[target] += weight
    return buckets, moved, size, bucket_bytes


def shuffle_pairs(
    partitions: Iterable[Iterable[Tuple[Any, Any]]],
    partitioner: Partitioner,
    metrics: "ShuffleMetrics | None" = None,
    measure_bytes: bool = False,
) -> List[List[Tuple[Any, Any]]]:
    """Redistribute key-value pairs into ``partitioner.num_partitions``
    output partitions.  This is the materialization point of a stage
    boundary: everything upstream is evaluated here.
    """
    buckets: List[List[Tuple[Any, Any]]] = [
        [] for _ in range(partitioner.num_partitions)
    ]
    moved = 0
    size = 0
    weigh = measure_bytes or (metrics is not None and metrics.measure_bytes)
    for partition in partitions:
        part_buckets, part_moved, part_size, _ = bucketize(
            partition, partitioner, weigh
        )
        for index, bucket in enumerate(part_buckets):
            buckets[index].extend(bucket)
        moved += part_moved
        size += part_size
    if metrics is not None:
        metrics.record(moved, size)
    return buckets


@shared_state
class ShuffleStats:
    """Per-bucket map-output statistics attached to one stage boundary.

    Filled map partition by map partition as ``bucketize`` runs; the
    reduce side reads it to coalesce small buckets and split skewed
    ones.  Record counts are always exact; byte sizes are only filled
    when the shuffle weighed its pairs (``measure_bytes`` profiling or a
    bounded memory budget) — the adaptive planner falls back to record
    counts otherwise, so unmeasured runs pay no pickling cost.

    Mutation is locked: under the threaded executor two map tasks of
    one stage land their outputs concurrently, and both the per-bucket
    ``+=`` totals and the ``weighed`` flag are read-modify-writes.
    """

    def __init__(self, num_buckets: int):
        self.num_buckets = num_buckets
        self.records = [0] * num_buckets
        self.bytes = [0] * num_buckets
        #: Per map partition, per bucket record counts — the skew
        #: splitter uses these to cut a hot bucket into contiguous
        #: map-output ranges of roughly equal size.
        self.map_records: List[List[int]] = []
        self.map_bytes: List[List[int]] = []
        self.weighed = False
        self._lock = san_lock("spark.shuffle.stats")

    def add_map_output(
        self,
        buckets: Sequence[Sequence[Any]],
        bucket_bytes: Sequence[int],
        weighed: bool,
    ) -> None:
        counts = [len(bucket) for bucket in buckets]
        with self._lock:
            self.map_records.append(counts)
            self.map_bytes.append(list(bucket_bytes))
            for index, count in enumerate(counts):
                self.records[index] += count
                self.bytes[index] += bucket_bytes[index]
            self.weighed = self.weighed or weighed

    @property
    def num_maps(self) -> int:
        return len(self.map_records)

    def weight(self, bucket: int) -> int:
        """The planning weight of a bucket: bytes when measured,
        record count otherwise."""
        return self.bytes[bucket] if self.weighed else self.records[bucket]

    def map_weights(self, bucket: int) -> List[int]:
        rows = self.map_bytes if self.weighed else self.map_records
        return [row[bucket] for row in rows]


@dataclass(frozen=True)
class AdaptedPartition:
    """One reduce partition of an adapted shuffle.

    ``buckets`` is a run of *adjacent* original bucket indexes served by
    this partition (length > 1 means they were coalesced).  When
    ``split_ranges`` is set the partition serves a single skewed bucket
    whose map outputs are processed as sub-tasks over the given
    half-open ``(map_lo, map_hi)`` ranges, merged after the wide op.
    """

    buckets: Tuple[int, ...]
    split_ranges: Tuple[Tuple[int, int], ...] = ()


def plan_adaptive_partitions(
    stats: ShuffleStats,
    target_bytes: int,
    skew_factor: float,
    target_records: int = 4096,
) -> Tuple[List[AdaptedPartition], dict]:
    """Turn measured per-bucket sizes into an adapted partitioning.

    Adjacent buckets are greedily coalesced until the running weight
    reaches the target (bytes when the shuffle was weighed, records
    otherwise).  A bucket heavier than ``skew_factor`` times the median
    non-empty bucket is kept alone and split into contiguous map-output
    ranges.  Returns ``(partitions, info)`` where ``info`` carries the
    numbers the ledger and ``explain()`` report.

    Coalescing only ever merges *adjacent* buckets, which preserves the
    exact record order a non-adaptive run produces: hash buckets are
    key-disjoint, and range-partitioned sort buckets cover adjacent key
    ranges, so processing the concatenated stream through the same
    per-bucket operator yields byte-identical output.
    """
    target = target_bytes if stats.weighed else target_records
    weights = [stats.weight(index) for index in range(stats.num_buckets)]
    nonzero = sorted(weight for weight in weights if weight > 0)
    median = nonzero[len(nonzero) // 2] if nonzero else 0
    skew_cut = skew_factor * median if median else float("inf")

    partitions: List[AdaptedPartition] = []
    splits: List[dict] = []
    run: List[int] = []
    run_weight = 0

    def flush_run() -> None:
        nonlocal run, run_weight
        if run:
            partitions.append(AdaptedPartition(buckets=tuple(run)))
            run = []
            run_weight = 0

    for index, weight in enumerate(weights):
        skewed = (
            weight > skew_cut
            and weight > max(1, target // 4)
            and stats.num_maps > 1
        )
        if skewed:
            flush_run()
            ranges = _split_map_ranges(
                stats.map_weights(index), weight, target
            )
            if len(ranges) > 1:
                partitions.append(
                    AdaptedPartition(
                        buckets=(index,), split_ranges=tuple(ranges)
                    )
                )
                splits.append({
                    "bucket": index,
                    "weight": weight,
                    "median": median,
                    "subtasks": len(ranges),
                })
                continue
            # A single map produced the whole bucket: nothing to split.
        if run and run_weight + weight > target:
            flush_run()
        run.append(index)
        run_weight += weight
    flush_run()
    if not partitions:
        partitions.append(AdaptedPartition(buckets=(0,)))
    info = {
        "buckets": stats.num_buckets,
        "partitions": len(partitions),
        "coalesced": stats.num_buckets - len(partitions),
        "splits": splits,
        "weighed": stats.weighed,
        "target": target,
    }
    return partitions, info


def _split_map_ranges(
    map_weights: List[int], total: int, target: int
) -> List[Tuple[int, int]]:
    """Cut ``range(len(map_weights))`` into contiguous chunks of roughly
    ``total / n`` weight, where ``n = clamp(total/target, 2, num_maps)``."""
    num_maps = len(map_weights)
    chunks = max(2, -(-total // max(1, target)))
    chunks = min(chunks, num_maps)
    per_chunk = total / chunks
    ranges: List[Tuple[int, int]] = []
    start = 0
    acc = 0
    for index, weight in enumerate(map_weights):
        acc += weight
        remaining_maps = num_maps - index - 1
        remaining_chunks = len(ranges) + 1
        if acc >= per_chunk * remaining_chunks and remaining_maps >= 1 \
                and len(ranges) < chunks - 1:
            ranges.append((start, index + 1))
            start = index + 1
    ranges.append((start, num_maps))
    return [r for r in ranges if r[0] < r[1]]


class AdaptiveRuntime:
    """Per-context adaptive-execution switchboard and ledger.

    Holds the configuration knobs, always-on counters (``counts``), and
    the re-plan ledger that ``Rumble.explain()`` renders after a run.
    When an :class:`repro.obs.Observability` instance is attached as
    ``observer``, every recorded decision is mirrored to
    ``rumble.adaptive.*`` counters and the event log.
    """

    def __init__(
        self,
        enabled: bool = True,
        target_bytes: int = 1 << 20,
        skew_factor: float = 4.0,
        target_records: int = 4096,
    ):
        self.enabled = enabled
        self.target_bytes = target_bytes
        self.skew_factor = skew_factor
        self.target_records = target_records
        self.counts: dict = {}
        self.entries: List[dict] = []
        self.observer = None

    def plan(self, stats: ShuffleStats) -> Tuple[List[AdaptedPartition], dict]:
        return plan_adaptive_partitions(
            stats, self.target_bytes, self.skew_factor, self.target_records
        )

    def record(self, counter: str, value: int = 1) -> None:
        self.counts[counter] = self.counts.get(counter, 0) + value
        if self.observer is not None:
            self.observer.on_adaptive(counter, value)

    def record_shuffle(self, shuffle_id: int, name: str, info: dict) -> None:
        """Ledger one adapted stage boundary (and its skew splits)."""
        if info["coalesced"] > 0:
            self.record("coalesced_buckets", info["coalesced"])
            self.record("coalesce_plans")
        for split in info["splits"]:
            self.record("skew_splits")
            self.record("skew_subtasks", split["subtasks"])
        entry = dict(info, kind="shuffle", shuffle_id=shuffle_id, name=name)
        self.entries.append(entry)
        if self.observer is not None:
            self.observer.on_adaptive_event(entry)

    def record_join_replan(
        self,
        initial: str,
        final: str,
        left_rows: int,
        right_rows: int,
        threshold: int,
    ) -> None:
        self.record("join_replans")
        entry = {
            "kind": "join",
            "initial": initial,
            "final": final,
            "left_rows": left_rows,
            "right_rows": right_rows,
            "threshold": threshold,
        }
        self.entries.append(entry)
        if self.observer is not None:
            self.observer.on_adaptive_event(entry)

    def reset(self) -> None:
        self.counts = {}
        self.entries = []
