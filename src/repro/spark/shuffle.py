"""Partitioners and the shuffle used by wide transformations.

A *shuffle* redistributes records across partitions by key, exactly as
Spark does between map and reduce stages.  The implementation keeps per-
shuffle metrics (records and approximate bytes moved) so benchmarks can
report data movement the way Spark's UI does.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Sequence, Tuple


class Partitioner:
    """Maps a key to a partition index in ``range(num_partitions)``."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions

    def partition_for(self, key: Any) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Spark's default partitioner: ``hash(key) mod n``.

    Python randomizes string hashes per process; for deterministic tests we
    hash the pickled key with a stable algorithm instead.
    """

    def partition_for(self, key: Any) -> int:
        return stable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Range partitioner used by sortByKey: samples bounds, then bisects."""

    def __init__(self, num_partitions: int, keys: Sequence[Any],
                 key_func: Callable[[Any], Any] = lambda key: key):
        super().__init__(num_partitions)
        self._key_func = key_func
        sample = sorted(key_func(key) for key in keys)
        bounds = []
        if sample and num_partitions > 1:
            step = len(sample) / num_partitions
            bounds = [
                sample[min(len(sample) - 1, int(step * i))]
                for i in range(1, num_partitions)
            ]
        self.bounds = bounds

    def partition_for(self, key: Any) -> int:
        target = self._key_func(key)
        low, high = 0, len(self.bounds)
        while low < high:
            mid = (low + high) // 2
            if target <= self.bounds[mid]:
                high = mid
            else:
                low = mid + 1
        return low


def stable_hash(key: Any) -> int:
    """A process-stable, deterministic hash for arbitrary picklable keys.

    Tuples (the common shuffle key shape), strings, numbers, booleans and
    None are hashed structurally; anything else falls back to hashing its
    pickle, which stays deterministic but costs a serialization.
    """
    kind = type(key)
    if kind is str:
        return zlib.crc32(key.encode("utf-8")) & 0x7FFFFFFF
    if kind is bool:
        return 7 if key else 11
    if kind is int:
        return key & 0x7FFFFFFF
    if key is None:
        return 5381
    if kind is float:
        if key == int(key) and abs(key) < 2 ** 31:
            return int(key) & 0x7FFFFFFF
        return zlib.crc32(repr(key).encode()) & 0x7FFFFFFF
    if kind is tuple:
        value = 2166136261
        for part in key:
            value = (value * 16777619 + stable_hash(part)) & 0x7FFFFFFF
        return value
    return zlib.crc32(pickle.dumps(key, protocol=4)) & 0x7FFFFFFF


@dataclass
class ShuffleMetrics:
    """Accumulated cost of the shuffles executed by one context.

    ``measure_bytes`` makes every shuffle also pickle its records to
    weigh them — expensive, so it is off by default and only switched on
    by benchmarks that report data movement.
    """

    shuffles: int = 0
    records: int = 0
    bytes: int = 0
    measure_bytes: bool = False
    #: Optional observability sink (``observer.on_shuffle(count, size)``);
    #: attached by :meth:`repro.obs.Observability.attach` during profiling.
    observer: object = None

    def record(self, count: int, size: int) -> None:
        self.shuffles += 1
        self.records += count
        self.bytes += size
        if self.observer is not None:
            self.observer.on_shuffle(count, size)

    def reset(self) -> None:
        self.shuffles = 0
        self.records = 0
        self.bytes = 0


def bucketize(
    pairs: Iterable[Tuple[Any, Any]],
    partitioner: Partitioner,
    weigh: bool = False,
) -> Tuple[List[List[Tuple[Any, Any]]], int, int]:
    """Route one map partition's pairs into per-reducer buckets.

    This is the *map side* of a shuffle: the returned bucket list is the
    map output one task writes, kept separately per producing partition
    so a lost output can be recomputed alone (lineage recovery).
    Returns ``(buckets, records_moved, approximate_bytes)``.
    """
    buckets: List[List[Tuple[Any, Any]]] = [
        [] for _ in range(partitioner.num_partitions)
    ]
    moved = 0
    size = 0
    for pair in pairs:
        buckets[partitioner.partition_for(pair[0])].append(pair)
        moved += 1
        if weigh:
            size += len(pickle.dumps(pair, protocol=4))
    return buckets, moved, size


def shuffle_pairs(
    partitions: Iterable[Iterable[Tuple[Any, Any]]],
    partitioner: Partitioner,
    metrics: "ShuffleMetrics | None" = None,
    measure_bytes: bool = False,
) -> List[List[Tuple[Any, Any]]]:
    """Redistribute key-value pairs into ``partitioner.num_partitions``
    output partitions.  This is the materialization point of a stage
    boundary: everything upstream is evaluated here.
    """
    buckets: List[List[Tuple[Any, Any]]] = [
        [] for _ in range(partitioner.num_partitions)
    ]
    moved = 0
    size = 0
    weigh = measure_bytes or (metrics is not None and metrics.measure_bytes)
    for partition in partitions:
        part_buckets, part_moved, part_size = bucketize(
            partition, partitioner, weigh
        )
        for index, bucket in enumerate(part_buckets):
            buckets[index].extend(bucket)
        moved += part_moved
        size += part_size
    if metrics is not None:
        metrics.record(moved, size)
    return buckets
