"""DataFrame schema types, rows, and schema inference.

Schema inference deliberately reproduces the behaviour the paper criticizes
in Figure 6: when a column holds values of incompatible types across rows
(heterogeneity), the column degrades to ``StringType`` and the original type
information is lost; absent values become NULLs.  Rumble's whole pitch is
that its Item-based model does *not* do this.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional


class DataType:
    """Base class of DataFrame column types."""

    name = "data"

    def simple_string(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))

    def __repr__(self) -> str:
        return self.simple_string()


class NullType(DataType):
    name = "null"


class BooleanType(DataType):
    name = "boolean"


class LongType(DataType):
    name = "bigint"


class DoubleType(DataType):
    name = "double"


class StringType(DataType):
    name = "string"


class ArrayType(DataType):
    name = "array"

    def __init__(self, element_type: DataType):
        self.element_type = element_type

    def simple_string(self) -> str:
        return "array<{}>".format(self.element_type.simple_string())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element_type == self.element_type
        )

    def __hash__(self) -> int:
        return hash(("array", self.element_type))


class StructField:
    """One named, typed column of a struct."""

    def __init__(self, name: str, data_type: DataType, nullable: bool = True):
        self.name = name
        self.data_type = data_type
        self.nullable = nullable

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StructField)
            and other.name == self.name
            and other.data_type == self.data_type
        )

    def __repr__(self) -> str:
        return "StructField({}, {})".format(self.name, self.data_type)


class StructType(DataType):
    name = "struct"

    def __init__(self, fields: Optional[List[StructField]] = None):
        self.fields = fields or []

    @property
    def field_names(self) -> List[str]:
        return [field.name for field in self.fields]

    def field(self, name: str) -> StructField:
        for field in self.fields:
            if field.name == name:
                return field
        raise KeyError("no field named {!r}".format(name))

    def has_field(self, name: str) -> bool:
        return any(field.name == name for field in self.fields)

    def simple_string(self) -> str:
        inner = ", ".join(
            "{}:{}".format(f.name, f.data_type.simple_string())
            for f in self.fields
        )
        return "struct<{}>".format(inner)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.fields == self.fields

    def __hash__(self) -> int:
        return hash(tuple((f.name, f.data_type) for f in self.fields))


class Row:
    """An ordered, named record — dictionary access plus attribute access."""

    __slots__ = ("_values",)

    def __init__(self, **values: Any):
        object.__setattr__(self, "_values", values)

    @classmethod
    def from_dict(cls, values: Dict[str, Any]) -> "Row":
        row = cls.__new__(cls)
        object.__setattr__(row, "_values", dict(values))
        return row

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._values)

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def __getattr__(self, key: str) -> Any:
        try:
            return self._values[key]
        except KeyError as error:
            raise AttributeError(key) from error

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __iter__(self):
        return iter(self._values.values())

    def keys(self):
        return self._values.keys()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Row) and other._values == self._values

    def __hash__(self) -> int:
        return hash(tuple(sorted(
            (k, _hashable(v)) for k, v in self._values.items()
        )))

    def __repr__(self) -> str:
        inner = ", ".join(
            "{}={!r}".format(k, v) for k, v in self._values.items()
        )
        return "Row({})".format(inner)


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


# -- Schema inference ---------------------------------------------------------

def infer_type(value: Any) -> DataType:
    """The narrowest DataFrame type of one Python value."""
    if value is None:
        return NullType()
    if isinstance(value, bool):
        return BooleanType()
    if isinstance(value, int):
        return LongType()
    if isinstance(value, float):
        return DoubleType()
    if isinstance(value, str):
        return StringType()
    if isinstance(value, list):
        element: DataType = NullType()
        for member in value:
            element = merge_types(element, infer_type(member))
        return ArrayType(element)
    if isinstance(value, dict):
        return StructType(
            [StructField(str(k), infer_type(v)) for k, v in value.items()]
        )
    return StringType()


def merge_types(left: DataType, right: DataType) -> DataType:
    """Widen two observed types into a common column type.

    Compatible numerics widen (long + double -> double); anything
    genuinely incompatible collapses to string — the Figure 6 behaviour.
    """
    if left == right:
        return left
    if isinstance(left, NullType):
        return right
    if isinstance(right, NullType):
        return left
    numeric = (LongType, DoubleType)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return DoubleType()
    if isinstance(left, ArrayType) and isinstance(right, ArrayType):
        return ArrayType(merge_types(left.element_type, right.element_type))
    if isinstance(left, StructType) and isinstance(right, StructType):
        merged: Dict[str, DataType] = {}
        for field in left.fields + right.fields:
            if field.name in merged:
                merged[field.name] = merge_types(
                    merged[field.name], field.data_type
                )
            else:
                merged[field.name] = field.data_type
        return StructType(
            [StructField(name, dtype) for name, dtype in merged.items()]
        )
    return StringType()


def infer_schema(records: Iterable[Dict[str, Any]]) -> StructType:
    """Infer a struct schema over a collection of dict records."""
    columns: Dict[str, DataType] = {}
    for record in records:
        for key, value in record.items():
            key = str(key)
            observed = infer_type(value)
            if key in columns:
                columns[key] = merge_types(columns[key], observed)
            else:
                columns[key] = observed
    return StructType(
        [StructField(name, dtype) for name, dtype in sorted(columns.items())]
    )


def coerce_value(value: Any, data_type: DataType) -> Any:
    """Force a raw value into a column's type, as DataFrame import does.

    This is where heterogeneity loses information: a list serialized into
    a string column becomes its JSON text, a boolean becomes ``"true"``,
    an absent value becomes ``None`` (Figure 6).
    """
    if value is None:
        return None
    if isinstance(data_type, StringType):
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (dict, list)):
            return json.dumps(value, separators=(",", ":"))
        return str(value)
    if isinstance(data_type, DoubleType):
        return float(value) if isinstance(value, (int, float)) else None
    if isinstance(data_type, LongType):
        return int(value) if isinstance(value, int) else None
    if isinstance(data_type, BooleanType):
        return bool(value) if isinstance(value, bool) else None
    if isinstance(data_type, ArrayType):
        if isinstance(value, list):
            return [coerce_value(v, data_type.element_type) for v in value]
        return None
    if isinstance(data_type, StructType):
        if isinstance(value, dict):
            return {
                field.name: coerce_value(value.get(field.name), field.data_type)
                for field in data_type.fields
            }
        return None
    return value


def coerce_record(record: Dict[str, Any], schema: StructType) -> Dict[str, Any]:
    """Project one raw record onto a schema (missing columns become NULL)."""
    return {
        field.name: coerce_value(record.get(field.name), field.data_type)
        for field in schema.fields
    }
