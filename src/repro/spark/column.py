"""Column expressions for the DataFrame API and the mini Spark SQL.

A :class:`Column` is a small expression tree evaluated against a row dict.
Both the programmatic DataFrame API (``col("age") > lit(65)``) and the SQL
front end compile to these nodes, so the optimizer and executor share one
representation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class Column:
    """An expression over the columns of a row."""

    def eval(self, row: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def references(self) -> List[str]:
        """Names of the columns this expression reads."""
        return []

    def output_name(self) -> str:
        """The column name this expression produces when selected."""
        return "col"

    # -- Operator sugar ------------------------------------------------------
    def alias(self, name: str) -> "Column":
        return Alias(self, name)

    def _binary(self, other: Any, op: str) -> "Column":
        return BinaryOp(self, _wrap(other), op)

    def __eq__(self, other: Any) -> "Column":  # type: ignore[override]
        return self._binary(other, "=")

    def __ne__(self, other: Any) -> "Column":  # type: ignore[override]
        return self._binary(other, "<>")

    def __lt__(self, other: Any) -> "Column":
        return self._binary(other, "<")

    def __le__(self, other: Any) -> "Column":
        return self._binary(other, "<=")

    def __gt__(self, other: Any) -> "Column":
        return self._binary(other, ">")

    def __ge__(self, other: Any) -> "Column":
        return self._binary(other, ">=")

    def __add__(self, other: Any) -> "Column":
        return self._binary(other, "+")

    def __sub__(self, other: Any) -> "Column":
        return self._binary(other, "-")

    def __mul__(self, other: Any) -> "Column":
        return self._binary(other, "*")

    def __truediv__(self, other: Any) -> "Column":
        return self._binary(other, "/")

    def __and__(self, other: Any) -> "Column":
        return self._binary(other, "AND")

    def __or__(self, other: Any) -> "Column":
        return self._binary(other, "OR")

    def __invert__(self) -> "Column":
        return UnaryOp(self, "NOT")

    def is_null(self) -> "Column":
        return UnaryOp(self, "ISNULL")

    def is_not_null(self) -> "Column":
        return UnaryOp(self, "ISNOTNULL")

    def asc(self) -> "SortOrder":
        return SortOrder(self, ascending=True)

    def desc(self) -> "SortOrder":
        return SortOrder(self, ascending=False)

    def __hash__(self) -> int:  # Columns land in sets during analysis.
        return id(self)


class ColumnRef(Column):
    """A reference to a named column, with optional ``a.b.c`` struct path."""

    def __init__(self, name: str):
        self.name = name
        self.path = name.split(".")

    def eval(self, row: Dict[str, Any]) -> Any:
        if self.name in row:
            return row[self.name]
        value: Any = row
        for step in self.path:
            if isinstance(value, dict) and step in value:
                value = value[step]
            else:
                return None
        return value

    def references(self) -> List[str]:
        return [self.path[0]]

    def output_name(self) -> str:
        return self.path[-1]

    def __repr__(self) -> str:
        return "col({})".format(self.name)


class Literal(Column):
    def __init__(self, value: Any):
        self.value = value

    def eval(self, row: Dict[str, Any]) -> Any:
        return self.value

    def output_name(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return "lit({!r})".format(self.value)


class BinaryOp(Column):
    """SQL three-valued-logic binary operators."""

    def __init__(self, left: Column, right: Column, op: str):
        self.left = left
        self.right = right
        self.op = op

    def eval(self, row: Dict[str, Any]) -> Any:
        op = self.op
        if op == "AND":
            lhs = self.left.eval(row)
            if lhs is False:
                return False
            rhs = self.right.eval(row)
            if rhs is False:
                return False
            return None if lhs is None or rhs is None else True
        if op == "OR":
            lhs = self.left.eval(row)
            if lhs is True:
                return True
            rhs = self.right.eval(row)
            if rhs is True:
                return True
            return None if lhs is None or rhs is None else False
        lhs = self.left.eval(row)
        rhs = self.right.eval(row)
        if lhs is None or rhs is None:
            return None
        if op == "=":
            return lhs == rhs
        if op == "<>":
            return lhs != rhs
        try:
            if op == "<":
                return lhs < rhs
            if op == "<=":
                return lhs <= rhs
            if op == ">":
                return lhs > rhs
            if op == ">=":
                return lhs >= rhs
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                return lhs / rhs if rhs != 0 else None
            if op == "%":
                return lhs % rhs if rhs != 0 else None
        except TypeError:
            return None
        raise ValueError("unknown operator " + op)

    def references(self) -> List[str]:
        return self.left.references() + self.right.references()

    def output_name(self) -> str:
        return "({} {} {})".format(
            self.left.output_name(), self.op, self.right.output_name()
        )

    def __repr__(self) -> str:
        return "({!r} {} {!r})".format(self.left, self.op, self.right)


class UnaryOp(Column):
    def __init__(self, operand: Column, op: str):
        self.operand = operand
        self.op = op

    def eval(self, row: Dict[str, Any]) -> Any:
        value = self.operand.eval(row)
        if self.op == "NOT":
            return None if value is None else not value
        if self.op == "NEG":
            return None if value is None else -value
        if self.op == "ISNULL":
            return value is None
        if self.op == "ISNOTNULL":
            return value is not None
        raise ValueError("unknown unary operator " + self.op)

    def references(self) -> List[str]:
        return self.operand.references()

    def output_name(self) -> str:
        return "{}({})".format(self.op, self.operand.output_name())


class Alias(Column):
    def __init__(self, child: Column, name: str):
        self.child = child
        self.name = name

    def eval(self, row: Dict[str, Any]) -> Any:
        return self.child.eval(row)

    def references(self) -> List[str]:
        return self.child.references()

    def output_name(self) -> str:
        return self.name


class UdfColumn(Column):
    """A scalar user-defined function over whole rows or argument columns.

    This is the ``EVALUATE_EXPRESSION(a, b, c)`` of the paper's Section 4:
    Rumble's FLWOR clauses install Python callables here that rebuild a
    dynamic context from the row and evaluate a JSONiq expression.
    """

    def __init__(
        self,
        func: Callable[..., Any],
        args: Optional[List[Column]] = None,
        name: str = "udf",
        row_udf: bool = False,
    ):
        self.func = func
        self.args = args or []
        self.name = name
        #: When True the callable receives the whole row dict.
        self.row_udf = row_udf

    def eval(self, row: Dict[str, Any]) -> Any:
        if self.row_udf:
            return self.func(row)
        return self.func(*[arg.eval(row) for arg in self.args])

    def references(self) -> List[str]:
        if self.row_udf:
            return ["*"]
        return [ref for arg in self.args for ref in arg.references()]

    def output_name(self) -> str:
        return self.name


class CaseWhen(Column):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    def __init__(self, branches: List[tuple], default: Optional[Column]):
        #: list of (condition, value) pairs, evaluated in order
        self.branches = branches
        self.default = default

    def eval(self, row: Dict[str, Any]) -> Any:
        for condition, value in self.branches:
            if condition.eval(row) is True:
                return value.eval(row)
        return self.default.eval(row) if self.default is not None else None

    def references(self) -> List[str]:
        refs: List[str] = []
        for condition, value in self.branches:
            refs += condition.references() + value.references()
        if self.default is not None:
            refs += self.default.references()
        return refs

    def output_name(self) -> str:
        return "CASE"


class LikeColumn(Column):
    """SQL ``LIKE`` with ``%`` (any run) and ``_`` (one char) wildcards."""

    def __init__(self, operand: Column, pattern: str, negated: bool = False):
        import re

        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        pieces = []
        for char in pattern:
            if char == "%":
                pieces.append(".*")
            elif char == "_":
                pieces.append(".")
            else:
                pieces.append(re.escape(char))
        self._regex = re.compile("^" + "".join(pieces) + "$", re.DOTALL)

    def eval(self, row: Dict[str, Any]) -> Any:
        value = self.operand.eval(row)
        if value is None:
            return None
        matched = bool(self._regex.match(str(value)))
        return (not matched) if self.negated else matched

    def references(self) -> List[str]:
        return self.operand.references()

    def output_name(self) -> str:
        return "({} LIKE {!r})".format(self.operand.output_name(),
                                       self.pattern)


class ExplodeColumn(Column):
    """Marker for ``EXPLODE(expr)``: one output row per element.

    Evaluation returns the list; the projection operator in the DataFrame
    recognizes the marker and fans rows out (paper, Section 4.4).
    """

    def __init__(self, child: Column):
        self.child = child

    def eval(self, row: Dict[str, Any]) -> Any:
        value = self.child.eval(row)
        if value is None:
            return []
        if not isinstance(value, list):
            return [value]
        return value

    def references(self) -> List[str]:
        return self.child.references()

    def output_name(self) -> str:
        return "explode({})".format(self.child.output_name())


class SortOrder:
    """A sort specification: column plus direction."""

    def __init__(self, column: Column, ascending: bool = True):
        self.column = column
        self.ascending = ascending


def _wrap(value: Any) -> Column:
    return value if isinstance(value, Column) else Literal(value)


def col(name: str) -> ColumnRef:
    """Reference a column by name (PySpark's ``col``)."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """A literal column (PySpark's ``lit``)."""
    return Literal(value)


def explode(column: Column) -> ExplodeColumn:
    """Fan an array column out into one row per element."""
    return ExplodeColumn(_wrap(column))


def udf(func: Callable[..., Any], name: str = "udf") -> Callable[..., UdfColumn]:
    """Wrap a Python callable as a scalar UDF factory."""

    def build(*args: Any) -> UdfColumn:
        return UdfColumn(func, [_wrap(a) for a in args], name=name)

    return build


def row_udf(func: Callable[[Dict[str, Any]], Any], name: str = "udf") -> UdfColumn:
    """A UDF that sees the entire row, for Rumble's EVALUATE_EXPRESSION."""
    return UdfColumn(func, name=name, row_udf=True)
