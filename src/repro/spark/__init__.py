"""The Spark substrate: RDDs, DataFrames, mini Spark SQL, storage, cluster.

This package is the from-scratch stand-in for Apache Spark that Rumble's
mappings (paper, Section 4) execute on.  Public surface::

    from repro.spark import (
        SparkConf, SparkContext, SparkSession, RDD, DataFrame,
        col, lit, explode, Row,
    )
"""

from repro.spark.column import Column, SortOrder, col, explode, lit, row_udf, udf
from repro.spark.context import SparkConf, SparkContext, SparkSession
from repro.spark.faults import (
    ExecutorLostError,
    FaultManager,
    FaultPlan,
    ShuffleFetchFailure,
    TaskFailure,
)
from repro.spark.dataframe import (
    DataFrame,
    agg_avg,
    agg_collect_list,
    agg_count,
    agg_first,
    agg_max,
    agg_min,
    agg_sum,
)
from repro.spark.rdd import RDD
from repro.spark.types import Row, StructField, StructType

__all__ = [
    "SparkConf",
    "SparkContext",
    "SparkSession",
    "FaultPlan",
    "FaultManager",
    "TaskFailure",
    "ExecutorLostError",
    "ShuffleFetchFailure",
    "RDD",
    "DataFrame",
    "Row",
    "StructField",
    "StructType",
    "Column",
    "SortOrder",
    "col",
    "lit",
    "explode",
    "udf",
    "row_udf",
    "agg_count",
    "agg_sum",
    "agg_avg",
    "agg_min",
    "agg_max",
    "agg_collect_list",
    "agg_first",
]
