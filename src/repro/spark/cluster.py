"""Executor pool and cluster model.

The paper's cluster experiments (Figures 13-15) run Spark with a varying
number of executors.  Our substrate reproduces this with two cooperating
pieces:

* :class:`ExecutorPool` actually runs the tasks of a stage — inline, or on
  a thread pool — measuring per-task CPU time and recovering from failed
  attempts (Spark's lineage-based recomputation: a task is a pure function
  of its partition, so re-running it is recovery).  Recovery covers
  retries with exponential backoff, executor blacklisting after repeated
  failures, executor-death replacement, per-task timeouts and speculative
  re-execution of straggler tasks; every action is reported through the
  context's :class:`~repro.spark.faults.FaultManager`.  Faults themselves
  come from a deterministic :class:`~repro.spark.faults.FaultPlan` (the
  chaos harness) when one is installed.

* :func:`simulate_makespan` converts the measured per-task costs into the
  wall-clock a cluster of *N* executors would need, using the same greedy
  earliest-free-executor policy as Spark's scheduler.  This is the
  documented substitution for real EC2 nodes: speedup curves are a
  property of the task-time distribution and the scheduler, both of which
  we retain.  A task's recorded cost is its full executor occupancy —
  failed attempts and cancelled speculative copies included — so retries
  are visible in the Figure 13-15 speedup curves.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.sanitizer import san_lock
from repro.spark.faults import (
    ExecutorLostError,
    FaultManager,
    InjectedTaskCrash,
    TaskFailure,
    wrap_task_error,
)

__all__ = [
    "ExecutorPool",
    "StageMetrics",
    "TaskFailure",
    "TaskMetrics",
    "simulate_makespan",
]


@dataclass
class TaskMetrics:
    """Cost of one executed task (all attempts of one partition).

    ``seconds`` is the task's total executor occupancy: every failed
    attempt, the successful attempt, and the occupancy of a cancelled
    speculative copy all count, because each of them held an executor
    for that long.  ``attempt_seconds`` keeps the per-attempt breakdown
    in execution order.
    """

    partition: int
    seconds: float
    attempts: int
    attempt_seconds: List[float] = field(default_factory=list)
    speculative_copies: int = 0


@dataclass
class StageMetrics:
    """Costs of one stage: the unit between two shuffle boundaries.

    ``nested`` marks a stage whose tasks ran *inside* another stage's
    task (adaptive skew-split sub-tasks): its seconds are already part
    of the enclosing task's occupancy, so makespan reporting must not
    count them twice (see :meth:`ExecutorPool.simulated_wall_clock`).
    """

    stage_id: int
    label: str = ""
    nested: bool = False
    tasks: List[TaskMetrics] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(task.seconds for task in self.tasks)

    def makespan(self, num_executors: int) -> float:
        return simulate_makespan(
            [task.seconds for task in self.tasks], num_executors
        )


class ExecutorPool:
    """Runs the tasks of one stage and records their metrics.

    ``mode`` is ``"inline"`` (deterministic, single-threaded — the default,
    and what benchmarks use together with :func:`simulate_makespan`) or
    ``"threads"`` (a real thread pool, for wall-clock parallelism on
    workloads that release the GIL).

    ``faults`` is the context's :class:`FaultManager`; its plan (when one
    is installed) is consulted once per fault site, keyed by
    ``(stage_id, partition, attempt)``, so fault decisions are identical
    in both modes and independent of thread interleaving.
    """

    def __init__(
        self,
        num_executors: int = 4,
        mode: str = "inline",
        max_retries: int = 3,
        faults: Optional[FaultManager] = None,
        speculation: bool = True,
        blacklist_threshold: int = 2,
        task_timeout: Optional[float] = None,
        retry_backoff: float = 0.0,
    ):
        if mode not in ("inline", "threads"):
            raise ValueError("unknown executor mode: " + mode)
        self.num_executors = num_executors
        self.mode = mode
        self.max_retries = max_retries
        self.faults = faults if faults is not None else FaultManager()
        self.speculation = speculation
        self.blacklist_threshold = blacklist_threshold
        self.task_timeout = task_timeout
        self.retry_backoff = retry_backoff
        self.stages: List[StageMetrics] = []
        self._next_stage_id = 0
        #: The active :class:`repro.cancellation.CancelToken`, installed
        #: per query by ``Rumble.cancel_scope``; None when no request
        #: lifecycle is attached (library use).  Checked before every
        #: task attempt, so a cancelled query stops scheduling new
        #: partitions within one partition boundary.
        self.cancel = None
        #: Event listeners (``listener.emit(event, **fields)``); empty by
        #: default, so the un-observed path pays one truthiness check.
        self.listeners: List[Any] = []
        # -- Executor registry (ids survive the pool's whole lifetime) -------
        self.executor_ids: List[int] = list(range(num_executors))
        self.blacklisted: Set[int] = set()
        self.dead: Set[int] = set()
        self._executor_failures: Dict[int, int] = {}
        self._next_executor_id = num_executors
        self._lock = san_lock("spark.cluster.pool")
        #: Per-thread count of tasks currently executing — lets
        #: run_stage detect stages launched from inside a task (adaptive
        #: skew-split sub-stages) for double-count-free makespans.
        self._task_depth = threading.local()

    def add_listener(self, listener: Any) -> None:
        if listener not in self.listeners:
            self.listeners.append(listener)

    def remove_listener(self, listener: Any) -> None:
        if listener in self.listeners:
            self.listeners.remove(listener)

    def _emit(self, event: str, **fields) -> None:
        for listener in self.listeners:
            listener.emit(event, **fields)

    def run_stage(
        self, tasks: Sequence[Callable[[], Any]], label: str = "",
        nested: Optional[bool] = None,
    ) -> List[Any]:
        """Execute every task, returning results in task order.

        ``nested`` marks the stage's seconds as already contained in an
        enclosing task's occupancy; by default it is detected from the
        call site (a stage launched while a task of this pool is running
        on the same thread is nested).
        """
        token = self.cancel
        if token is not None:
            token.check()
        if nested is None:
            nested = getattr(self._task_depth, "value", 0) > 0
        stage = StageMetrics(
            stage_id=self._next_stage_id, label=label, nested=nested
        )
        self._next_stage_id += 1
        self.stages.append(stage)
        if self.listeners:
            self._emit(
                "SparkListenerStageSubmitted",
                stage_id=stage.stage_id,
                label=label,
                num_tasks=len(tasks),
            )
        if self.mode == "threads" and len(tasks) > 1:
            workers = min(self.num_executors, len(tasks))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(self._run_task, stage, index, task)
                    for index, task in enumerate(tasks)
                ]
                results = [future.result() for future in futures]
        else:
            results = [
                self._run_task(stage, index, task)
                for index, task in enumerate(tasks)
            ]
        if self.listeners:
            self._emit(
                "SparkListenerStageCompleted",
                stage_id=stage.stage_id,
                label=label,
                num_tasks=len(tasks),
                seconds=stage.total_seconds,
            )
        return results

    # -- Executor bookkeeping ------------------------------------------------
    def _pick_executor(self, stage_id: int, partition: int,
                       attempt: int) -> int:
        """Deterministic assignment among live, non-blacklisted executors.

        Retries land on a different executor (the ``attempt`` term), the
        way Spark's scheduler avoids the node that just failed the task.
        """
        with self._lock:
            live = [
                e for e in self.executor_ids if e not in self.blacklisted
            ]
            if not live:  # never leave a stage unschedulable
                live = list(self.executor_ids)
        return live[
            (stage_id * 131 + partition * 7 + (attempt - 1) * 31) % len(live)
        ]

    def _lose_executor(self, executor: int, stage_id: int, partition: int,
                       attempt: int) -> None:
        """Remove a dead executor and provision a replacement."""
        with self._lock:
            if executor not in self.dead:
                self.dead.add(executor)
                if executor in self.executor_ids:
                    self.executor_ids.remove(executor)
                replacement = self._next_executor_id
                self._next_executor_id += 1
                self.executor_ids.append(replacement)
        self.faults.record(
            "executor_deaths", "SparkListenerExecutorRemoved",
            executor=executor, stage_id=stage_id, partition=partition,
            attempt=attempt,
        )

    def _note_executor_failure(self, executor: int) -> None:
        """Count a task failure against its executor; blacklist after
        ``blacklist_threshold`` failures (but never the last one left)."""
        with self._lock:
            count = self._executor_failures.get(executor, 0) + 1
            self._executor_failures[executor] = count
            live = [
                e for e in self.executor_ids if e not in self.blacklisted
            ]
            should_blacklist = (
                count >= self.blacklist_threshold
                and executor not in self.blacklisted
                and executor in live
                and len(live) > 1
            )
            if should_blacklist:
                self.blacklisted.add(executor)
        if should_blacklist:
            self.faults.record(
                "blacklisted_executors", "SparkListenerExecutorBlacklisted",
                executor=executor, failures=count,
            )

    # -- Task execution ------------------------------------------------------
    def _run_task(
        self, stage: StageMetrics, index: int, task: Callable[[], Any]
    ) -> Any:
        self._task_depth.value = getattr(self._task_depth, "value", 0) + 1
        try:
            return self._run_task_inner(stage, index, task)
        finally:
            self._task_depth.value -= 1

    def _run_task_inner(
        self, stage: StageMetrics, index: int, task: Callable[[], Any]
    ) -> Any:
        metrics = TaskMetrics(partition=index, seconds=0.0, attempts=0)
        plan = self.faults.plan
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.max_retries + 2):
            # The partition-boundary cancellation check: raised *between*
            # attempts, outside the retry machinery, so a cancelled query
            # neither starts new work nor counts as a task failure.
            token = self.cancel
            if token is not None:
                token.check()
            metrics.attempts = attempt
            if attempt > 1 and self.retry_backoff > 0.0:
                time.sleep(self.retry_backoff * (2 ** (attempt - 2)))
            executor = self._pick_executor(stage.stage_id, index, attempt)
            started = time.perf_counter()
            try:
                if plan is not None and plan.executor_dies(
                    stage.stage_id, index, attempt
                ):
                    self._lose_executor(
                        executor, stage.stage_id, index, attempt
                    )
                    raise ExecutorLostError(
                        "executor {} died running partition {}".format(
                            executor, index
                        )
                    )
                if plan is not None and plan.should_crash(
                    stage.stage_id, index, attempt
                ):
                    self.faults.record(
                        "crashes", "FaultInjected",
                        stage_id=stage.stage_id, partition=index,
                        attempt=attempt, executor=executor,
                    )
                    raise InjectedTaskCrash(
                        "injected failure in partition {}".format(index)
                    )
                result = task()
            except Exception as error:  # noqa: BLE001 - retried below
                elapsed = time.perf_counter() - started
                metrics.attempt_seconds.append(elapsed)
                metrics.seconds += elapsed
                if not getattr(error, "retryable", True):
                    self._finish_failed(stage, metrics, error)
                    raise wrap_task_error(
                        error, stage.stage_id, index, attempt
                    ) from error
                last_error = error
                if not isinstance(error, ExecutorLostError):
                    self._note_executor_failure(executor)
                self.faults.record(
                    "retries", "TaskRetry",
                    stage_id=stage.stage_id, partition=index,
                    attempt=attempt, executor=executor,
                    reason=type(error).__name__,
                )
                continue
            elapsed = time.perf_counter() - started
            delay = (
                plan.slow_task_delay(stage.stage_id, index, attempt)
                if plan is not None else 0.0
            )
            if delay > 0.0:
                # The injected delay is virtual: it pads the recorded
                # occupancy (so makespans see the straggler) without
                # sleeping, keeping chaos runs fast and deterministic.
                elapsed += delay
                self.faults.record(
                    "slow_tasks", "FaultInjected",
                    stage_id=stage.stage_id, partition=index,
                    attempt=attempt, executor=executor, delay=delay,
                )
            if (
                self.task_timeout is not None
                and elapsed > self.task_timeout
            ):
                metrics.attempt_seconds.append(elapsed)
                metrics.seconds += elapsed
                last_error = TimeoutError(
                    "partition {} attempt {} exceeded the {}s task "
                    "timeout".format(index, attempt, self.task_timeout)
                )
                self.faults.record(
                    "timeouts", "TaskRetry",
                    stage_id=stage.stage_id, partition=index,
                    attempt=attempt, executor=executor,
                    reason="TimeoutError",
                )
                continue
            if delay > 0.0 and self.speculation:
                result, elapsed = self._speculate(
                    stage, index, attempt, task, result, elapsed, metrics
                )
            metrics.attempt_seconds.append(elapsed)
            metrics.seconds += elapsed
            stage.tasks.append(metrics)
            if self.listeners:
                self._emit(
                    "SparkListenerTaskEnd",
                    stage_id=stage.stage_id,
                    partition=index,
                    seconds=metrics.seconds,
                    attempts=attempt,
                )
            return result
        failure = TaskFailure(
            "partition {} failed after {} attempts: {}".format(
                index, self.max_retries + 1, last_error
            )
        )
        failure.stage_id = stage.stage_id
        failure.partition = index
        failure.attempt = metrics.attempts
        self._finish_failed(stage, metrics, failure)
        raise failure from last_error

    def _finish_failed(self, stage: StageMetrics, metrics: TaskMetrics,
                       error: BaseException) -> None:
        """Record a permanently failed task: its occupancy still counts,
        and a failed ``TaskEnd`` carries the partition/stage context in
        inline and thread mode alike."""
        stage.tasks.append(metrics)
        if self.listeners:
            self._emit(
                "SparkListenerTaskEnd",
                stage_id=stage.stage_id,
                partition=metrics.partition,
                seconds=metrics.seconds,
                attempts=metrics.attempts,
                failed=True,
                reason=type(error).__name__,
            )

    def _speculate(self, stage: StageMetrics, index: int, attempt: int,
                   task: Callable[[], Any], result: Any, elapsed: float,
                   metrics: TaskMetrics):
        """Race a speculative copy against a straggling attempt.

        The first finisher wins; the loser is cancelled the moment the
        winner completes, so it occupied an executor for exactly the
        winner's duration — that occupancy is recorded as an extra entry
        in ``attempt_seconds``.  The task is a pure function of its
        partition, so both copies produce identical results and the
        winner's identity never changes the query's output.
        """
        token = self.cancel
        if token is not None and token.is_set():
            # A cancelled query must not launch speculative copies: the
            # original (already computed) result stands and the next
            # partition boundary raises.
            return result, elapsed
        self.faults.record(
            "speculative_launched", "SparkListenerSpeculativeTaskSubmitted",
            stage_id=stage.stage_id, partition=index, attempt=attempt,
        )
        metrics.speculative_copies += 1
        started = time.perf_counter()
        try:
            backup_result = task()
        except Exception:  # noqa: BLE001 - the original attempt stands
            self.faults.record(
                "speculative_losses", "SparkListenerSpeculativeTaskEnd",
                stage_id=stage.stage_id, partition=index, winner="original",
                reason="backup-failed",
            )
            return result, elapsed
        backup_elapsed = time.perf_counter() - started
        if backup_elapsed < elapsed:
            winner_result, winner_elapsed = backup_result, backup_elapsed
            winner = "speculative"
        else:
            winner_result, winner_elapsed = result, elapsed
            winner = "original"
        self.faults.record(
            "speculative_wins", "SparkListenerSpeculativeTaskEnd",
            stage_id=stage.stage_id, partition=index, winner=winner,
        )
        self.faults.record("speculative_losses")
        # The cancelled copy held its executor until the winner finished.
        metrics.attempt_seconds.append(winner_elapsed)
        metrics.seconds += winner_elapsed
        return winner_result, winner_elapsed

    # -- Reporting -----------------------------------------------------------
    def total_task_seconds(self) -> float:
        """Aggregate CPU time over all stages (the paper's Figure 14
        'aggregated runtime over the cluster')."""
        return sum(stage.total_seconds for stage in self.stages)

    def simulated_wall_clock(self, num_executors: Optional[int] = None) -> float:
        """Makespan of the recorded stages on ``num_executors`` executors.

        Stages are barriers: stage *k+1* starts only when stage *k* is done,
        so the total is the sum of per-stage makespans.  A *nested* stage
        (skew-split sub-tasks) ran serially inside an enclosing task whose
        occupancy already contains its total seconds; it contributes
        ``makespan - total_seconds`` — crediting back the serial time and
        charging what the sub-tasks cost when spread over the executors.
        """
        executors = num_executors or self.num_executors
        total = 0.0
        for stage in self.stages:
            makespan = stage.makespan(executors)
            if stage.nested:
                total += makespan - stage.total_seconds
            else:
                total += makespan
        return total

    def reset_metrics(self) -> None:
        self.stages = []
        self._next_stage_id = 0


def simulate_makespan(task_seconds: Sequence[float], num_executors: int) -> float:
    """Wall-clock of scheduling tasks greedily on ``num_executors`` cores.

    Tasks are assigned in submission order to the earliest-free executor,
    matching Spark's FIFO task scheduling within a stage.
    """
    if num_executors <= 0:
        raise ValueError("num_executors must be positive")
    if not task_seconds:
        return 0.0
    free_at = [0.0] * min(num_executors, len(task_seconds))
    heapq.heapify(free_at)
    for cost in task_seconds:
        soonest = heapq.heappop(free_at)
        heapq.heappush(free_at, soonest + cost)
    return max(free_at)
