"""Executor pool and cluster model.

The paper's cluster experiments (Figures 13-15) run Spark with a varying
number of executors.  Our substrate reproduces this with two cooperating
pieces:

* :class:`ExecutorPool` actually runs the tasks of a stage — inline, or on
  a thread pool — measuring per-task CPU time and retrying failed tasks
  (Spark's lineage-based recomputation: a task is a pure function of its
  partition, so re-running it is recovery).

* :func:`simulate_makespan` converts the measured per-task costs into the
  wall-clock a cluster of *N* executors would need, using the same greedy
  earliest-free-executor policy as Spark's scheduler.  This is the
  documented substitution for real EC2 nodes: speedup curves are a
  property of the task-time distribution and the scheduler, both of which
  we retain.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence


class TaskFailure(RuntimeError):
    """A task failed more times than ``max_retries`` allows."""


@dataclass
class TaskMetrics:
    """Cost of one executed task."""

    partition: int
    seconds: float
    attempts: int


@dataclass
class StageMetrics:
    """Costs of one stage: the unit between two shuffle boundaries."""

    stage_id: int
    label: str = ""
    tasks: List[TaskMetrics] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(task.seconds for task in self.tasks)

    def makespan(self, num_executors: int) -> float:
        return simulate_makespan(
            [task.seconds for task in self.tasks], num_executors
        )


class ExecutorPool:
    """Runs the tasks of one stage and records their metrics.

    ``mode`` is ``"inline"`` (deterministic, single-threaded — the default,
    and what benchmarks use together with :func:`simulate_makespan`) or
    ``"threads"`` (a real thread pool, for wall-clock parallelism on
    workloads that release the GIL).
    """

    def __init__(
        self,
        num_executors: int = 4,
        mode: str = "inline",
        max_retries: int = 3,
        failure_injector: Optional[Callable[[int, int], bool]] = None,
    ):
        if mode not in ("inline", "threads"):
            raise ValueError("unknown executor mode: " + mode)
        self.num_executors = num_executors
        self.mode = mode
        self.max_retries = max_retries
        #: Called as ``failure_injector(partition, attempt)``; returning
        #: True makes the attempt fail.  Used by fault-injection tests.
        self.failure_injector = failure_injector
        self.stages: List[StageMetrics] = []
        self._next_stage_id = 0
        #: Event listeners (``listener.emit(event, **fields)``); empty by
        #: default, so the un-observed path pays one truthiness check.
        self.listeners: List[Any] = []

    def add_listener(self, listener: Any) -> None:
        if listener not in self.listeners:
            self.listeners.append(listener)

    def remove_listener(self, listener: Any) -> None:
        if listener in self.listeners:
            self.listeners.remove(listener)

    def _emit(self, event: str, **fields) -> None:
        for listener in self.listeners:
            listener.emit(event, **fields)

    def run_stage(
        self, tasks: Sequence[Callable[[], Any]], label: str = ""
    ) -> List[Any]:
        """Execute every task, returning results in task order."""
        stage = StageMetrics(stage_id=self._next_stage_id, label=label)
        self._next_stage_id += 1
        self.stages.append(stage)
        if self.listeners:
            self._emit(
                "SparkListenerStageSubmitted",
                stage_id=stage.stage_id,
                label=label,
                num_tasks=len(tasks),
            )
        if self.mode == "threads" and len(tasks) > 1:
            workers = min(self.num_executors, len(tasks))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(self._run_task, stage, index, task)
                    for index, task in enumerate(tasks)
                ]
                results = [future.result() for future in futures]
        else:
            results = [
                self._run_task(stage, index, task)
                for index, task in enumerate(tasks)
            ]
        if self.listeners:
            self._emit(
                "SparkListenerStageCompleted",
                stage_id=stage.stage_id,
                label=label,
                num_tasks=len(tasks),
                seconds=stage.total_seconds,
            )
        return results

    def _run_task(
        self, stage: StageMetrics, index: int, task: Callable[[], Any]
    ) -> Any:
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.max_retries + 2):
            started = time.perf_counter()
            try:
                if self.failure_injector and self.failure_injector(
                    index, attempt
                ):
                    raise RuntimeError(
                        "injected failure in partition {}".format(index)
                    )
                result = task()
            except Exception as error:  # noqa: BLE001 - retried below
                if not getattr(error, "retryable", True):
                    raise
                last_error = error
                continue
            seconds = time.perf_counter() - started
            stage.tasks.append(
                TaskMetrics(
                    partition=index,
                    seconds=seconds,
                    attempts=attempt,
                )
            )
            if self.listeners:
                self._emit(
                    "SparkListenerTaskEnd",
                    stage_id=stage.stage_id,
                    partition=index,
                    seconds=seconds,
                    attempts=attempt,
                )
            return result
        raise TaskFailure(
            "partition {} failed after {} attempts: {}".format(
                index, self.max_retries + 1, last_error
            )
        ) from last_error

    # -- Reporting -----------------------------------------------------------
    def total_task_seconds(self) -> float:
        """Aggregate CPU time over all stages (the paper's Figure 14
        'aggregated runtime over the cluster')."""
        return sum(stage.total_seconds for stage in self.stages)

    def simulated_wall_clock(self, num_executors: Optional[int] = None) -> float:
        """Makespan of the recorded stages on ``num_executors`` executors.

        Stages are barriers: stage *k+1* starts only when stage *k* is done,
        so the total is the sum of per-stage makespans.
        """
        executors = num_executors or self.num_executors
        return sum(stage.makespan(executors) for stage in self.stages)

    def reset_metrics(self) -> None:
        self.stages = []
        self._next_stage_id = 0


def simulate_makespan(task_seconds: Sequence[float], num_executors: int) -> float:
    """Wall-clock of scheduling tasks greedily on ``num_executors`` cores.

    Tasks are assigned in submission order to the earliest-free executor,
    matching Spark's FIFO task scheduling within a stage.
    """
    if num_executors <= 0:
        raise ValueError("num_executors must be positive")
    if not task_seconds:
        return 0.0
    free_at = [0.0] * min(num_executors, len(task_seconds))
    heapq.heapify(free_at)
    for cost in task_seconds:
        soonest = heapq.heappop(free_at)
        heapq.heappush(free_at, soonest + cost)
    return max(free_at)
