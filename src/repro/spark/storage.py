"""Storage layer standing in for HDFS and S3.

Rumble reads JSON-Lines files "in place" from HDFS or S3 (paper, Section 2
and 5.7).  This module provides the equivalent substrate: a URI-schemed
filesystem abstraction where ``hdfs://`` and ``s3://`` paths are mapped to
directories on the local disk, and text files are split into *blocks* the
same way HDFS blocks determine Spark's input partitions.

A process-wide :class:`FileSystemRegistry` lets tests and benchmarks mount
scheme roots (e.g. mount ``hdfs://`` onto a temp dir) without monkeypatching.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sanitizer import san_lock, shared_state

#: Default block size used to split files into partitions (bytes).  Real
#: HDFS uses 128 MB; we default far smaller so laptop-scale files still
#: produce multi-partition RDDs.
DEFAULT_BLOCK_SIZE = 4 * 1024 * 1024


class StorageError(IOError):
    """A path could not be resolved or read."""


@dataclass(frozen=True)
class FileBlock:
    """One block of a text file: a byte range of ``path``.

    Reading a block yields every line that *starts* inside the range, which
    is how Hadoop input splits avoid duplicating lines across blocks.
    """

    path: str
    start: int
    length: int

    def fingerprint(self) -> Tuple:
        """The block's cache identity: its byte range plus the file's
        stat fingerprint, so the shredded-batch cache invalidates on any
        rewrite (same signal as :func:`fingerprint_uri`).  Raises
        ``OSError`` if the file vanished — callers skip caching then."""
        stat = os.stat(self.path)
        return (self.path, self.start, self.length,
                stat.st_size, stat.st_mtime_ns)

    def read_lines(self, decode_errors: str = "strict") -> Iterator[str]:
        """Yield the block's lines.  ``decode_errors`` follows the codec
        convention (``"strict"``, ``"replace"``, ...): the tolerant parse
        modes read with ``"replace"`` so one undecodable byte becomes a
        malformed *record* rather than aborting the whole partition."""
        end = self.start + self.length
        with open(self.path, "rb") as handle:
            if self.start > 0:
                # Hadoop's LineRecordReader rule: back up one byte and
                # discard a line, so a line *starting exactly at* the
                # boundary belongs to this block while a straddling line
                # belongs to the previous one.
                handle.seek(self.start - 1)
                handle.readline()
            else:
                handle.seek(0)
            while handle.tell() < end:
                line = handle.readline()
                if not line:
                    return
                text = line.decode(
                    "utf-8", errors=decode_errors
                ).rstrip("\n").rstrip("\r")
                if text:
                    yield text


@shared_state
class FileSystemRegistry:
    """Maps URI schemes (``hdfs``, ``s3``, ``file``) to local roots."""

    def __init__(self) -> None:
        self._mounts: Dict[str, str] = {}
        # The registry is process-wide shared state; concurrently serving
        # engines (repro.server) mount and resolve from many threads.
        self._lock = san_lock("spark.storage.registry")

    def mount(self, scheme: str, root: str) -> None:
        """Serve ``scheme://...`` paths from the local directory ``root``."""
        with self._lock:
            self._mounts[scheme] = os.path.abspath(root)

    def unmount(self, scheme: str) -> None:
        with self._lock:
            self._mounts.pop(scheme, None)

    def resolve(self, uri: str) -> str:
        """Translate a URI into a local filesystem path."""
        scheme, rest = split_uri(uri)
        if scheme in (None, "file"):
            return rest
        with self._lock:
            root = self._mounts.get(scheme)
        if root is None:
            raise StorageError(
                "no filesystem mounted for scheme {!r} (uri {!r})".format(
                    scheme, uri
                )
            )
        return os.path.join(root, rest.lstrip("/"))


def split_uri(uri: str) -> Tuple[Optional[str], str]:
    """Split ``scheme://path`` into its scheme and path parts."""
    if "://" in uri:
        scheme, _, rest = uri.partition("://")
        return scheme, "/" + rest.lstrip("/")
    return None, uri


#: The process-wide registry used by SparkContext.textFile and json-file().
REGISTRY = FileSystemRegistry()


def split_file(
    local_path: str,
    min_partitions: Optional[int] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> List[FileBlock]:
    """Split one file into blocks, honouring a minimum partition count."""
    if not os.path.exists(local_path):
        raise StorageError("no such file: " + local_path)
    size = os.path.getsize(local_path)
    if size == 0:
        return [FileBlock(local_path, 0, 0)]
    if min_partitions:
        block_size = min(block_size, max(1, -(-size // min_partitions)))
    blocks = []
    offset = 0
    while offset < size:
        length = min(block_size, size - offset)
        blocks.append(FileBlock(local_path, offset, length))
        offset += length
    return blocks


def list_input_files(local_path: str) -> List[str]:
    """Expand a path into concrete files (a directory reads all its files,
    skipping Hadoop-style ``_SUCCESS`` markers and dotfiles)."""
    if os.path.isdir(local_path):
        names = sorted(
            name
            for name in os.listdir(local_path)
            if not name.startswith((".", "_"))
        )
        return [os.path.join(local_path, name) for name in names]
    return [local_path]


def fingerprint_uri(uri: str) -> Tuple:
    """The lineage fingerprint of the input behind a URI.

    A tuple of ``(path, size, mtime_ns)`` per concrete file the URI
    expands to — the result cache's invalidation signal: any append,
    rewrite, rotation, or even a same-size in-place edit (mtime moves)
    changes the fingerprint.  An unresolvable or missing input yields a
    distinct ``("missing", uri)`` marker so a cached error state never
    masks a file that has since appeared.
    """
    try:
        local = REGISTRY.resolve(uri)
        files = list_input_files(local)
        return tuple(
            (path, stat.st_size, stat.st_mtime_ns)
            for path, stat in (
                (path, os.stat(path)) for path in sorted(files)
            )
        )
    except (StorageError, OSError):
        return ("missing", uri)


def split_input(
    uri: str,
    min_partitions: Optional[int] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> List[FileBlock]:
    """Resolve a URI and split the file(s) behind it into blocks."""
    local = REGISTRY.resolve(uri)
    blocks: List[FileBlock] = []
    for path in list_input_files(local):
        blocks.extend(split_file(path, min_partitions, block_size))
    if min_partitions and len(blocks) < min_partitions:
        blocks = _resplit(blocks, min_partitions)
    return blocks


def _resplit(blocks: List[FileBlock], want: int) -> List[FileBlock]:
    """Split existing blocks further until at least ``want`` exist."""
    blocks = list(blocks)
    while len(blocks) < want:
        blocks.sort(key=lambda b: b.length, reverse=True)
        big = blocks.pop(0)
        if big.length <= 1:
            blocks.append(big)
            break
        half = big.length // 2
        blocks.append(FileBlock(big.path, big.start, half))
        blocks.append(FileBlock(big.path, big.start + half, big.length - half))
    return sorted(blocks, key=lambda b: (b.path, b.start))


# -- Min/max file statistics (partition pruning) -------------------------------

#: Sidecar suffix; the leading dot keeps :func:`list_input_files` from
#: ever reading a sidecar back as data.
STATS_SUFFIX = ".rumble-stats.json"


def stats_path(local_path: str) -> str:
    directory, base = os.path.split(local_path)
    return os.path.join(directory, "." + base + STATS_SUFFIX)


def write_stats_sidecars(uri: str) -> List[str]:
    """Scan the JSON-Lines file(s) behind ``uri`` and write one min/max
    stats sidecar per file.

    The sidecar records, per top-level key of the file's object records:
    the key's value type family (``string``/``number``/``mixed``/
    ``other``) and, for single-family scalar keys, the min and max.  A
    pushed key-vs-literal predicate whose range the sidecar disproves
    lets the scan skip the whole file (the classic small-materialized-
    aggregates / Parquet row-group pruning trick).
    """
    import json

    written = []
    for path in list_input_files(REGISTRY.resolve(uri)):
        rows = 0
        keys: Dict[str, Dict[str, object]] = {}
        with open(path, "rb") as handle:
            for raw in handle:
                text = raw.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                rows += 1
                try:
                    record = json.loads(text)
                except ValueError:
                    # A malformed line may hold any values: poison every
                    # key so nothing about this file can be disproved.
                    keys = {key: {"type": "mixed"} for key in keys}
                    keys["\0malformed"] = {"type": "mixed"}
                    continue
                if type(record) is not dict:
                    continue
                for key, value in record.items():
                    _observe(keys, key, value)
        payload = {"rows": rows, "keys": {
            key: stat for key, stat in keys.items() if not key.startswith("\0")
        }}
        if any(key.startswith("\0") for key in keys):
            payload["unreliable"] = True
        target = stats_path(path)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        written.append(target)
    return written


def _observe(keys: Dict[str, Dict[str, object]], key: str, value) -> None:
    kind = type(value)
    if kind is str:
        family = "string"
    elif kind is bool:
        family = "other"
    elif kind is int or kind is float:
        family = "number"
    else:
        family = "other"
    stat = keys.get(key)
    if stat is None:
        if family in ("string", "number"):
            keys[key] = {"type": family, "min": value, "max": value,
                         "count": 1}
        else:
            keys[key] = {"type": family, "count": 1}
        return
    stat["count"] = stat.get("count", 0) + 1
    if stat["type"] != family:
        stat["type"] = "mixed"
        stat.pop("min", None)
        stat.pop("max", None)
        return
    if "min" in stat:
        if value < stat["min"]:
            stat["min"] = value
        if value > stat["max"]:
            stat["max"] = value


def load_stats(local_path: str) -> Optional[dict]:
    """The stats sidecar of one data file, or None when absent/corrupt."""
    import json

    target = stats_path(local_path)
    if not os.path.exists(target):
        return None
    try:
        with open(target, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (ValueError, OSError):
        return None
    if not isinstance(payload, dict) or "keys" not in payload:
        return None
    return payload


def _family_of_literal(value) -> Optional[str]:
    if isinstance(value, bool):
        return None
    if isinstance(value, str):
        return "string"
    if isinstance(value, (int, float)):
        return "number"
    return None


def file_excluded(stats: dict, predicates) -> bool:
    """Whether a stats sidecar *disproves* one of the pushed range
    predicates for every record of its file.

    ``predicates`` are ``(key, op, literal)`` facts with value-comparison
    op names; they are conjunctive, so one disproved predicate excludes
    the file.  Conservative in every unknown: mixed-type keys, missing
    stats and unreliable sidecars never exclude.
    """
    if stats.get("unreliable"):
        return False
    rows = stats.get("rows", 0)
    if not isinstance(rows, int) or rows <= 0:
        return False
    keys = stats.get("keys", {})
    for key, op, literal in predicates:
        family = _family_of_literal(literal)
        if family is None:
            continue
        stat = keys.get(key)
        if stat is None:
            # The key never occurs in this file: every lookup is the
            # empty sequence, so the predicate is false on every record.
            return True
        if stat.get("type") != family or "min" not in stat:
            continue
        # Records lacking the key fail the predicate anyway, so the range
        # over *present* values decides the file even when count < rows.
        low, high = stat["min"], stat["max"]
        if op == "eq" and (literal < low or literal > high):
            return True
        if op == "lt" and low >= literal:
            return True
        if op == "le" and low > literal:
            return True
        if op == "gt" and high <= literal:
            return True
        if op == "ge" and high < literal:
            return True
        if op == "ne" and low == high == literal:
            return True
    return False


def split_input_pruned(
    uri: str,
    min_partitions: Optional[int] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    range_predicates=(),
) -> Tuple[List[FileBlock], int]:
    """Like :func:`split_input`, but skip files whose stats sidecar
    disproves a pushed range predicate.  Returns (blocks, files pruned).
    """
    local = REGISTRY.resolve(uri)
    blocks: List[FileBlock] = []
    pruned = 0
    for path in list_input_files(local):
        if range_predicates:
            stats = load_stats(path)
            if stats is not None and file_excluded(stats, range_predicates):
                pruned += 1
                continue
        blocks.extend(split_file(path, min_partitions, block_size))
    if min_partitions and blocks and len(blocks) < min_partitions:
        blocks = _resplit(blocks, min_partitions)
    return blocks, pruned


def write_partitioned_text(
    uri: str, partitions: List[List[str]]
) -> List[str]:
    """Write lines as Hadoop-style ``part-NNNNN`` files plus ``_SUCCESS``.

    This is the parallel write-back path of the paper's Section 5.4: when
    the root iterator supports the RDD API, results go straight back to
    storage without materializing on the driver.
    """
    local = REGISTRY.resolve(uri)
    os.makedirs(local, exist_ok=True)
    written = []
    for index, lines in enumerate(partitions):
        path = os.path.join(local, "part-{:05d}".format(index))
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line)
                handle.write("\n")
        written.append(path)
    open(os.path.join(local, "_SUCCESS"), "w").close()
    return written


# ---------------------------------------------------------------------------
# Disk tier for the memory manager: spilled partitions and shuffle buckets.
# ---------------------------------------------------------------------------

#: Storage levels for ``RDD.persist(level)``.  ``MEMORY_ONLY`` (the
#: ``cache()`` default) drops evicted partitions and recomputes them from
#: lineage; ``MEMORY_AND_DISK`` writes them to a :class:`SpillStore`
#: block instead, so eviction costs a disk read rather than a recompute.
MEMORY_ONLY = "MEMORY_ONLY"
MEMORY_AND_DISK = "MEMORY_AND_DISK"
STORAGE_LEVELS = (MEMORY_ONLY, MEMORY_AND_DISK)


class SpillHandle:
    """A lazily-read pickled block written by :class:`SpillStore`.

    Iterating the handle re-reads the block from disk each time, so a
    spilled shuffle bucket or cached partition can be consumed by
    retried and speculative task attempts exactly like its in-memory
    form (the data is immutable once written — exactly-once semantics
    reduce to reading the same bytes again).
    """

    __slots__ = ("store", "path", "records", "bytes", "released")

    def __init__(self, store: "SpillStore", path: str, records: int,
                 size: int):
        self.store = store
        self.path = path
        self.records = records
        self.bytes = size
        self.released = False

    def read(self) -> list:
        return self.store.read(self)

    def __iter__(self):
        return iter(self.read())

    def release(self) -> None:
        self.store.release(self)


class SpillStore:
    """The disk tier: one temp directory of pickled blocks.

    Created lazily on first spill so unbounded-memory runs never touch
    the filesystem.  Blocks are immutable after :meth:`put`; they are
    removed by :meth:`release` (unpersist / shuffle-state invalidation)
    or wholesale by :meth:`clear`.
    """

    def __init__(self, directory: Optional[str] = None):
        self._directory = directory
        self._sequence = 0
        self.spilled_blocks = 0
        self.spilled_bytes = 0

    @property
    def directory(self) -> str:
        if self._directory is None:
            import tempfile

            self._directory = tempfile.mkdtemp(prefix="rumble-spill-")
        return self._directory

    def put(self, records: list) -> SpillHandle:
        import pickle

        payload = pickle.dumps(list(records), protocol=4)
        self._sequence += 1
        path = os.path.join(
            self.directory, "block-{:06d}.bin".format(self._sequence)
        )
        with open(path, "wb") as handle:
            handle.write(payload)
        self.spilled_blocks += 1
        self.spilled_bytes += len(payload)
        return SpillHandle(self, path, len(records), len(payload))

    def read(self, handle: SpillHandle) -> list:
        import pickle

        if handle.released:
            raise StorageError("spill block already released: " + handle.path)
        with open(handle.path, "rb") as stream:
            return pickle.loads(stream.read())

    def release(self, handle: SpillHandle) -> None:
        if handle.released:
            return
        handle.released = True
        try:
            os.remove(handle.path)
        except OSError:
            pass

    def clear(self) -> None:
        if self._directory is None:
            return
        import shutil

        shutil.rmtree(self._directory, ignore_errors=True)
        self._directory = None
