"""A miniature Spark SQL: SQL text -> logical plan -> optimized DataFrame ops.

Pipeline::

    parser.parse_sql(text)      ->  plan.LogicalPlan
    optimizer.optimize(plan)    ->  plan.LogicalPlan
    executor.execute(session, plan)  ->  DataFrame
"""

from repro.spark.sql.executor import run_sql
from repro.spark.sql.parser import parse_sql

__all__ = ["run_sql", "parse_sql"]
