"""Physical execution: logical plan -> DataFrame operators."""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional

from repro.spark.column import Alias, ColumnRef
from repro.spark.dataframe import DataFrame, _hashable, _null_safe_key
from repro.spark.sql.optimizer import annotate_costs, optimize
from repro.spark.sql.parser import parse_sql
from repro.spark.sql.plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    TopK,
)


def run_sql(session, query: str, rules: Optional[List[str]] = None) -> DataFrame:
    """Parse, optimize and execute one SQL statement.

    When an observability bundle is attached to the session's context the
    three phases run under nested spans and the run is bracketed by
    Spark-UI-style SQL execution events.
    """
    obs = session.spark_context.obs
    if obs is None or not obs.enabled:
        plan = annotate_costs(optimize(parse_sql(query), rules), session)
        return execute(session, plan)

    from repro.obs.events import SQL_EXECUTION_END, SQL_EXECUTION_START

    obs.metrics.counter("rumble.sql.queries").inc()
    obs.emit(SQL_EXECUTION_START, query=query)
    with obs.tracer.span("sql.query", query=query):
        with obs.tracer.span("sql.parse"):
            parsed = parse_sql(query)
        with obs.tracer.span("sql.optimize"):
            plan = annotate_costs(optimize(parsed, rules), session)
        with obs.tracer.span("sql.execute"):
            frame = execute(session, plan)
    obs.emit(SQL_EXECUTION_END, query=query)
    return frame


def explain(session, query: str, rules: Optional[List[str]] = None) -> str:
    """The optimized, cost-annotated plan as explain-style text."""
    return annotate_costs(
        optimize(parse_sql(query), rules), session
    ).describe()


def execute(session, plan: LogicalPlan) -> DataFrame:
    if isinstance(plan, Scan):
        frame = session.catalog.lookup(plan.view)
        if plan.columns is not None:
            # Keep only the pruned columns the view actually has (the
            # optimizer over-approximates across join sides).
            keep = [name for name in frame.columns if name in plan.columns]
            if len(keep) < len(frame.columns):
                frame = frame.select(*[ColumnRef(name) for name in keep])
        return frame
    if isinstance(plan, Filter):
        return execute(session, plan.child).where(plan.condition)
    if isinstance(plan, Project):
        frame = execute(session, plan.child)
        if plan.star and not plan.columns:
            return frame
        columns = [Alias(expr, name) for name, expr in plan.columns]
        if plan.star:
            existing = [ColumnRef(name) for name in frame.columns]
            columns = existing + columns
        return frame.select(*columns)
    if isinstance(plan, Aggregate):
        frame = execute(session, plan.child)
        keys = [Alias(expr, name) for name, expr in plan.groupings]
        if not keys:
            # Global aggregation: group everything under one constant key.
            from repro.spark.column import lit

            keys = [Alias(lit(0), "__global__")]
            grouped = frame.group_by(*keys).agg(*plan.aggregates)
            return grouped.drop("__global__")
        return frame.group_by(*keys).agg(*plan.aggregates)
    if isinstance(plan, Join):
        left = execute(session, plan.left)
        right = execute(session, plan.right)
        if plan.right_key != plan.left_key:
            right = right.with_column_renamed(
                plan.right_key, plan.left_key
            )
        strategy = plan.strategy or "shuffle-hash"
        if strategy == "shuffle-hash":
            strategy = _maybe_replan_join(session, plan, left, right)
        if strategy == "broadcast-right" or (
            strategy == "broadcast-left" and plan.how == "inner"
        ):
            return _execute_broadcast_join(
                session, left, right, plan.left_key, plan.how,
                broadcast_left=(strategy == "broadcast-left"),
            )
        return left.join(right, on=plan.left_key, how=plan.how)
    if isinstance(plan, Sort):
        return execute(session, plan.child).order_by(*plan.orders)
    if isinstance(plan, Limit):
        return execute(session, plan.child).limit(plan.count)
    if isinstance(plan, TopK):
        return _execute_topk(session, plan)
    raise TypeError("cannot execute plan node {!r}".format(plan))


def _maybe_replan_join(session, plan, left: DataFrame,
                       right: DataFrame) -> str:
    """Adaptive join re-planning (runtime stats beat the estimate).

    The static cost model picked ``shuffle-hash`` from catalog-derived
    cardinality guesses; here, with the inputs actually computed, the
    *measured* row counts are consulted against the same broadcast
    threshold and the join switches to broadcast-hash mid-execution when
    a side undercuts it.  The selection rule mirrors
    :func:`repro.spark.sql.optimizer.annotate_costs` exactly, so the
    re-plan only ever makes the choice the optimizer would have made
    with perfect estimates.  Counting materializes the inputs the join
    was about to shuffle anyway; both sides are cached so the
    measurement is not paid twice.
    """
    context = session.spark_context
    adaptive = getattr(context, "adaptive", None)
    if adaptive is None or not adaptive.enabled:
        return "shuffle-hash"
    from repro.spark.sql.optimizer import BROADCAST_ROW_THRESHOLD

    threshold = int(context.conf.get(
        "spark.sql.broadcastRowThreshold", BROADCAST_ROW_THRESHOLD
    ))
    left.rdd.cache()
    right.rdd.cache()
    left_rows = left.rdd.count()
    right_rows = right.rdd.count()
    if min(left_rows, right_rows) > threshold:
        return "shuffle-hash"
    final = (
        "broadcast-left" if left_rows <= right_rows else "broadcast-right"
    )
    if plan.how == "left" and final == "broadcast-left":
        # A left outer join must stream the left side to keep unmatched
        # rows; only the right side can broadcast.
        if right_rows > threshold:
            return "shuffle-hash"
        final = "broadcast-right"
    adaptive.record_join_replan(
        "shuffle-hash", final, left_rows, right_rows, threshold
    )
    return final


def _execute_broadcast_join(
    session, left: DataFrame, right: DataFrame, key: str, how: str,
    broadcast_left: bool,
) -> DataFrame:
    """Broadcast-hash join: collect the small side into a driver-built
    hash table and map the big side's partitions over it — no shuffle.

    Row-merge semantics mirror :meth:`DataFrame.join` exactly (left
    columns win on collision), so the strategy choice is invisible in
    results.  A left outer join only ever broadcasts its right side.
    """
    from repro.spark.types import StructField, StructType, infer_type

    def key_of(row: Dict[str, Any]):
        return _hashable(row.get(key))

    small, big = (left, right) if broadcast_left else (right, left)
    table: Dict[Any, List[Dict[str, Any]]] = {}
    for row in small.rdd.collect():
        table.setdefault(key_of(row), []).append(row)

    if broadcast_left:  # inner only: merge(lrow, rrow) keeps left values
        def emit(rrow: Dict[str, Any]) -> List[Dict[str, Any]]:
            merged = []
            for lrow in table.get(key_of(rrow), ()):
                out = dict(rrow)
                out.update(lrow)
                merged.append(out)
            return merged
    elif how == "inner":
        def emit(lrow: Dict[str, Any]) -> List[Dict[str, Any]]:
            merged = []
            for rrow in table.get(key_of(lrow), ()):
                out = dict(rrow)
                out.update(lrow)
                merged.append(out)
            return merged
    else:
        null_right = {
            name: None for name in right.columns if name != key
        }

        def emit(lrow: Dict[str, Any]) -> List[Dict[str, Any]]:
            rights = table.get(key_of(lrow))
            if not rights:
                out = dict(null_right)
                out.update(lrow)
                return [out]
            merged = []
            for rrow in rights:
                out = dict(rrow)
                out.update(lrow)
                merged.append(out)
            return merged

    joined = big.rdd.flat_map(emit)
    names = list(dict.fromkeys(left.columns + right.columns))
    fields = [StructField(name, infer_type(None)) for name in names]
    return DataFrame(session, joined, StructType(fields))


def _execute_topk(session, plan: TopK) -> DataFrame:
    """Heap-based top-k: per-partition heaps, merged on the driver."""
    frame = execute(session, plan.child)
    orders = plan.orders
    count = plan.count

    def sort_key(row: Dict[str, Any]):
        return tuple(
            _null_safe_key(order.column.eval(row), order.ascending)
            for order in orders
        )

    def partition_topk(part):
        best = heapq.nsmallest(count, part, key=sort_key)
        return iter(best)

    rdd = frame.rdd.map_partitions(partition_topk)
    merged = heapq.nsmallest(count, rdd.collect(), key=sort_key)
    local = session.spark_context.parallelize(merged, 1)
    return DataFrame(session, local, frame.schema)


class _Neg:
    """Inverts ordering of a wrapped key inside a heap comparison tuple."""

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __lt__(self, other: "_Neg") -> bool:
        return other.key < self.key

    def __le__(self, other: "_Neg") -> bool:
        return other.key <= self.key

    def __gt__(self, other: "_Neg") -> bool:
        return other.key > self.key

    def __ge__(self, other: "_Neg") -> bool:
        return other.key >= self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Neg) and other.key == self.key

    def __hash__(self) -> int:
        return hash(self.key)
