"""Physical execution: logical plan -> DataFrame operators."""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional

from repro.spark.column import Alias, ColumnRef
from repro.spark.dataframe import DataFrame, _null_safe_key
from repro.spark.sql.optimizer import optimize
from repro.spark.sql.parser import parse_sql
from repro.spark.sql.plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    TopK,
)


def run_sql(session, query: str, rules: Optional[List[str]] = None) -> DataFrame:
    """Parse, optimize and execute one SQL statement.

    When an observability bundle is attached to the session's context the
    three phases run under nested spans and the run is bracketed by
    Spark-UI-style SQL execution events.
    """
    obs = session.spark_context.obs
    if obs is None or not obs.enabled:
        plan = optimize(parse_sql(query), rules)
        return execute(session, plan)

    from repro.obs.events import SQL_EXECUTION_END, SQL_EXECUTION_START

    obs.metrics.counter("rumble.sql.queries").inc()
    obs.emit(SQL_EXECUTION_START, query=query)
    with obs.tracer.span("sql.query", query=query):
        with obs.tracer.span("sql.parse"):
            parsed = parse_sql(query)
        with obs.tracer.span("sql.optimize"):
            plan = optimize(parsed, rules)
        with obs.tracer.span("sql.execute"):
            frame = execute(session, plan)
    obs.emit(SQL_EXECUTION_END, query=query)
    return frame


def explain(session, query: str, rules: Optional[List[str]] = None) -> str:
    """The optimized plan as explain-style text."""
    return optimize(parse_sql(query), rules).describe()


def execute(session, plan: LogicalPlan) -> DataFrame:
    if isinstance(plan, Scan):
        return session.catalog.lookup(plan.view)
    if isinstance(plan, Filter):
        return execute(session, plan.child).where(plan.condition)
    if isinstance(plan, Project):
        frame = execute(session, plan.child)
        if plan.star and not plan.columns:
            return frame
        columns = [Alias(expr, name) for name, expr in plan.columns]
        if plan.star:
            existing = [ColumnRef(name) for name in frame.columns]
            columns = existing + columns
        return frame.select(*columns)
    if isinstance(plan, Aggregate):
        frame = execute(session, plan.child)
        keys = [Alias(expr, name) for name, expr in plan.groupings]
        if not keys:
            # Global aggregation: group everything under one constant key.
            from repro.spark.column import lit

            keys = [Alias(lit(0), "__global__")]
            grouped = frame.group_by(*keys).agg(*plan.aggregates)
            return grouped.drop("__global__")
        return frame.group_by(*keys).agg(*plan.aggregates)
    if isinstance(plan, Join):
        left = execute(session, plan.left)
        right = execute(session, plan.right)
        if plan.right_key != plan.left_key:
            right = right.with_column_renamed(
                plan.right_key, plan.left_key
            )
        return left.join(right, on=plan.left_key, how=plan.how)
    if isinstance(plan, Sort):
        return execute(session, plan.child).order_by(*plan.orders)
    if isinstance(plan, Limit):
        return execute(session, plan.child).limit(plan.count)
    if isinstance(plan, TopK):
        return _execute_topk(session, plan)
    raise TypeError("cannot execute plan node {!r}".format(plan))


def _execute_topk(session, plan: TopK) -> DataFrame:
    """Heap-based top-k: per-partition heaps, merged on the driver."""
    frame = execute(session, plan.child)
    orders = plan.orders
    count = plan.count

    def sort_key(row: Dict[str, Any]):
        return tuple(
            _null_safe_key(order.column.eval(row), order.ascending)
            for order in orders
        )

    def partition_topk(part):
        best = heapq.nsmallest(count, part, key=sort_key)
        return iter(best)

    rdd = frame.rdd.map_partitions(partition_topk)
    merged = heapq.nsmallest(count, rdd.collect(), key=sort_key)
    local = session.spark_context.parallelize(merged, 1)
    return DataFrame(session, local, frame.schema)


class _Neg:
    """Inverts ordering of a wrapped key inside a heap comparison tuple."""

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __lt__(self, other: "_Neg") -> bool:
        return other.key < self.key

    def __le__(self, other: "_Neg") -> bool:
        return other.key <= self.key

    def __gt__(self, other: "_Neg") -> bool:
        return other.key > self.key

    def __ge__(self, other: "_Neg") -> bool:
        return other.key >= self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Neg) and other.key == self.key

    def __hash__(self) -> int:
        return hash(self.key)
