"""Catalyst-lite: rule-based logical optimization.

Rules, applied bottom-up to fixpoint:

* **constant folding** — ``BinaryOp(Literal, Literal)`` becomes a literal;
* **predicate pushdown** — a Filter sliding under a pass-through Project;
* **filter fusion** — adjacent Filters merge into one conjunction;
* **top-k fusion** — ``Limit(Sort(...))`` becomes a heap-based TopK,
  avoiding the full sort shuffle.

These are the optimizations Rumble gets "for free" by expressing FLWOR
clauses in Spark SQL (paper, Section 4.3), so the benchmark suite carries
an ablation that toggles them.
"""

from __future__ import annotations

from typing import List, Optional

from repro.spark.column import (
    Alias,
    BinaryOp,
    Column,
    ColumnRef,
    Literal,
    UnaryOp,
)
from repro.spark.sql.plan import (
    Filter,
    Limit,
    LogicalPlan,
    Project,
    Sort,
    TopK,
    transform_up,
)

#: Enabled rule names, in application order.
ALL_RULES = (
    "constant_folding",
    "filter_fusion",
    "predicate_pushdown",
    "limit_pushdown",
    "topk_fusion",
)


def optimize(plan: LogicalPlan, rules: Optional[List[str]] = None) -> LogicalPlan:
    """Optimize a logical plan, optionally restricting the rule set."""
    enabled = set(ALL_RULES if rules is None else rules)
    for _ in range(10):  # fixpoint with a safety bound
        rewritten = plan
        if "constant_folding" in enabled:
            rewritten = transform_up(rewritten, _fold_constants)
        if "filter_fusion" in enabled:
            rewritten = transform_up(rewritten, _fuse_filters)
        if "predicate_pushdown" in enabled:
            rewritten = transform_up(rewritten, _push_down_filter)
        if "limit_pushdown" in enabled:
            rewritten = transform_up(rewritten, _push_down_limit)
        if "topk_fusion" in enabled:
            rewritten = transform_up(rewritten, _fuse_topk)
        if rewritten.describe() == plan.describe():
            return rewritten
        plan = rewritten
    return plan


# -- Rules -----------------------------------------------------------------

def _fold_constants(plan: LogicalPlan) -> Optional[LogicalPlan]:
    if isinstance(plan, Filter):
        folded = _fold_column(plan.condition)
        if folded is not plan.condition:
            return Filter(plan.child, folded)
    if isinstance(plan, Project):
        columns = [(name, _fold_column(expr)) for name, expr in plan.columns]
        if any(new is not old for (_, new), (_, old) in zip(columns, plan.columns)):
            return Project(plan.child, columns, plan.star)
    return None


def _fold_column(expr: Column) -> Column:
    if isinstance(expr, BinaryOp):
        left = _fold_column(expr.left)
        right = _fold_column(expr.right)
        if isinstance(left, Literal) and isinstance(right, Literal):
            return Literal(BinaryOp(left, right, expr.op).eval({}))
        if left is not expr.left or right is not expr.right:
            return BinaryOp(left, right, expr.op)
        return expr
    if isinstance(expr, UnaryOp):
        operand = _fold_column(expr.operand)
        if isinstance(operand, Literal):
            return Literal(UnaryOp(operand, expr.op).eval({}))
        if operand is not expr.operand:
            return UnaryOp(operand, expr.op)
        return expr
    if isinstance(expr, Alias):
        child = _fold_column(expr.child)
        if child is not expr.child:
            return Alias(child, expr.name)
    return expr


def _fuse_filters(plan: LogicalPlan) -> Optional[LogicalPlan]:
    if isinstance(plan, Filter) and isinstance(plan.child, Filter):
        inner = plan.child
        return Filter(
            inner.child, BinaryOp(inner.condition, plan.condition, "AND")
        )
    return None


def _push_down_filter(plan: LogicalPlan) -> Optional[LogicalPlan]:
    """Slide ``Filter(Project(child))`` to ``Project(Filter(child))`` when
    every column the predicate reads passes through the projection
    unchanged (a plain rename or pass-through reference)."""
    if not (isinstance(plan, Filter) and isinstance(plan.child, Project)):
        return None
    project = plan.child
    passthrough = {}
    for name, expr in project.columns:
        base = expr.child if isinstance(expr, Alias) else expr
        if isinstance(base, ColumnRef):
            passthrough[name] = base.name
    needed = plan.condition.references()
    if "*" in needed:
        return None
    if project.star:
        rewritten = plan.condition
    else:
        if not all(name in passthrough for name in needed):
            return None
        rewritten = _rewrite_refs(plan.condition, passthrough)
    return Project(Filter(project.child, rewritten), project.columns,
                   project.star)


def _rewrite_refs(expr: Column, mapping) -> Column:
    if isinstance(expr, ColumnRef):
        return ColumnRef(mapping.get(expr.name, expr.name))
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            _rewrite_refs(expr.left, mapping),
            _rewrite_refs(expr.right, mapping),
            expr.op,
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(_rewrite_refs(expr.operand, mapping), expr.op)
    if isinstance(expr, Alias):
        return Alias(_rewrite_refs(expr.child, mapping), expr.name)
    return expr


def _push_down_limit(plan: LogicalPlan) -> Optional[LogicalPlan]:
    """``Limit(Project(x))`` -> ``Project(Limit(x))``: projection is
    row-wise, so limiting first is equivalent and cheaper — and it lets
    the Limit meet a Sort for top-k fusion."""
    if isinstance(plan, Limit) and isinstance(plan.child, Project):
        project = plan.child
        return Project(
            Limit(project.child, plan.count), project.columns, project.star
        )
    return None


def _fuse_topk(plan: LogicalPlan) -> Optional[LogicalPlan]:
    if isinstance(plan, Limit) and isinstance(plan.child, Sort):
        sort = plan.child
        return TopK(sort.child, sort.orders, plan.count)
    return None
