"""Catalyst-lite: rule-based logical optimization plus a cost model.

Rules, applied bottom-up to fixpoint:

* **constant folding** — ``BinaryOp(Literal, Literal)`` becomes a literal;
* **predicate pushdown** — a Filter sliding under a pass-through Project;
* **filter fusion** — adjacent Filters merge into one conjunction;
* **top-k fusion** — ``Limit(Sort(...))`` becomes a heap-based TopK,
  avoiding the full sort shuffle;
* **projection pruning** — a single top-down pass restricting each Scan
  to the columns the rest of the plan can observe.

After the rule rewrites, :func:`annotate_costs` walks the plan with a
row-count/selectivity cost model (Scan cardinalities come from cached
catalog statistics) and picks physical join strategies: a side whose
estimate is under the broadcast threshold is hash-broadcast to every
partition of the other side instead of shuffled.

These are the optimizations Rumble gets "for free" by expressing FLWOR
clauses in Spark SQL (paper, Section 4.3), so the benchmark suite carries
an ablation that toggles them.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.spark.column import (
    Alias,
    BinaryOp,
    Column,
    ColumnRef,
    Literal,
    UnaryOp,
)
from repro.spark.sql.plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    TopK,
    transform_up,
)

#: Enabled rule names, in application order.
ALL_RULES = (
    "constant_folding",
    "filter_fusion",
    "predicate_pushdown",
    "limit_pushdown",
    "topk_fusion",
    "projection_pruning",
)

#: A join side at or under this estimated row count is broadcast rather
#: than shuffled (override per session with the
#: ``spark.sql.broadcastRowThreshold`` conf key).
BROADCAST_ROW_THRESHOLD = 10_000

#: Default selectivity of a filter the model knows nothing about, and the
#: tighter guess for an equality-with-literal predicate.
FILTER_SELECTIVITY = 0.25
EQUALITY_SELECTIVITY = 0.1
#: Grouping collapse factor: how many input rows one group absorbs.
AGGREGATE_SELECTIVITY = 0.2


def optimize(plan: LogicalPlan, rules: Optional[List[str]] = None) -> LogicalPlan:
    """Optimize a logical plan, optionally restricting the rule set."""
    enabled = set(ALL_RULES if rules is None else rules)
    for _ in range(10):  # fixpoint with a safety bound
        rewritten = plan
        if "constant_folding" in enabled:
            rewritten = transform_up(rewritten, _fold_constants)
        if "filter_fusion" in enabled:
            rewritten = transform_up(rewritten, _fuse_filters)
        if "predicate_pushdown" in enabled:
            rewritten = transform_up(rewritten, _push_down_filter)
        if "limit_pushdown" in enabled:
            rewritten = transform_up(rewritten, _push_down_limit)
        if "topk_fusion" in enabled:
            rewritten = transform_up(rewritten, _fuse_topk)
        if rewritten.describe() == plan.describe():
            break
        plan = rewritten
    if "projection_pruning" in enabled:
        plan = _prune_scan_columns(plan, None)
    return plan


# -- Rules -----------------------------------------------------------------

def _fold_constants(plan: LogicalPlan) -> Optional[LogicalPlan]:
    if isinstance(plan, Filter):
        folded = _fold_column(plan.condition)
        if folded is not plan.condition:
            return Filter(plan.child, folded)
    if isinstance(plan, Project):
        columns = [(name, _fold_column(expr)) for name, expr in plan.columns]
        if any(new is not old for (_, new), (_, old) in zip(columns, plan.columns)):
            return Project(plan.child, columns, plan.star)
    return None


def _fold_column(expr: Column) -> Column:
    if isinstance(expr, BinaryOp):
        left = _fold_column(expr.left)
        right = _fold_column(expr.right)
        if isinstance(left, Literal) and isinstance(right, Literal):
            return Literal(BinaryOp(left, right, expr.op).eval({}))
        if left is not expr.left or right is not expr.right:
            return BinaryOp(left, right, expr.op)
        return expr
    if isinstance(expr, UnaryOp):
        operand = _fold_column(expr.operand)
        if isinstance(operand, Literal):
            return Literal(UnaryOp(operand, expr.op).eval({}))
        if operand is not expr.operand:
            return UnaryOp(operand, expr.op)
        return expr
    if isinstance(expr, Alias):
        child = _fold_column(expr.child)
        if child is not expr.child:
            return Alias(child, expr.name)
    return expr


def _fuse_filters(plan: LogicalPlan) -> Optional[LogicalPlan]:
    if isinstance(plan, Filter) and isinstance(plan.child, Filter):
        inner = plan.child
        return Filter(
            inner.child, BinaryOp(inner.condition, plan.condition, "AND")
        )
    return None


def _push_down_filter(plan: LogicalPlan) -> Optional[LogicalPlan]:
    """Slide ``Filter(Project(child))`` to ``Project(Filter(child))`` when
    every column the predicate reads passes through the projection
    unchanged (a plain rename or pass-through reference)."""
    if not (isinstance(plan, Filter) and isinstance(plan.child, Project)):
        return None
    project = plan.child
    passthrough = {}
    for name, expr in project.columns:
        base = expr.child if isinstance(expr, Alias) else expr
        if isinstance(base, ColumnRef):
            passthrough[name] = base.name
    needed = plan.condition.references()
    if "*" in needed:
        return None
    if project.star:
        rewritten = plan.condition
    else:
        if not all(name in passthrough for name in needed):
            return None
        rewritten = _rewrite_refs(plan.condition, passthrough)
    return Project(Filter(project.child, rewritten), project.columns,
                   project.star)


def _rewrite_refs(expr: Column, mapping) -> Column:
    if isinstance(expr, ColumnRef):
        return ColumnRef(mapping.get(expr.name, expr.name))
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            _rewrite_refs(expr.left, mapping),
            _rewrite_refs(expr.right, mapping),
            expr.op,
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(_rewrite_refs(expr.operand, mapping), expr.op)
    if isinstance(expr, Alias):
        return Alias(_rewrite_refs(expr.child, mapping), expr.name)
    return expr


def _push_down_limit(plan: LogicalPlan) -> Optional[LogicalPlan]:
    """``Limit(Project(x))`` -> ``Project(Limit(x))``: projection is
    row-wise, so limiting first is equivalent and cheaper — and it lets
    the Limit meet a Sort for top-k fusion."""
    if isinstance(plan, Limit) and isinstance(plan.child, Project):
        project = plan.child
        return Project(
            Limit(project.child, plan.count), project.columns, project.star
        )
    return None


def _fuse_topk(plan: LogicalPlan) -> Optional[LogicalPlan]:
    if isinstance(plan, Limit) and isinstance(plan.child, Sort):
        sort = plan.child
        return TopK(sort.child, sort.orders, plan.count)
    return None


# -- Projection pruning (top-down) --------------------------------------------

def _prune_scan_columns(
    plan: LogicalPlan, required: Optional[Set[str]]
) -> LogicalPlan:
    """Restrict every Scan to the columns its ancestors can observe.

    ``required`` is the set of column names the *parent* needs from this
    subtree; ``None`` means "everything" (a star projection, a row UDF, or
    the plan root).  The executor intersects a pruned Scan's column list
    with the view's actual schema, so over-approximation is always safe.
    """
    if isinstance(plan, Scan):
        if required is None:
            return plan
        return Scan(plan.view, sorted(required))
    if isinstance(plan, Project):
        if plan.star:
            needed = None
        else:
            needed = set()
            for _, expr in plan.columns:
                refs = expr.references()
                if "*" in refs:
                    needed = None
                    break
                needed.update(refs)
        return Project(
            _prune_scan_columns(plan.child, needed), plan.columns, plan.star
        )
    if isinstance(plan, Filter):
        needed = _widen(required, plan.condition.references())
        return Filter(_prune_scan_columns(plan.child, needed), plan.condition)
    if isinstance(plan, Aggregate):
        needed: Optional[Set[str]] = set()
        for _, expr in plan.groupings:
            refs = expr.references()
            if "*" in refs:
                needed = None
                break
            needed.update(refs)
        if needed is not None:
            for agg in plan.aggregates:
                if agg.column is None:
                    continue  # COUNT(*) reads no column
                refs = agg.column.references()
                if "*" in refs:
                    needed = None
                    break
                needed.update(refs)
        return Aggregate(
            _prune_scan_columns(plan.child, needed),
            plan.groupings, plan.aggregates,
        )
    if isinstance(plan, (Sort, TopK)):
        refs: List[str] = []
        for order in plan.orders:
            refs.extend(order.column.references())
        needed = _widen(required, refs)
        pruned = _prune_scan_columns(plan.child, needed)
        if isinstance(plan, Sort):
            return Sort(pruned, plan.orders)
        return TopK(pruned, plan.orders, plan.count)
    if isinstance(plan, Limit):
        return Limit(_prune_scan_columns(plan.child, required), plan.count)
    if isinstance(plan, Join):
        # Both sides may own any required column (schemas are unknown at
        # plan time), so each side gets the full requirement plus its key.
        left_needed = _widen(required, [plan.left_key])
        right_needed = _widen(required, [plan.right_key])
        return Join(
            _prune_scan_columns(plan.left, left_needed),
            _prune_scan_columns(plan.right, right_needed),
            plan.left_key, plan.right_key, plan.how, plan.strategy,
        )
    # Unknown node kind: stop pruning underneath it.
    children = [_prune_scan_columns(c, None) for c in plan.children()]
    return plan.with_children(children) if children else plan


def _widen(
    required: Optional[Set[str]], extra
) -> Optional[Set[str]]:
    if required is None or "*" in extra:
        return None
    return set(required) | set(extra)


# -- Cost model ---------------------------------------------------------------

def annotate_costs(plan: LogicalPlan, session) -> LogicalPlan:
    """Estimate per-node cardinalities and pick join strategies.

    Mutates the (freshly rewritten) plan in place: every node gets
    ``est_rows`` and every Join a ``strategy``.  Scan estimates come from
    :meth:`repro.spark.sql.catalog.Catalog.row_count`, which counts a
    view once and caches the answer.
    """
    threshold = BROADCAST_ROW_THRESHOLD
    if session is not None:
        conf = session.spark_context.conf
        threshold = int(
            conf.get("spark.sql.broadcastRowThreshold", threshold)
        )
    _estimate(plan, session, threshold)
    return plan


def _estimate(plan: LogicalPlan, session, threshold: int) -> int:
    child_rows = [
        _estimate(child, session, threshold) for child in plan.children()
    ]
    if isinstance(plan, Scan):
        rows = _scan_rows(plan, session)
    elif isinstance(plan, Filter):
        rows = max(1, int(child_rows[0] * _selectivity(plan.condition)))
    elif isinstance(plan, Aggregate):
        if not plan.groupings:
            rows = 1
        else:
            rows = max(1, int(child_rows[0] * AGGREGATE_SELECTIVITY))
    elif isinstance(plan, Join):
        left_rows, right_rows = child_rows
        # Foreign-key heuristic: an equi-join keeps about as many rows
        # as its larger input; a left join never drops left rows.
        rows = max(left_rows, right_rows) if plan.how == "inner" \
            else left_rows
        if plan.strategy is None:
            smaller = min(left_rows, right_rows)
            if smaller <= threshold:
                plan.strategy = (
                    "broadcast-left" if left_rows <= right_rows
                    else "broadcast-right"
                )
                if plan.how == "left" and plan.strategy == "broadcast-left":
                    # A left outer join must stream the left side to keep
                    # unmatched rows; only the right side can broadcast.
                    plan.strategy = (
                        "broadcast-right" if right_rows <= threshold
                        else "shuffle-hash"
                    )
            else:
                plan.strategy = "shuffle-hash"
    elif isinstance(plan, (Limit, TopK)):
        rows = min(plan.count, child_rows[0])
    else:  # Project, Sort, anything row-preserving
        rows = child_rows[0] if child_rows else 0
    plan.est_rows = rows
    return rows


def _scan_rows(plan: Scan, session) -> int:
    if session is None:
        return 1000
    try:
        return session.catalog.row_count(plan.view)
    except KeyError:
        return 1000


def _selectivity(condition: Column) -> float:
    """A textbook selectivity guess for one predicate tree."""
    if isinstance(condition, BinaryOp):
        if condition.op == "AND":
            return _selectivity(condition.left) * _selectivity(
                condition.right
            )
        if condition.op == "OR":
            left = _selectivity(condition.left)
            right = _selectivity(condition.right)
            return min(1.0, left + right - left * right)
        if condition.op in ("=", "=="):
            if isinstance(condition.left, Literal) or isinstance(
                condition.right, Literal
            ):
                return EQUALITY_SELECTIVITY
            return FILTER_SELECTIVITY
    return FILTER_SELECTIVITY
