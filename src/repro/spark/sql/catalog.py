"""Temp-view catalog mapping names to DataFrames."""

from __future__ import annotations

from typing import Dict, List


class CatalogError(KeyError):
    """An unknown view was referenced."""


class Catalog:
    """Session-scoped registry of temp views."""

    def __init__(self) -> None:
        self._views: Dict[str, object] = {}
        self._row_counts: Dict[str, int] = {}

    def register(self, name: str, frame) -> None:
        self._views[name.lower()] = frame
        self._row_counts.pop(name.lower(), None)

    def lookup(self, name: str):
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(
                "table or view not found: {}".format(name)
            ) from None

    def row_count(self, name: str) -> int:
        """The view's row count, counted once and cached — the table
        statistic behind the optimizer's cost model."""
        key = name.lower()
        cached = self._row_counts.get(key)
        if cached is None:
            cached = self.lookup(name).rdd.count()
            self._row_counts[key] = cached
        return cached

    def drop(self, name: str) -> None:
        self._views.pop(name.lower(), None)
        self._row_counts.pop(name.lower(), None)

    def names(self) -> List[str]:
        return sorted(self._views)
