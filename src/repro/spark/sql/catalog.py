"""Temp-view catalog mapping names to DataFrames."""

from __future__ import annotations

from typing import Dict, List


class CatalogError(KeyError):
    """An unknown view was referenced."""


class Catalog:
    """Session-scoped registry of temp views."""

    def __init__(self) -> None:
        self._views: Dict[str, object] = {}

    def register(self, name: str, frame) -> None:
        self._views[name.lower()] = frame

    def lookup(self, name: str):
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(
                "table or view not found: {}".format(name)
            ) from None

    def drop(self, name: str) -> None:
        self._views.pop(name.lower(), None)

    def names(self) -> List[str]:
        return sorted(self._views)
