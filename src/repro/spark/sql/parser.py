"""SQL lexer and recursive-descent parser for the supported dialect.

Supported statement shape::

    SELECT <star-or-expr-list>
    FROM <view>
    [WHERE <predicate>]
    [GROUP BY <expr-list>]
    [HAVING <predicate>]
    [ORDER BY <expr> [ASC|DESC], ...]
    [LIMIT <n>]

Expressions cover literals, dotted identifiers, arithmetic, comparisons,
``AND``/``OR``/``NOT``, ``IS [NOT] NULL``, ``IN (...)`` and function calls
(including the aggregates and ``EXPLODE``).
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from repro.spark.column import (
    BinaryOp,
    CaseWhen,
    Column,
    ColumnRef,
    ExplodeColumn,
    LikeColumn,
    Literal,
    SortOrder,
    UdfColumn,
    UnaryOp,
)
from repro.spark.dataframe import (
    AggCall,
    agg_avg,
    agg_collect_list,
    agg_count,
    agg_first,
    agg_max,
    agg_min,
    agg_sum,
)
from repro.spark.sql.plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
)


class SqlParseError(ValueError):
    """Malformed SQL text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(\.[A-Za-z_][A-Za-z_0-9]*)*)
  | (?P<op><>|!=|<=|>=|[=<>+\-*/%(),.])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "asc", "desc", "and", "or", "not", "as", "is", "null", "true", "false",
    "in", "distinct", "join", "inner", "on", "left", "outer",
    "between", "like", "case", "when", "then", "else", "end",
}

_AGGREGATES = {
    "count": agg_count,
    "sum": agg_sum,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
    "collect_list": agg_collect_list,
    "sequence": agg_collect_list,   # the paper's SEQUENCE() UDAF
    "first": agg_first,
    "array_distinct": agg_first,    # over a grouping key: same result
}

_SCALAR_FUNCTIONS = {
    "upper": lambda v: None if v is None else str(v).upper(),
    "lower": lambda v: None if v is None else str(v).lower(),
    "length": lambda v: None if v is None else len(str(v)),
    "abs": lambda v: None if v is None else abs(v),
    "concat": lambda *vs: "".join("" if v is None else str(v) for v in vs),
    "coalesce": lambda *vs: next((v for v in vs if v is not None), None),
    "size": lambda v: len(v) if isinstance(v, (list, dict, str)) else -1,
}


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str):
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "{}:{}".format(self.kind, self.text)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise SqlParseError(
                "unexpected character {!r} at offset {}".format(
                    text[position], position
                )
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "ident" and value.lower() in _KEYWORDS:
            tokens.append(_Token("kw", value.lower()))
        else:
            tokens.append(_Token(kind or "op", value))
    tokens.append(_Token("eof", ""))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._index = 0

    # -- Token helpers -------------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._accept(kind, text)
        if token is None:
            raise SqlParseError(
                "expected {} {!r}, found {!r}".format(
                    kind, text or "", self._peek().text
                )
            )
        return token

    # -- Statement ------------------------------------------------------------
    def parse_select(self) -> LogicalPlan:
        self._expect("kw", "select")
        star = False
        selections: List[Tuple[Optional[str], Any]] = []
        if self._accept("op", "*"):
            star = True
        else:
            selections.append(self._select_item())
            while self._accept("op", ","):
                selections.append(self._select_item())
        self._expect("kw", "from")
        view = self._expect("ident").text
        plan: LogicalPlan = Scan(view)
        while True:
            how = "inner"
            if self._accept("kw", "inner"):
                pass
            elif self._accept("kw", "left"):
                self._accept("kw", "outer")
                how = "left"
            elif not (
                self._peek().kind == "kw" and self._peek().text == "join"
            ):
                break
            self._expect("kw", "join")
            right_view = self._expect("ident").text
            self._expect("kw", "on")
            left_key, right_key = self._join_keys(view, right_view)
            plan = Join(plan, Scan(right_view), left_key, right_key, how)

        if self._accept("kw", "where"):
            plan = Filter(plan, self._expression())

        groupings: List[Tuple[str, Column]] = []
        if self._accept("kw", "group"):
            self._expect("kw", "by")
            groupings.append(self._named_expression())
            while self._accept("op", ","):
                groupings.append(self._named_expression())

        having: Optional[Column] = None
        if self._accept("kw", "having"):
            having = self._expression()

        aggregates = [
            item for item in selections if isinstance(item[1], AggCall)
        ]
        if groupings or aggregates:
            agg_calls = []
            for name, item in selections:
                if isinstance(item, AggCall):
                    agg_calls.append(item.alias(name) if name else item)
            plan = Aggregate(plan, groupings, agg_calls)
            if having is not None:
                plan = Filter(plan, having)
            extra = [
                (name or expr.output_name(), expr)
                for name, expr in selections
                if isinstance(expr, Column)
            ]
            keep = [name for name, _ in groupings]
            keep += [agg.output_name for agg in agg_calls]
            columns = [(name, ColumnRef(name)) for name in keep]
            if extra:
                columns += extra
            plan = Project(plan, columns)
        elif not star:
            plan = Project(
                plan,
                [
                    (name or expr.output_name(), expr)
                    for name, expr in selections
                ],
            )

        if self._accept("kw", "order"):
            self._expect("kw", "by")
            orders = [self._sort_order()]
            while self._accept("op", ","):
                orders.append(self._sort_order())
            plan = _attach_sort(plan, orders)

        if self._accept("kw", "limit"):
            count = int(self._expect("number").text)
            plan = Limit(plan, count)

        self._expect("eof")
        return plan

    def _join_keys(self, left_view: str, right_view: str):
        """Parse ``a.x = b.y`` (either order) into per-side key names.

        Qualified names resolve by their table prefix; unqualified names
        are taken as-is for both sides (``ON key = key``)."""
        first = self._expect("ident").text
        self._expect("op", "=")
        second = self._expect("ident").text

        def split(name):
            if "." in name:
                prefix, _, column = name.partition(".")
                return prefix, column
            return None, name

        first_table, first_column = split(first)
        second_table, second_column = split(second)
        if first_table == right_view or second_table == left_view:
            return second_column, first_column
        return first_column, second_column

    def _select_item(self) -> Tuple[Optional[str], Any]:
        expr = self._expression_or_aggregate()
        if self._accept("kw", "as"):
            return self._expect("ident").text, expr
        token = self._accept("ident")
        if token:
            return token.text, expr
        return None, expr

    def _named_expression(self) -> Tuple[str, Column]:
        expr = self._expression()
        return expr.output_name(), expr

    def _sort_order(self) -> SortOrder:
        expr = self._expression()
        ascending = True
        if self._accept("kw", "desc"):
            ascending = False
        else:
            self._accept("kw", "asc")
        return SortOrder(expr, ascending)

    # -- Expressions ------------------------------------------------------------
    def _expression_or_aggregate(self):
        token = self._peek()
        if token.kind == "ident" and token.text.lower() in _AGGREGATES:
            following = self._tokens[self._index + 1]
            if following.kind == "op" and following.text == "(":
                return self._aggregate_call()
        return self._expression()

    def _aggregate_call(self) -> AggCall:
        name = self._advance().text.lower()
        factory = _AGGREGATES[name]
        self._expect("op", "(")
        if self._accept("op", "*"):
            self._expect("op", ")")
            return agg_count()
        self._accept("kw", "distinct")
        argument = self._expression()
        self._expect("op", ")")
        return factory(argument)

    def _expression(self) -> Column:
        return self._or_expr()

    def _or_expr(self) -> Column:
        left = self._and_expr()
        while self._accept("kw", "or"):
            left = BinaryOp(left, self._and_expr(), "OR")
        return left

    def _and_expr(self) -> Column:
        left = self._not_expr()
        while self._accept("kw", "and"):
            left = BinaryOp(left, self._not_expr(), "AND")
        return left

    def _not_expr(self) -> Column:
        if self._accept("kw", "not"):
            return UnaryOp(self._not_expr(), "NOT")
        return self._comparison()

    def _comparison(self) -> Column:
        left = self._additive()
        token = self._peek()
        if token.kind == "op" and token.text in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self._advance()
            op = "<>" if token.text == "!=" else token.text
            return BinaryOp(left, self._additive(), op)
        if self._accept("kw", "is"):
            negated = bool(self._accept("kw", "not"))
            self._expect("kw", "null")
            return UnaryOp(left, "ISNOTNULL" if negated else "ISNULL")
        if self._accept("kw", "between"):
            low = self._additive()
            self._expect("kw", "and")
            high = self._additive()
            return BinaryOp(
                BinaryOp(left, low, ">="),
                BinaryOp(left, high, "<="),
                "AND",
            )
        if self._accept("kw", "like"):
            pattern = self._expect("string").text
            quote = pattern[0]
            return LikeColumn(left, pattern[1:-1].replace(quote * 2, quote))
        if self._peek().kind == "kw" and self._peek().text == "not":
            following = self._tokens[self._index + 1]
            if following.kind == "kw" and following.text == "like":
                self._advance()
                self._advance()
                pattern = self._expect("string").text
                quote = pattern[0]
                return LikeColumn(
                    left, pattern[1:-1].replace(quote * 2, quote),
                    negated=True,
                )
        if self._accept("kw", "in"):
            self._expect("op", "(")
            members = [self._expression()]
            while self._accept("op", ","):
                members.append(self._expression())
            self._expect("op", ")")
            clause: Column = BinaryOp(left, members[0], "=")
            for member in members[1:]:
                clause = BinaryOp(clause, BinaryOp(left, member, "="), "OR")
            return clause
        return left

    def _additive(self) -> Column:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self._advance()
                left = BinaryOp(left, self._multiplicative(), token.text)
            else:
                return left

    def _multiplicative(self) -> Column:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("*", "/", "%"):
                self._advance()
                left = BinaryOp(left, self._unary(), token.text)
            else:
                return left

    def _unary(self) -> Column:
        if self._accept("op", "-"):
            return UnaryOp(self._unary(), "NEG")
        return self._primary()

    def _primary(self) -> Column:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.kind == "string":
            self._advance()
            quote = token.text[0]
            inner = token.text[1:-1].replace(quote * 2, quote)
            return Literal(inner)
        if token.kind == "kw" and token.text in ("true", "false"):
            self._advance()
            return Literal(token.text == "true")
        if token.kind == "kw" and token.text == "null":
            self._advance()
            return Literal(None)
        if token.kind == "kw" and token.text == "case":
            return self._case_expression()
        if self._accept("op", "("):
            inner = self._expression()
            self._expect("op", ")")
            return inner
        if token.kind == "ident":
            following = self._tokens[self._index + 1]
            if following.kind == "op" and following.text == "(":
                return self._function_call()
            self._advance()
            return ColumnRef(token.text)
        raise SqlParseError("unexpected token {!r}".format(token.text))

    def _case_expression(self) -> Column:
        self._expect("kw", "case")
        branches = []
        while self._accept("kw", "when"):
            condition = self._expression()
            self._expect("kw", "then")
            branches.append((condition, self._expression()))
        if not branches:
            raise SqlParseError("CASE requires at least one WHEN branch")
        default = None
        if self._accept("kw", "else"):
            default = self._expression()
        self._expect("kw", "end")
        return CaseWhen(branches, default)

    def _function_call(self) -> Column:
        name = self._advance().text.lower()
        self._expect("op", "(")
        args: List[Column] = []
        if not self._accept("op", ")"):
            args.append(self._expression())
            while self._accept("op", ","):
                args.append(self._expression())
            self._expect("op", ")")
        if name == "explode":
            if len(args) != 1:
                raise SqlParseError("EXPLODE takes exactly one argument")
            return ExplodeColumn(args[0])
        func = _SCALAR_FUNCTIONS.get(name)
        if func is None:
            raise SqlParseError("unknown function {!r}".format(name))
        return UdfColumn(func, args, name=name)


def _attach_sort(plan: LogicalPlan, orders: List[SortOrder]) -> LogicalPlan:
    """Place the Sort correctly relative to the projection.

    SQL allows ORDER BY keys the SELECT list drops (``SELECT name FROM t
    ORDER BY age``).  When every key survives the projection the Sort goes
    on top; otherwise the keys ride through as hidden ``#sort<i>`` columns
    that a final projection strips — the same trick real engines use.
    """
    if not isinstance(plan, Project) or plan.star:
        return Sort(plan, orders)
    projected = {name for name, _ in plan.columns}
    surviving = all(
        isinstance(order.column, ColumnRef)
        and order.column.name in projected
        for order in orders
    )
    if surviving:
        return Sort(plan, orders)
    hidden = [
        ("#sort{}".format(index), order.column)
        for index, order in enumerate(orders)
    ]
    widened = Project(plan.child, plan.columns + hidden, plan.star)
    sorted_plan = Sort(widened, [
        SortOrder(ColumnRef(name), order.ascending)
        for (name, _), order in zip(hidden, orders)
    ])
    return Project(
        sorted_plan,
        [(name, ColumnRef(name)) for name, _ in plan.columns],
    )


def parse_sql(text: str) -> LogicalPlan:
    """Parse one SELECT statement into a logical plan."""
    return _Parser(_tokenize(text.strip().rstrip(";"))).parse_select()
