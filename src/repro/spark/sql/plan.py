"""Logical plan nodes shared by the SQL parser, optimizer and executor."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.spark.column import Column, SortOrder


class LogicalPlan:
    """Base node; children are exposed for generic rewriting."""

    #: Estimated output cardinality, set by the optimizer's cost pass
    #: (:func:`repro.spark.sql.optimizer.annotate_costs`); None = unknown.
    est_rows = None

    def children(self) -> List["LogicalPlan"]:
        return []

    def with_children(self, children: List["LogicalPlan"]) -> "LogicalPlan":
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        """Explain-style text rendering of the plan subtree."""
        label = self._label()
        if self.est_rows is not None:
            label += " [est_rows={}]".format(self.est_rows)
        line = " " * indent + label
        return "\n".join(
            [line] + [child.describe(indent + 2) for child in self.children()]
        )

    def _label(self) -> str:
        return type(self).__name__


class Scan(LogicalPlan):
    """Read a registered temp view.

    ``columns`` (set by the projection-pruning rule) restricts the scan
    to the columns the rest of the plan can observe; None reads all.
    """

    def __init__(self, view: str, columns: Optional[List[str]] = None):
        self.view = view
        self.columns = columns

    def with_children(self, children: List[LogicalPlan]) -> "Scan":
        return self

    def _label(self) -> str:
        if self.columns is not None:
            return "Scan({}, columns=[{}])".format(
                self.view, ", ".join(self.columns)
            )
        return "Scan({})".format(self.view)


class Project(LogicalPlan):
    """Projection; ``star`` keeps all input columns before the extras."""

    def __init__(
        self,
        child: LogicalPlan,
        columns: List[Tuple[str, Column]],
        star: bool = False,
    ):
        self.child = child
        self.columns = columns
        self.star = star

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> "Project":
        return Project(children[0], self.columns, self.star)

    def _label(self) -> str:
        names = ["*"] if self.star else []
        names += [name for name, _ in self.columns]
        return "Project({})".format(", ".join(names))


class Filter(LogicalPlan):
    def __init__(self, child: LogicalPlan, condition: Column):
        self.child = child
        self.condition = condition

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> "Filter":
        return Filter(children[0], self.condition)

    def _label(self) -> str:
        return "Filter({})".format(self.condition.output_name())


class Join(LogicalPlan):
    """Equi-join of two inputs on one key per side (inner or left).

    ``strategy`` is chosen by the cost model: ``shuffle-hash`` (default)
    or ``broadcast-left``/``broadcast-right`` when the named side's
    estimated cardinality is under the broadcast threshold.
    """

    def __init__(self, left: LogicalPlan, right: LogicalPlan,
                 left_key: str, right_key: str, how: str = "inner",
                 strategy: Optional[str] = None):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.how = how
        self.strategy = strategy

    def children(self) -> List["LogicalPlan"]:
        return [self.left, self.right]

    def with_children(self, children: List["LogicalPlan"]) -> "Join":
        return Join(children[0], children[1], self.left_key,
                    self.right_key, self.how, self.strategy)

    def _label(self) -> str:
        label = "Join[{}]({} = {})".format(
            self.how, self.left_key, self.right_key
        )
        if self.strategy is not None:
            label += " using {}".format(self.strategy)
        return label


class Aggregate(LogicalPlan):
    """GROUP BY: grouping expressions plus aggregate calls."""

    def __init__(
        self,
        child: LogicalPlan,
        groupings: List[Tuple[str, Column]],
        aggregates: List,  # List[AggCall]
    ):
        self.child = child
        self.groupings = groupings
        self.aggregates = aggregates

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> "Aggregate":
        return Aggregate(children[0], self.groupings, self.aggregates)

    def _label(self) -> str:
        return "Aggregate(keys=[{}], aggs=[{}])".format(
            ", ".join(name for name, _ in self.groupings),
            ", ".join(agg.output_name for agg in self.aggregates),
        )


class Sort(LogicalPlan):
    def __init__(self, child: LogicalPlan, orders: List[SortOrder]):
        self.child = child
        self.orders = orders

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> "Sort":
        return Sort(children[0], self.orders)

    def _label(self) -> str:
        return "Sort({})".format(
            ", ".join(
                "{} {}".format(
                    order.column.output_name(),
                    "ASC" if order.ascending else "DESC",
                )
                for order in self.orders
            )
        )


class Limit(LogicalPlan):
    def __init__(self, child: LogicalPlan, count: int):
        self.child = child
        self.count = count

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> "Limit":
        return Limit(children[0], self.count)

    def _label(self) -> str:
        return "Limit({})".format(self.count)


class TopK(LogicalPlan):
    """Fused Sort+Limit produced by the optimizer: a heap-based top-k that
    avoids the full sort shuffle."""

    def __init__(self, child: LogicalPlan, orders: List[SortOrder], count: int):
        self.child = child
        self.orders = orders
        self.count = count

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> "TopK":
        return TopK(children[0], self.orders, self.count)

    def _label(self) -> str:
        return "TopK({}, {})".format(
            ", ".join(o.column.output_name() for o in self.orders), self.count
        )


def transform_up(plan: LogicalPlan, rule) -> LogicalPlan:
    """Apply ``rule`` bottom-up over the tree; rule returns a node or None."""
    children = [transform_up(child, rule) for child in plan.children()]
    if children:
        plan = plan.with_children(children)
    replaced = rule(plan)
    return replaced if replaced is not None else plan
