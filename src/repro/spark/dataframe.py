"""DataFrames: structured, schema-carrying, partitioned tables.

A DataFrame wraps an RDD of row dicts plus a :class:`StructType` schema.
Rumble maps FLWOR tuple streams onto these (paper, Section 4.3): each
FLWOR variable is a column whose values are materialized sequences of
items, and the clause semantics become the relational operators below.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.spark.column import (
    Column,
    ExplodeColumn,
    SortOrder,
    col,
)
from repro.spark.rdd import RDD
from repro.spark.types import (
    Row,
    StructField,
    StructType,
    coerce_record,
    infer_schema,
    infer_type,
)

ColumnLike = Union[str, Column]


def _as_column(value: ColumnLike) -> Column:
    return col(value) if isinstance(value, str) else value


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


class AggCall:
    """One aggregate in a ``groupBy(...).agg(...)`` call."""

    def __init__(
        self,
        name: str,
        column: Optional[Column],
        reducer: Callable[[List[Any]], Any],
        alias: Optional[str] = None,
    ):
        self.name = name
        self.column = column
        self.reducer = reducer
        self._alias = alias

    def alias(self, name: str) -> "AggCall":
        return AggCall(self.name, self.column, self.reducer, alias=name)

    @property
    def output_name(self) -> str:
        if self._alias:
            return self._alias
        inner = self.column.output_name() if self.column else "*"
        return "{}({})".format(self.name, inner)

    def compute(self, rows: List[Dict[str, Any]]) -> Any:
        if self.column is None:
            return self.reducer([None] * len(rows))
        return self.reducer([self.column.eval(row) for row in rows])


def _skip_nulls(values: List[Any]) -> List[Any]:
    return [v for v in values if v is not None]


def agg_count(column: Optional[ColumnLike] = None) -> AggCall:
    if column is None or column == "*":
        return AggCall("count", None, len)
    target = _as_column(column)
    return AggCall("count", target, lambda vs: len(_skip_nulls(vs)))


def agg_sum(column: ColumnLike) -> AggCall:
    return AggCall(
        "sum", _as_column(column),
        lambda vs: sum(_skip_nulls(vs)) if _skip_nulls(vs) else None,
    )


def agg_avg(column: ColumnLike) -> AggCall:
    def average(values: List[Any]) -> Any:
        values = _skip_nulls(values)
        return sum(values) / len(values) if values else None

    return AggCall("avg", _as_column(column), average)


def agg_min(column: ColumnLike) -> AggCall:
    return AggCall(
        "min", _as_column(column),
        lambda vs: min(_skip_nulls(vs)) if _skip_nulls(vs) else None,
    )


def agg_max(column: ColumnLike) -> AggCall:
    return AggCall(
        "max", _as_column(column),
        lambda vs: max(_skip_nulls(vs)) if _skip_nulls(vs) else None,
    )


def agg_collect_list(column: ColumnLike) -> AggCall:
    """The paper's SEQUENCE() UDF: materialize the group's values."""
    return AggCall("collect_list", _as_column(column), _skip_nulls)


def agg_first(column: ColumnLike) -> AggCall:
    """First value of the group — what ARRAY_DISTINCT over a constant
    grouping key reduces to (paper, Section 4.7)."""
    return AggCall(
        "first", _as_column(column),
        lambda vs: vs[0] if vs else None,
    )


class GroupedData:
    """The result of ``DataFrame.groupBy``: waiting for aggregates."""

    def __init__(self, frame: "DataFrame", keys: List[Column]):
        self._frame = frame
        self._keys = keys

    def agg(self, *aggregates: AggCall) -> "DataFrame":
        keys = self._keys
        key_names = [key.output_name() for key in keys]

        def to_pair(row: Dict[str, Any]):
            key = tuple(_hashable(key_col.eval(row)) for key_col in keys)
            return (key, row)

        grouped = self._frame.rdd.map(to_pair).group_by_key()

        def build_row(pair) -> Dict[str, Any]:
            _, rows = pair
            out = {
                name: key_col.eval(rows[0])
                for name, key_col in zip(key_names, keys)
            }
            for aggregate in aggregates:
                out[aggregate.output_name] = aggregate.compute(rows)
            return out

        result = grouped.map(build_row)
        fields = [StructField(name, infer_type(None)) for name in key_names]
        fields += [
            StructField(a.output_name, infer_type(None)) for a in aggregates
        ]
        return DataFrame(self._frame.session, result, StructType(fields))

    def count(self) -> "DataFrame":
        return self.agg(agg_count().alias("count"))


def _normalize_sort_value(value: Any) -> Any:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (list, dict)):
        return json.dumps(value, sort_keys=True, default=str)
    return value


def _null_safe_key(value: Any, ascending: bool):
    """Sortable key with Spark null ordering: NULLs first when ascending,
    last when descending — the null tag sits outside any descending
    inversion of the value itself."""
    if value is None:
        return (0 if ascending else 2, 0)
    value = _normalize_sort_value(value)
    return (1, value if ascending else _Reversed(value))


class DataFrame:
    """A schema-carrying view over an RDD of row dicts."""

    def __init__(self, session, rdd: RDD, schema: StructType):
        self.session = session
        self.rdd = rdd
        self.schema = schema

    @property
    def columns(self) -> List[str]:
        return self.schema.field_names

    def _record_op(self, op: str) -> None:
        """Count one relational-operator application while profiling."""
        obs = self.session.spark_context.obs
        if obs is not None and obs.enabled:
            obs.metrics.counter("rumble.dataframe.ops", op=op).inc()

    # -- Relational operators --------------------------------------------------
    def select(self, *columns: ColumnLike) -> "DataFrame":
        """Projection; at most one EXPLODE column fans rows out."""
        self._record_op("select")
        exprs = [_as_column(c) for c in columns]
        names = [expr.output_name() for expr in exprs]
        explode_at = [
            index for index, expr in enumerate(exprs)
            if isinstance(expr, ExplodeColumn)
            or (hasattr(expr, "child") and isinstance(
                getattr(expr, "child", None), ExplodeColumn))
        ]
        if len(explode_at) > 1:
            raise ValueError("only one explode() per select is supported")

        if not explode_at:
            def project(row: Dict[str, Any]) -> Dict[str, Any]:
                return {
                    name: expr.eval(row)
                    for name, expr in zip(names, exprs)
                }

            rdd = self.rdd.map(project)
        else:
            fanout = explode_at[0]

            def project_explode(row: Dict[str, Any]) -> List[Dict[str, Any]]:
                base = {
                    name: expr.eval(row)
                    for index, (name, expr) in enumerate(zip(names, exprs))
                    if index != fanout
                }
                out = []
                for element in exprs[fanout].eval(row):
                    expanded = dict(base)
                    expanded[names[fanout]] = element
                    out.append(expanded)
                return out

            rdd = self.rdd.flat_map(project_explode)
        fields = [StructField(name, infer_type(None)) for name in names]
        return DataFrame(self.session, rdd, StructType(fields))

    def where(self, condition: ColumnLike) -> "DataFrame":
        self._record_op("where")
        predicate = _as_column(condition)
        rdd = self.rdd.filter(lambda row: predicate.eval(row) is True)
        return DataFrame(self.session, rdd, self.schema)

    filter = where

    def with_column(self, name: str, column: Column) -> "DataFrame":
        self._record_op("withColumn")

        def extend(row: Dict[str, Any]) -> Dict[str, Any]:
            out = dict(row)
            out[name] = column.eval(row)
            return out

        fields = [f for f in self.schema.fields if f.name != name]
        fields.append(StructField(name, infer_type(None)))
        return DataFrame(self.session, self.rdd.map(extend), StructType(fields))

    withColumn = with_column

    def drop(self, *names: str) -> "DataFrame":
        doomed = set(names)

        def strip(row: Dict[str, Any]) -> Dict[str, Any]:
            return {k: v for k, v in row.items() if k not in doomed}

        fields = [f for f in self.schema.fields if f.name not in doomed]
        return DataFrame(self.session, self.rdd.map(strip), StructType(fields))

    def with_column_renamed(self, old: str, new: str) -> "DataFrame":
        def rename(row: Dict[str, Any]) -> Dict[str, Any]:
            out = dict(row)
            if old in out:
                out[new] = out.pop(old)
            return out

        fields = [
            StructField(new if f.name == old else f.name, f.data_type)
            for f in self.schema.fields
        ]
        return DataFrame(self.session, self.rdd.map(rename), StructType(fields))

    withColumnRenamed = with_column_renamed

    def group_by(self, *keys: ColumnLike) -> GroupedData:
        self._record_op("groupBy")
        return GroupedData(self, [_as_column(key) for key in keys])

    groupBy = group_by

    def order_by(
        self,
        *orders: Union[ColumnLike, SortOrder],
        ascending: Union[bool, Sequence[bool], None] = None,
    ) -> "DataFrame":
        """Total order over the whole frame.

        Sorting pulls rows through a range-partitioned shuffle via
        ``RDD.sortBy``, so the physical behaviour matches Spark's.
        """
        self._record_op("orderBy")
        specs: List[SortOrder] = []
        for order in orders:
            if isinstance(order, SortOrder):
                specs.append(order)
            else:
                specs.append(SortOrder(_as_column(order), True))
        if ascending is not None:
            flags = (
                [ascending] * len(specs)
                if isinstance(ascending, bool)
                else list(ascending)
            )
            specs = [
                SortOrder(spec.column, flag)
                for spec, flag in zip(specs, flags)
            ]

        def key_func(row: Dict[str, Any]):
            return tuple(
                _null_safe_key(spec.column.eval(row), spec.ascending)
                for spec in specs
            )

        return DataFrame(
            self.session, self.rdd.sort_by(key_func), self.schema
        )

    orderBy = order_by
    sort = order_by

    def limit(self, count: int) -> "DataFrame":
        self._record_op("limit")
        rows = self.rdd.take(count)
        return DataFrame(
            self.session,
            self.session.spark_context.parallelize(rows, 1),
            self.schema,
        )

    def union(self, other: "DataFrame") -> "DataFrame":
        merged = StructType(self.schema.fields)
        return DataFrame(self.session, self.rdd.union(other.rdd), merged)

    def distinct(self) -> "DataFrame":
        seen_key = lambda row: tuple(sorted(
            (k, _hashable(v)) for k, v in row.items()
        ))
        paired = self.rdd.map(lambda row: (seen_key(row), row))
        rdd = paired.reduce_by_key(lambda first, _: first).values()
        return DataFrame(self.session, rdd, self.schema)

    def join(
        self, other: "DataFrame", on: Union[str, List[str]], how: str = "inner"
    ) -> "DataFrame":
        """Equi-join on shared key column(s); ``how`` is ``inner`` or
        ``left`` (unmatched left rows keep NULLs for right columns)."""
        if how not in ("inner", "left"):
            raise ValueError("unsupported join type: " + how)
        self._record_op("join")
        keys = [on] if isinstance(on, str) else list(on)

        def key_of(row: Dict[str, Any]):
            return tuple(_hashable(row.get(k)) for k in keys)

        def merge(pair):
            _, (lrow, rrow) = pair
            out = dict(rrow)
            out.update(lrow)
            return out

        left = self.rdd.map(lambda row: (key_of(row), row))
        if how == "inner":
            right = other.rdd.map(lambda row: (key_of(row), row))
            joined = left.join(right).map(merge)
        else:
            right_columns = [c for c in other.columns if c not in keys]
            null_right = {name: None for name in right_columns}

            def emit_left(pair):
                key, tagged = pair
                lefts = [value for tag, value in tagged if tag == "L"]
                rights = [value for tag, value in tagged if tag == "R"]
                if not rights:
                    rights = [null_right]
                return [
                    merge((key, (lrow, rrow)))
                    for lrow in lefts for rrow in rights
                ]

            tagged = left.map(
                lambda pair: (pair[0], ("L", pair[1]))
            ).union(other.rdd.map(
                lambda row: (key_of(row), ("R", row))
            ))
            joined = tagged.group_by_key().flat_map(emit_left)
        names = list(dict.fromkeys(self.columns + other.columns))
        fields = [StructField(name, infer_type(None)) for name in names]
        return DataFrame(self.session, joined, StructType(fields))

    def with_row_index(self, name: str = "row_index") -> "DataFrame":
        """Add a 0-based global row index column.

        This is the DataFrame-flavoured ``zipWithIndex`` the paper adopts
        for the FLWOR count clause (Section 4.9).
        """
        def attach(pair) -> Dict[str, Any]:
            row, index = pair
            out = dict(row)
            out[name] = index
            return out

        rdd = self.rdd.zip_with_index().map(attach)
        fields = list(self.schema.fields) + [StructField(name, infer_type(0))]
        return DataFrame(self.session, rdd, StructType(fields))

    # -- Actions -----------------------------------------------------------------
    def collect(self) -> List[Row]:
        return [Row.from_dict(row) for row in self.rdd.collect()]

    def collect_dicts(self) -> List[Dict[str, Any]]:
        return self.rdd.collect()

    def take(self, count: int) -> List[Row]:
        return [Row.from_dict(row) for row in self.rdd.take(count)]

    def count(self) -> int:
        return self.rdd.count()

    def first(self) -> Row:
        return Row.from_dict(self.rdd.first())

    def show(self, count: int = 20) -> str:
        """Render the first rows as an aligned text table (and return it)."""
        rows = self.rdd.take(count)
        headers = self.columns or sorted(
            {key for row in rows for key in row}
        )
        cells = [
            [_render_cell(row.get(name)) for name in headers] for row in rows
        ]
        widths = [
            max([len(name)] + [len(line[i]) for line in cells])
            for i, name in enumerate(headers)
        ]
        divider = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        lines = [divider]
        lines.append(
            "|" + "|".join(
                " {} ".format(name.ljust(width))
                for name, width in zip(headers, widths)
            ) + "|"
        )
        lines.append(divider)
        for line in cells:
            lines.append(
                "|" + "|".join(
                    " {} ".format(cell.ljust(width))
                    for cell, width in zip(line, widths)
                ) + "|"
            )
        lines.append(divider)
        table = "\n".join(lines)
        print(table)
        return table

    def create_or_replace_temp_view(self, name: str) -> None:
        self.session.catalog.register(name, self)

    createOrReplaceTempView = create_or_replace_temp_view

    def sql(self, query: str) -> "DataFrame":
        """Run a SQL query; ``self`` is usable as the implicit view."""
        return self.session.sql(query)


class _Reversed:
    """Wrap a key so that its ordering is inverted inside a sort tuple.

    All six comparisons are defined: tuple comparison applies the outer
    operator (e.g. ``<=``) directly to the first differing element.
    """

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __le__(self, other: "_Reversed") -> bool:
        return other.key <= self.key

    def __gt__(self, other: "_Reversed") -> bool:
        return other.key > self.key

    def __ge__(self, other: "_Reversed") -> bool:
        return other.key >= self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key

    def __hash__(self) -> int:
        return hash(self.key)


def _render_cell(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (dict, list)):
        return json.dumps(value, separators=(",", ":"), default=str)
    return str(value)


class DataFrameReader:
    """``spark.read.json(...)`` — schema inference included.

    Inference requires a full extra pass over the data, which is exactly
    why the paper's Figure 11 shows Rumble beating Spark SQL on the filter
    query: Rumble skips this pass.
    """

    def __init__(self, session):
        self.session = session

    def json(self, uri: str, min_partitions: Optional[int] = None,
             mode: str = "failfast",
             corrupt_field: str = "_corrupt_record",
             faults=None) -> DataFrame:
        """Read JSON Lines with schema inference.

        ``mode`` is the Spark-style parse mode (``failfast``,
        ``permissive``, ``dropmalformed``); in ``permissive`` mode a
        corrupt line becomes a record carrying the raw text under
        ``corrupt_field``, which schema inference then surfaces as a
        string column.  ``faults`` is an optional
        :class:`repro.spark.faults.FaultManager` that counts every
        tolerated malformed line.
        """
        from repro.jsoniq.jsonlines import PARSE_MODES, JsonSyntaxError

        if mode not in PARSE_MODES:
            raise ValueError("unknown parse mode: " + mode)
        lines = self.session.spark_context.text_file(
            uri, min_partitions,
            decode_errors="strict" if mode == "failfast" else "replace",
        )

        def decode(text: str):
            try:
                return json.loads(text)
            except ValueError as error:
                if mode == "failfast":
                    raise JsonSyntaxError(str(error)) from error
                if faults is not None:
                    faults.record(
                        "malformed_dropped" if mode == "dropmalformed"
                        else "malformed_captured",
                        "MalformedRecord",
                        mode=mode, reason=str(error)[:120],
                    )
                if mode == "permissive":
                    return {corrupt_field: text}
                return None

        def decode_lines(part):
            for line in part:
                record = decode(line)
                if record is not None:
                    yield record

        raw = lines.map_partitions(decode_lines).cache()
        schema = infer_schema(raw.to_local_iterator())
        records = raw.map(lambda record: coerce_record(record, schema))
        return DataFrame(self.session, records, schema)


def dataframe_from_rows(
    session, rows: Iterable[Dict[str, Any]], schema: Optional[StructType] = None
) -> DataFrame:
    """Build a DataFrame from local dict records (with inference if needed)."""
    records = [
        row.as_dict() if isinstance(row, Row) else dict(row) for row in rows
    ]
    if schema is None:
        schema = infer_schema(records)
        records = [coerce_record(record, schema) for record in records]
    rdd = session.spark_context.parallelize(records)
    return DataFrame(session, rdd, schema)
