"""The unified memory manager: one budget over all materialized state.

Spark divides executor memory between *storage* (cached partitions) and
*execution* (shuffle buffers) under a single unified pool; this module
reproduces that contract for the simulated substrate.  A
:class:`MemoryManager` with a byte budget (``spark.memory.budgetBytes``)
accounts every cached RDD partition and every map-side shuffle bucket,
using the same pickled-size weighing ``bucketize`` already performs.
When the pool overflows:

* cached partitions are evicted in LRU order — ``MEMORY_AND_DISK``
  partitions move to a :class:`repro.spark.storage.SpillStore` block,
  ``MEMORY_ONLY`` partitions are dropped and recomputed from lineage on
  the next read;
* oversized shuffle buckets are spilled to storage blocks and fetched
  lazily on the reduce side.

With no budget configured (the default) the manager is inert: nothing is
weighed, accounted, or spilled, so unbounded runs pay zero overhead.
All decisions land in the always-on ``counts`` dict and — when an
observability instance is attached — in ``rumble.memory.*`` counters and
the event log.
"""

from __future__ import annotations

import pickle
import weakref
from collections import OrderedDict
from typing import Optional

from repro.sanitizer import san_rlock, shared_state
from repro.spark.storage import SpillHandle, SpillStore


class _Entry:
    __slots__ = ("kind", "size", "ref", "split")

    def __init__(self, kind: str, size: int, ref=None, split: int = 0):
        self.kind = kind  # "cached" | "shuffle"
        self.size = size
        self.ref = ref
        self.split = split


@shared_state
class MemoryManager:
    """Budgeted accounting of cached partitions and shuffle buckets.

    Mutators take a reentrant lock: under the threaded executor two
    task threads can register partitions or admit buckets at once, and
    ``used`` / the LRU table are read-modify-writes.  Reentrant because
    an admission can shrink, a shrink evicts through the RDD, and both
    paths land back in :meth:`record` — all inside one task's call.
    """

    def __init__(self, budget: Optional[int] = None,
                 store: Optional[SpillStore] = None):
        if budget is not None and budget <= 0:
            raise ValueError("memory budget must be positive")
        self.budget = budget
        self.store = store if store is not None else SpillStore()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self.used = 0
        self.counts: dict = {}
        self.observer = None
        self._lock = san_rlock("spark.memory")
        #: Shuffle ids released from GC finalizers (see
        #: :meth:`release_shuffle_deferred`); drained lazily under the
        #: lock by the next accounting operation.
        self._deferred_releases: list = []

    # -- configuration ---------------------------------------------------

    @property
    def limited(self) -> bool:
        return self.budget is not None

    def set_budget(self, budget: Optional[int]) -> None:
        if budget is not None and budget <= 0:
            raise ValueError("memory budget must be positive")
        with self._lock:
            self.budget = budget
            if self.limited:
                self._shrink()

    # -- weighing --------------------------------------------------------

    def weigh(self, records) -> Optional[int]:
        """Pickled size of a record list; ``None`` when unpicklable
        (such partitions stay resident and unaccounted)."""
        try:
            return len(pickle.dumps(records, protocol=4))
        except Exception:
            return None

    # -- cached RDD partitions -------------------------------------------

    def register_partition(self, rdd, split: int, records: list) -> None:
        """Account one just-materialized cached partition and evict LRU
        entries if the pool now overflows."""
        if not self.limited:
            return
        size = self.weigh(records)
        if size is None:
            return
        key = ("rdd", id(rdd), split)
        with self._lock:
            self._drain_deferred()
            self._drop(key)
            self._entries[key] = _Entry(
                "cached", size, ref=weakref.ref(rdd), split=split
            )
            self.used += size
            self.record("cached_bytes", size)
            self._shrink()

    def touch(self, rdd, split: int) -> None:
        """LRU bump on a cache hit."""
        key = ("rdd", id(rdd), split)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)

    def forget_rdd(self, rdd) -> None:
        """Stop accounting an unpersisted RDD (its spill handles are
        released by the RDD itself)."""
        prefix = ("rdd", id(rdd))
        with self._lock:
            for key in [k for k in self._entries if k[:2] == prefix]:
                self._drop(key)

    # -- shuffle buckets -------------------------------------------------

    def admit_bucket(self, shuffle_id: int, map_index: int,
                     bucket_index: int, records: list, size: int):
        """Account one map-output bucket; returns the bucket itself or a
        :class:`SpillHandle` when it was pushed to the disk tier."""
        if not self.limited or not records:
            return records
        if size > max(1, self.budget // 8):
            return self._spill_bucket(shuffle_id, bucket_index, records, size)
        key = ("shuffle", shuffle_id, map_index, bucket_index)
        with self._lock:
            self._drain_deferred()
            self._drop(key)
            self._entries[key] = _Entry("shuffle", size)
            self.used += size
            self._shrink()
            if self.used > self.budget:
                # Eviction alone could not make room: execution memory
                # is full of other live buckets, so this one goes to
                # disk.
                self._drop(key)
                return self._spill_bucket(
                    shuffle_id, bucket_index, records, size
                )
        return records

    def release_shuffle(self, shuffle_id: int) -> None:
        """Drop the accounting of one shuffle's buckets (its memoized
        state was invalidated)."""
        with self._lock:
            self._drain_deferred()
            for key in [k for k in self._entries
                        if k[0] == "shuffle" and k[1] == shuffle_id]:
                self._drop(key)

    def release_shuffle_deferred(self, shuffle_id: int) -> None:
        """GC-finalizer-safe :meth:`release_shuffle`.

        ``weakref.finalize`` callbacks can interrupt any allocation on
        any thread — including a thread already inside one of this
        manager's critical sections, or holding an unrelated lock.
        Taking ``self._lock`` there would mutate ``_entries`` under a
        live iteration (the lock is reentrant) and teach the sanitizer
        phantom lock-order edges, so the finalizer only enqueues the
        id (``list.append`` is atomic under the GIL) and the next
        accounting operation drops it.
        """
        self._deferred_releases.append(shuffle_id)

    def _drain_deferred(self) -> None:
        """Apply pending finalizer releases; caller holds the lock."""
        while self._deferred_releases:
            shuffle_id = self._deferred_releases.pop()
            for key in [k for k in self._entries
                        if k[0] == "shuffle" and k[1] == shuffle_id]:
                self._drop(key)

    def _spill_bucket(self, shuffle_id: int, bucket_index: int,
                      records: list, size: int) -> SpillHandle:
        handle = self.store.put(records)
        self.record("bucket_spills")
        self.record("spilled_bytes", handle.bytes)
        if self.observer is not None:
            self.observer.on_memory_event({
                "kind": "bucket_spill",
                "shuffle_id": shuffle_id,
                "bucket": bucket_index,
                "records": len(records),
                "bytes": handle.bytes,
            })
        return handle

    # -- eviction --------------------------------------------------------

    def _shrink(self) -> None:
        while self.used > self.budget:
            victim = None
            for key, entry in self._entries.items():
                if entry.kind == "cached":
                    victim = key
                    break
            if victim is None:
                return
            entry = self._entries[victim]
            self._drop(victim)
            rdd = entry.ref() if entry.ref is not None else None
            if rdd is None:
                continue
            outcome = rdd._evict_cached(entry.split, self.store)
            self.record("evictions")
            if outcome == "spilled":
                self.record("evicted_to_disk")
            else:
                self.record("evicted_dropped")
            if self.observer is not None:
                self.observer.on_memory_event({
                    "kind": "eviction",
                    "rdd": getattr(rdd, "name", "rdd"),
                    "split": entry.split,
                    "bytes": entry.size,
                    "outcome": outcome,
                })

    def _drop(self, key) -> None:
        with self._lock:  # reentrant: callers already hold it
            entry = self._entries.pop(key, None)
            if entry is not None:
                self.used -= entry.size

    # -- bookkeeping -----------------------------------------------------

    def record(self, counter: str, value: int = 1) -> None:
        with self._lock:
            self.counts[counter] = self.counts.get(counter, 0) + value
        if self.observer is not None:
            self.observer.on_memory(counter, value)

    def reset_counters(self) -> None:
        with self._lock:
            self.counts = {}
