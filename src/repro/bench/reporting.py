"""Rendering of paper-style result tables and shape checks.

``check_shape`` assertions encode the *qualitative* findings of each
figure (who wins, by roughly what factor) so benchmark runs fail loudly
when a reproduction stops matching the paper's shape.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def render_engine_table(
    title: str,
    rows: Dict[str, Dict[str, str]],
    row_label: str = "query",
) -> str:
    """Render {row -> {engine -> rendered value}} as an aligned table."""
    engines = []
    for cells in rows.values():
        for engine in cells:
            if engine not in engines:
                engines.append(engine)
    header = [row_label] + engines
    table = [header]
    for row_name, cells in rows.items():
        table.append([row_name] + [cells.get(e, "-") for e in engines])
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = ["", "== {} ==".format(title)]
    for row in table:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def speedup_series(
    wall_clock: Dict[int, float], baseline_executors: int = 1
) -> Dict[int, float]:
    """Speedup over the 1-executor run."""
    baseline = wall_clock[baseline_executors]
    return {n: baseline / seconds for n, seconds in wall_clock.items()}


def linear_fit_r2(xs: Sequence[float], ys: Sequence[float]) -> float:
    """R² of the least-squares linear fit (for Figure 15's linearity)."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 1.0
    return (cov * cov) / (var_x * var_y)


def check_shape(
    name: str,
    condition: bool,
    detail: str = "",
    strict: bool = False,
) -> Optional[str]:
    """Report (and optionally enforce) one qualitative expectation.

    Wall-clock shapes can wobble at laptop scale, so by default a failed
    check prints a loud note instead of failing the bench run; pass
    ``strict=True`` for structural invariants that must hold.
    """
    status = "OK " if condition else "MISS"
    line = "[shape {}] {}{}".format(
        status, name, " — " + detail if detail else ""
    )
    print(line)
    if strict and not condition:
        raise AssertionError(line)
    return line
