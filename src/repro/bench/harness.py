"""Timing utilities for the figure-regenerating benchmarks.

The paper's measurements are end-to-end wall clock, capped at 600 s, with
engines dropped from a sweep once they fail (out of memory) or exceed the
cap — :func:`sweep` reproduces exactly that protocol at laptop scale.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.jsoniq.errors import OutOfMemorySimulated


@dataclass
class Measurement:
    """One timed run."""

    seconds: Optional[float]  # None means did-not-finish
    outcome: str = "ok"  # ok | oom | over-cap | skipped
    result: object = None
    #: Timing-free profile summary (counters, shuffle, stages) when the
    #: run was profiled — the deterministic part of a metrics sidecar.
    metrics: Optional[Dict[str, object]] = None

    @property
    def finished(self) -> bool:
        return self.outcome == "ok"

    def render(self) -> str:
        if self.outcome == "ok":
            return "{:.3f}s".format(self.seconds)
        return self.outcome.upper()


def timed(func: Callable, *args, **kwargs) -> Tuple[object, float]:
    """Run once, returning (result, wall-clock seconds)."""
    started = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - started


def measure(func: Callable, repeat: int = 1) -> Measurement:
    """Best-of-``repeat`` wall clock (the paper averages over 5 tries; we
    take the minimum of few repeats, which is steadier at small scale)."""
    best: Optional[float] = None
    result = None
    for _ in range(repeat):
        try:
            result, seconds = timed(func)
        except OutOfMemorySimulated:
            return Measurement(None, "oom")
        best = seconds if best is None else min(best, seconds)
    return Measurement(best, "ok", result)


def deterministic_profile_summary(report) -> Dict[str, object]:
    """The timing-free slice of a :class:`~repro.obs.ProfileReport`.

    Counters, shuffle volume and stage shapes are functions of the query
    and the data — identical across runs — while durations are not, so a
    sidecar built from this summary is byte-stable and diffable.
    """
    counters = dict(report.metrics.get("counters", {}))
    return {
        "query": report.query,
        "mode": report.mode,
        "counters": counters,
        "shuffle": report.shuffle(),
        # Stage ids are monotonic per context, so expose ordinal
        # positions — identical reruns then produce identical summaries.
        "stages": [
            {
                "index": index,
                "label": stage["label"],
                "tasks": len(stage["tasks"]),
            }
            for index, stage in enumerate(report.stages())
        ],
    }


def measure_profiled(engine, query_text: str, repeat: int = 1) -> Measurement:
    """Best-of-``repeat`` wall clock of a profiled run, with the
    deterministic metrics summary attached to the measurement."""
    best: Optional[float] = None
    report = None
    for _ in range(repeat):
        try:
            candidate, seconds = timed(engine.profile, query_text)
        except OutOfMemorySimulated:
            return Measurement(None, "oom")
        if best is None or seconds < best:
            best, report = seconds, candidate
    return Measurement(
        best, "ok", report, metrics=deterministic_profile_summary(report)
    )


def write_metrics_sidecar(path: str, summaries: object) -> str:
    """Write profile summaries as deterministic JSON (sorted keys, stable
    indentation, trailing newline) next to a benchmark's timing output."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(summaries, sort_keys=True, indent=2))
        handle.write("\n")
    return path


def sweep(
    sizes: Sequence[int],
    runner: Callable[[str, int], Callable],
    engines: Sequence[str],
    time_cap: float = 60.0,
    repeat: int = 1,
) -> Dict[str, Dict[int, Measurement]]:
    """The paper's sweep protocol: for each engine, walk the sizes in
    ascending order; once a size ends in OOM or over-cap, mark all larger
    sizes as skipped (the paper stopped measuring there too)."""
    table: Dict[str, Dict[int, Measurement]] = {name: {} for name in engines}
    for engine in engines:
        dead = False
        for size in sizes:
            if dead:
                table[engine][size] = Measurement(None, "skipped")
                continue
            measurement = measure(runner(engine, size), repeat)
            if measurement.finished and measurement.seconds > time_cap:
                measurement = Measurement(measurement.seconds, "over-cap")
            table[engine][size] = measurement
            if not measurement.finished:
                dead = True
    return table


@dataclass
class SeriesReport:
    """Collects (x, value) series for one figure and renders the table."""

    title: str
    x_label: str
    series: Dict[str, List[Tuple[object, str]]] = field(default_factory=dict)

    def add(self, series_name: str, x: object, rendered: str) -> None:
        self.series.setdefault(series_name, []).append((x, rendered))

    def render(self) -> str:
        lines = ["", "== {} ==".format(self.title)]
        names = list(self.series)
        xs = []
        for points in self.series.values():
            for x, _ in points:
                if x not in xs:
                    xs.append(x)
        header = [self.x_label] + names
        rows = [header]
        for x in xs:
            row = [str(x)]
            for name in names:
                value = dict(self.series[name]).get(x, "-")
                row.append(value)
            rows.append(row)
        widths = [
            max(len(row[i]) for row in rows) for i in range(len(header))
        ]
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)
