"""Benchmark harness: workloads, timing, and paper-style reporting."""

from repro.bench.harness import Measurement, sweep, timed
from repro.bench.workloads import (
    make_rumble_engine,
    run_engine,
    rumble_query,
)

__all__ = [
    "timed",
    "sweep",
    "Measurement",
    "run_engine",
    "rumble_query",
    "make_rumble_engine",
]
