"""The canonical workloads of the paper's Section 6.1, per engine.

Three query kinds — ``filter``, ``group``, ``sort`` — on the confusion
dataset, each runnable on every engine: Rumble (JSONiq), raw Spark,
Spark SQL, PySpark(-sim), Zorba-like, Xidel-like and the hand-coded
reference.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.baselines import (
    handcoded,
    pyspark_sim,
    raw_spark,
    spark_sql,
    xidel_like,
    zorba_like,
)
from repro.core import Rumble, RumbleConfig, make_engine
from repro.spark import SparkSession

#: The JSONiq text of each canonical query (paper Figures 4 and 7 shapes).
RUMBLE_QUERIES: Dict[str, str] = {
    "filter": (
        'count(\n'
        '  for $i in json-file("{path}")\n'
        '  where $i.guess eq $i.target\n'
        '  return $i\n'
        ')'
    ),
    "group": (
        'for $i in json-file("{path}")\n'
        'group by $c := $i.country, $t := $i.target\n'
        'return {{ "country": $c, "target": $t, "count": count($i) }}'
    ),
    "sort": (
        'for $i in json-file("{path}")\n'
        'where $i.guess = $i.target\n'
        'order by $i.target ascending,\n'
        '         $i.country descending,\n'
        '         $i.date descending\n'
        'count $c\n'
        'where $c le 10\n'
        'return $i'
    ),
    # Group-by on a Zipf-skewed key (generate the input with
    # datasets.write_skewed_confusion): one country holds ~half the
    # records, so one reduce bucket dwarfs the rest — the workload the
    # adaptive skew-splitting benchmark gates on.
    "skew_group": (
        'for $i in json-file("{path}")\n'
        'group by $c := $i.country\n'
        'return {{ "country": $c, "count": count($i),\n'
        '          "correct": count($i[$$.guess eq $$.target]) }}'
    ),
}


def rumble_query(kind: str, path: str) -> str:
    """The JSONiq text for one canonical query over one input path."""
    return RUMBLE_QUERIES[kind].format(path=path)


def make_rumble_engine(
    executors: int = 4,
    parallelism: int = 8,
    block_size: Optional[int] = None,
    fusion: Optional[bool] = None,
    pushdown: Optional[bool] = None,
    adaptive: Optional[bool] = None,
    memory_budget: Optional[int] = None,
    columnar: Optional[bool] = None,
    codegen: Optional[bool] = None,
) -> Rumble:
    """A Rumble engine with a benchmark-friendly substrate.

    ``fusion``, ``pushdown``, ``adaptive``, ``columnar`` and ``codegen``
    toggle the optimizer layers for ablation runs; ``None`` keeps the
    engine defaults (all on).  ``memory_budget`` bounds the unified
    memory pool in bytes, forcing eviction and spill for
    memory-pressure runs.
    """
    return make_engine(
        executors=executors,
        parallelism=parallelism,
        block_size=block_size,
        config=RumbleConfig(materialization_cap=1_000_000),
        fusion=fusion,
        pushdown=pushdown,
        adaptive=adaptive,
        memory_budget=memory_budget,
        columnar=columnar,
        codegen=codegen,
    )


def run_rumble(engine: Rumble, kind: str, path: str):
    """Run one canonical query end to end (forcing full evaluation)."""
    result = engine.query(rumble_query(kind, path))
    if kind == "filter":
        return result.to_python()
    if kind == "group":
        return result.count()
    return result.take(10)


def run_engine(
    name: str,
    kind: str,
    path: str,
    spark: Optional[SparkSession] = None,
    rumble: Optional[Rumble] = None,
    budget_items: Optional[int] = None,
):
    """Dispatch one (engine, query) pair; returns the query's result."""
    if name == "rumble":
        return run_rumble(rumble or make_rumble_engine(), kind, path)
    if name in ("spark", "raw_spark"):
        return _dispatch(raw_spark, kind)(spark or SparkSession(), path)
    if name in ("spark_sql", "sparksql"):
        return _dispatch(spark_sql, kind)(spark or SparkSession(), path)
    if name == "pyspark":
        return _dispatch(pyspark_sim, kind)(spark or SparkSession(), path)
    if name == "zorba":
        runner = _dispatch(zorba_like, kind)
        if budget_items is None:
            return runner(path)
        return runner(path, budget_items=budget_items)
    if name == "xidel":
        runner = _dispatch(xidel_like, kind)
        if budget_items is None:
            return runner(path)
        return runner(path, budget_items=budget_items)
    if name == "handcoded":
        return _dispatch(handcoded, kind)(path)
    raise ValueError("unknown engine {!r}".format(name))


def _dispatch(module, kind: str) -> Callable:
    try:
        return getattr(module, kind + "_query")
    except AttributeError:
        raise ValueError(
            "{} does not implement the {} query".format(module.__name__, kind)
        ) from None
