"""A Xidel-like baseline.

Xidel (the Pascal engine of Figure 12) fails earlier than Zorba on every
query: it ran out of memory on the *filter* query at 8M objects (it
materializes even when filtering), did not finish grouping 2M objects and
could not sort 1M.  Two behaviours reproduce that profile:

* it materializes the whole input even for the filter query;
* its evaluation loop is slower — each record is parsed into a DOM-like
  intermediate and then *re-walked* once more (real work, not a sleep),
  matching its interpretive overhead relative to Zorba.
"""

from __future__ import annotations

import json
from typing import Iterator, List, Tuple

from repro.items import Item, item_from_python
from repro.baselines.zorba_like import MemoryBudget, ZorbaLikeEngine

DEFAULT_BUDGET = 125_000


class XidelLikeEngine(ZorbaLikeEngine):
    """Zorba-like, but slower per record and materializing everywhere."""

    def _parse(self, line: str) -> Item:
        generic = json.loads(line)
        # The re-serialization round trip models Xidel's heavier
        # per-record interpretation; it is genuinely executed work.
        generic = json.loads(json.dumps(generic))
        return item_from_python(generic)

    def _stream(self, path: str) -> Iterator[Item]:
        # Xidel materializes its input: budget applies to every query.
        budget = MemoryBudget(self.budget_items)
        items: List[Item] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    budget.allocate(self.object_cost)
                    items.append(self._parse(line))
        return iter(items)


def filter_query(path: str, budget_items: int = DEFAULT_BUDGET) -> int:
    return XidelLikeEngine(budget_items).filter_query(path)


def group_query(path: str, budget_items: int = DEFAULT_BUDGET
                ) -> List[Tuple[Tuple, int]]:
    return XidelLikeEngine(budget_items).group_query(path)


def sort_query(path: str, budget_items: int = DEFAULT_BUDGET, take: int = 10):
    return XidelLikeEngine(budget_items).sort_query(path, take)
