"""A Zorba-like baseline: single-threaded, materializing JSONiq engine.

Zorba is the reference C++ JSONiq engine the paper compares against in
Figure 12.  The behaviours that matter for that figure are reproduced:

* **single-threaded** evaluation — no partitioning, no executors;
* an **intermediate representation** — each line is parsed into generic
  Python structures and only then converted to items (Zorba builds its
  store items through a generic parse; Rumble's JSONiter-style streaming
  decoder skips that step, Section 5.7);
* **full materialization** for grouping and sorting, governed by a
  *memory budget*: exceeding it raises
  :class:`repro.jsoniq.errors.OutOfMemorySimulated`, reproducing the
  out-of-memory failures the paper reports beyond a few million objects.

Filtering streams (Zorba completed the filter query on all 16M objects),
so only group/sort are budget-bound.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Tuple

from repro.items import Item, grouping_key, item_from_python, ordering_tuple
from repro.jsoniq.errors import OutOfMemorySimulated

#: Default budget, in items, for laptop-scale benchmark runs.  The bench
#: harness scales it so the failure points land where Figure 12 puts them
#: (group/sort dying around a quarter of the objects the filter handles).
DEFAULT_BUDGET = 250_000


class MemoryBudget:
    """Counts materialized items and fails the engine when exhausted."""

    def __init__(self, max_items: int):
        self.max_items = max_items
        self.live_items = 0

    def allocate(self, count: int = 1) -> None:
        self.live_items += count
        if self.live_items > self.max_items:
            raise OutOfMemorySimulated(
                "materialized {} items; budget is {}".format(
                    self.live_items, self.max_items
                )
            )


class ZorbaLikeEngine:
    """The three canonical queries, evaluated the single-threaded way."""

    #: How many budget units one materialized object costs.  Sorting also
    #: materializes decorated keys, costing extra (see ``sort_query``).
    object_cost = 1

    def __init__(self, budget_items: int = DEFAULT_BUDGET):
        self.budget_items = budget_items

    # -- Parsing ----------------------------------------------------------------
    def _parse(self, line: str) -> Item:
        # Generic parse first, then item construction: the intermediate
        # representation Rumble's streaming decoder avoids.
        return item_from_python(json.loads(line))

    def _stream(self, path: str) -> Iterator[Item]:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield self._parse(line)

    # -- Queries -----------------------------------------------------------------
    def filter_query(self, path: str) -> int:
        """Streaming filter: no materialization, no budget pressure."""
        matched = 0
        for item in self._stream(path):
            guess = next(item.lookup("guess"), None)
            target = next(item.lookup("target"), None)
            if (
                guess is not None
                and target is not None
                and guess.is_string
                and target.is_string
                and guess.value == target.value
            ):
                matched += 1
        return matched

    def group_query(self, path: str) -> List[Tuple[Tuple, int]]:
        """Group by (country, target); materializes every group member."""
        budget = MemoryBudget(self.budget_items)
        groups: Dict[Tuple, List[Item]] = {}
        for item in self._stream(path):
            budget.allocate(self.object_cost)
            country = next(item.lookup("country"), None)
            target = next(item.lookup("target"), None)
            key = (
                grouping_key(country if country and country.is_atomic else None),
                grouping_key(target if target and target.is_atomic else None),
            )
            groups.setdefault(key, []).append(item)
        return [(key, len(members)) for key, members in groups.items()]

    def sort_query(self, path: str, take: int = 10) -> List[Item]:
        """Filter + full sort; materializes items *and* decorated keys."""
        budget = MemoryBudget(self.budget_items)
        decorated: List[Tuple[tuple, Item]] = []
        for item in self._stream(path):
            guess = next(item.lookup("guess"), None)
            target = next(item.lookup("target"), None)
            if not (
                guess is not None and target is not None
                and guess.is_string and target.is_string
                and guess.value == target.value
            ):
                continue
            budget.allocate(2 * self.object_cost)  # item + sort key
            country = next(item.lookup("country"), None)
            date = next(item.lookup("date"), None)
            key = (
                ordering_tuple(target),
                _invert(ordering_tuple(country)),
                _invert(ordering_tuple(date)),
            )
            decorated.append((key, item))
        decorated.sort(key=lambda pair: pair[0])
        return [item for _, item in decorated[:take]]


class _invert:  # noqa: N801 - ordering adapter
    """Descending wrapper for one component of a sort key."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "_invert") -> bool:
        return other.key < self.key

    def __le__(self, other: "_invert") -> bool:
        return other.key <= self.key

    def __gt__(self, other: "_invert") -> bool:
        return other.key > self.key

    def __ge__(self, other: "_invert") -> bool:
        return other.key >= self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _invert) and other.key == self.key

    def __hash__(self) -> int:
        return hash(self.key)


def filter_query(path: str, budget_items: int = DEFAULT_BUDGET) -> int:
    return ZorbaLikeEngine(budget_items).filter_query(path)


def group_query(path: str, budget_items: int = DEFAULT_BUDGET):
    return ZorbaLikeEngine(budget_items).group_query(path)


def sort_query(path: str, budget_items: int = DEFAULT_BUDGET, take: int = 10):
    return ZorbaLikeEngine(budget_items).sort_query(path, take)
