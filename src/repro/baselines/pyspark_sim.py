"""PySpark baseline with mechanically reproduced serialization overhead.

Real PySpark ships every record across the JVM⇄Python-worker boundary:
records are pickled, written to the worker's socket/pipe, read back and
unpickled on each side of every Python-evaluated transformation.  The
pipelines here are the same as :mod:`repro.baselines.raw_spark`, but
every UDF boundary performs that *actual* round trip — pickle plus a real
OS pipe write/read — not a fudge factor.  This reproduces the paper's
finding that Rumble out-runs PySpark on every query.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Callable, Dict, List, Tuple

from repro.spark import SparkSession


class _WorkerChannel:
    """A loopback OS pipe standing in for PySpark's JVM⇄worker socket."""

    #: Stay under the kernel pipe buffer so single-threaded loopback
    #: writes never block; reads are interleaved with writes.
    CHUNK = 32 * 1024

    def __init__(self) -> None:
        self._read_fd, self._write_fd = os.pipe()

    def round_trip(self, value):
        """Serialize, push through the pipe, read back, deserialize."""
        payload = pickle.dumps(value, protocol=4)
        received = bytearray()
        offset = 0
        while offset < len(payload):
            chunk = payload[offset:offset + self.CHUNK]
            written = os.write(self._write_fd, chunk)
            offset += written
            while len(received) < offset:
                received += os.read(self._read_fd, offset - len(received))
        return pickle.loads(bytes(received))


_CHANNEL = _WorkerChannel()


def _boundary(func: Callable) -> Callable:
    """Wrap a UDF with the JVM⇄Python-worker round trip."""

    def wrapped(record):
        record = _CHANNEL.round_trip(record)
        result = func(record)
        return _CHANNEL.round_trip(result)

    return wrapped


def filter_query(spark: SparkSession, path: str) -> int:
    lines = spark.spark_context.text_file(path)
    parsed = lines.map(_boundary(json.loads))
    matched = parsed.filter(
        _boundary(lambda o: o.get("guess") == o.get("target"))
    )
    return matched.count()


def group_query(spark: SparkSession, path: str) -> List[Tuple[Tuple, int]]:
    lines = spark.spark_context.text_file(path)
    parsed = lines.map(_boundary(json.loads))
    pairs = parsed.map(
        _boundary(lambda o: ((o.get("country"), o.get("target")), 1))
    )
    reduced = pairs.reduce_by_key(lambda a, b: a + b)
    return reduced.collect()


def sort_query(spark: SparkSession, path: str, take: int = 10
               ) -> List[Dict[str, object]]:
    from repro.baselines.raw_spark import _desc

    lines = spark.spark_context.text_file(path)
    parsed = lines.map(_boundary(json.loads))
    matched = parsed.filter(
        _boundary(lambda o: o.get("guess") == o.get("target"))
    )

    def key(record: Dict[str, object]):
        record = _CHANNEL.round_trip(record)
        return (
            record.get("target") or "",
            _desc(record.get("country") or ""),
            _desc(record.get("date") or ""),
        )

    return matched.sort_by(key).take(take)
