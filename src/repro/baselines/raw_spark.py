"""Hand-written RDD pipelines ("raw Spark") for the canonical queries.

This is the lowest-overhead native implementation on the shared substrate:
plain dicts, no Item boxing, no JSONiq machinery — the role "Spark (Java)"
plays in the paper's Figures 11 and 13.  The pipelines mirror the paper's
Figure 2.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.spark import SparkSession


def filter_query(spark: SparkSession, path: str) -> int:
    """``guess == target``: parse, filter, count."""
    lines = spark.spark_context.text_file(path)
    parsed = lines.map(json.loads)
    matched = parsed.filter(lambda o: o.get("guess") == o.get("target"))
    return matched.count()


def group_query(spark: SparkSession, path: str) -> List[Tuple[Tuple, int]]:
    """Count per (country, target) — the aggregation of Figure 2."""
    lines = spark.spark_context.text_file(path)
    parsed = lines.map(json.loads)
    pairs = parsed.map(lambda o: ((o.get("country"), o.get("target")), 1))
    reduced = pairs.reduce_by_key(lambda a, b: a + b)
    return reduced.collect()


def sort_query(spark: SparkSession, path: str, take: int = 10
               ) -> List[Dict[str, object]]:
    """Filter then total sort by (target asc, country desc, date desc)."""
    lines = spark.spark_context.text_file(path)
    parsed = lines.map(json.loads)
    matched = parsed.filter(lambda o: o.get("guess") == o.get("target"))

    def key(record: Dict[str, object]):
        return (
            record.get("target") or "",
            _desc(record.get("country") or ""),
            _desc(record.get("date") or ""),
        )

    return matched.sort_by(key).take(take)


class _desc:  # noqa: N801 - tiny ordering adapter, reads like a keyword
    """Inverts the ordering of a string inside a sort key tuple."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __lt__(self, other: "_desc") -> bool:
        return other.value < self.value

    def __le__(self, other: "_desc") -> bool:
        return other.value <= self.value

    def __gt__(self, other: "_desc") -> bool:
        return other.value > self.value

    def __ge__(self, other: "_desc") -> bool:
        return other.value >= self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _desc) and other.value == self.value

    def __hash__(self) -> int:
        return hash(self.value)
