"""The "experienced programmer" ad-hoc reference (paper, Section 6.3).

Hand-optimized, dataset-specific Python: substring checks instead of JSON
parsing where possible, plain dict counters, no generality.  The paper
quotes 36 s (filter) and 44 s (group) for the 16M-object dataset on a
dual-core laptop — the point being that ad-hoc code beats every generic
engine *by exploiting knowledge of the data*, at the price of generality.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple


def filter_query(path: str) -> int:
    """Count guess == target without fully parsing matching-impossible
    lines: a cheap textual prefilter, then a real parse to confirm."""
    matched = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            # Exploit the known key order: "guess" precedes "target".
            guess_at = line.find('"guess":')
            target_at = line.find('"target":')
            if guess_at < 0 or target_at < 0:
                continue
            guess_end = line.find(",", guess_at)
            target_end = line.find(",", target_at)
            guess = line[guess_at + 8:guess_end].strip()
            target = line[target_at + 9:target_end].strip()
            if guess == target:
                matched += 1
    return matched


def group_query(path: str) -> Dict[Tuple[str, str], int]:
    """Count per (country, target) with one dict and minimal parsing."""
    counts: Dict[Tuple[str, str], int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            key = (record.get("country"), record.get("target"))
            counts[key] = counts.get(key, 0) + 1
    return counts
