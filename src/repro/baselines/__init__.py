"""Every baseline of the paper's evaluation (Section 6).

Each module implements the paper's three canonical queries — *filter*,
*group* and *sort* (Section 6.1) — the way the corresponding system would:

* :mod:`repro.baselines.raw_spark` — hand-written RDD pipelines over plain
  dicts ("Spark (Java)" in Figures 11/13);
* :mod:`repro.baselines.spark_sql` — DataFrames + SQL strings (Figure 3);
* :mod:`repro.baselines.pyspark_sim` — the RDD pipeline with per-record
  pickle round-trips, reproducing PySpark's Python⇄JVM serialization cost;
* :mod:`repro.baselines.zorba_like` / :mod:`repro.baselines.xidel_like` —
  single-threaded materializing engines with memory budgets (Figure 12);
* :mod:`repro.baselines.handcoded` — the "experienced programmer" ad-hoc
  reference of Section 6.3.
"""

from repro.baselines import (  # noqa: F401
    handcoded,
    pyspark_sim,
    raw_spark,
    spark_sql,
    xidel_like,
    zorba_like,
)

QUERY_KINDS = ("filter", "group", "sort")

__all__ = [
    "raw_spark",
    "spark_sql",
    "pyspark_sim",
    "zorba_like",
    "xidel_like",
    "handcoded",
    "QUERY_KINDS",
]
