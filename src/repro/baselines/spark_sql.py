"""Spark SQL baseline: DataFrames + SQL strings (the paper's Figure 3).

Reading through ``spark.read.json`` performs schema inference — a full
extra pass over the data — which is why Rumble beats this baseline on the
filter query (Figure 11) while Spark SQL wins on grouping, where columnar
native types pay off.
"""

from __future__ import annotations

from typing import List

from repro.spark import SparkSession
from repro.spark.types import Row


def filter_query(spark: SparkSession, path: str) -> int:
    frame = spark.read.json(path)
    frame.create_or_replace_temp_view("dataset")
    matched = spark.sql("SELECT * FROM dataset WHERE guess = target")
    return matched.count()


def group_query(spark: SparkSession, path: str) -> List[Row]:
    frame = spark.read.json(path)
    frame.create_or_replace_temp_view("dataset")
    grouped = spark.sql(
        "SELECT country, target, count(*) AS n FROM dataset "
        "GROUP BY country, target"
    )
    return grouped.collect()


def sort_query(spark: SparkSession, path: str, take: int = 10) -> List[Row]:
    frame = spark.read.json(path)
    frame.create_or_replace_temp_view("dataset")
    ordered = spark.sql(
        "SELECT * FROM dataset WHERE guess = target "
        "ORDER BY target ASC, country DESC, date DESC"
    )
    return ordered.take(take)
