"""JSONiq error taxonomy.

JSONiq distinguishes *static* errors (raised at compile time, e.g. an
undeclared variable), *dynamic* errors (raised while evaluating, e.g. a
division by zero) and *type* errors (a value of the wrong type reaches an
operation).  Every error carries a W3C-style error code such as ``XPST0008``
so tests can assert on the precise failure.
"""

from __future__ import annotations


class JsoniqException(Exception):
    """Root of all errors raised by the JSONiq stack."""

    default_code = "XPDY0002"
    #: Query errors are deterministic: the executor pool must not retry
    #: the task, Spark-style, because the outcome cannot change.
    retryable = False

    def __init__(self, message: str, code: str | None = None,
                 line: int | None = None, column: int | None = None):
        self.code = code or self.default_code
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = " at line {}, column {}".format(line, column)
        super().__init__("[{}]{} {}".format(self.code, location, message))
        self.message = message


class StaticException(JsoniqException):
    """Compile-time error: unknown variable, unknown function, bad arity."""

    default_code = "XPST0008"


class ParseException(StaticException):
    """Syntax error from the lexer or parser."""

    default_code = "XPST0003"


class DynamicException(JsoniqException):
    """Runtime error raised during evaluation."""

    default_code = "XPDY0002"


class TypeException(DynamicException):
    """A value of an unexpected type reached an operation."""

    default_code = "XPTY0004"


class StaticTypeException(StaticException, TypeException):
    """A type error provable at compile time.

    Inherits from both :class:`StaticException` (it is raised before any
    data is read) and :class:`TypeException` (it is the same ``XPTY0004``
    failure that would otherwise surface at run time), so callers
    catching either taxonomy keep working when an error moves from the
    dynamic phase to the static phase.
    """

    default_code = "XPTY0004"


class CastException(DynamicException):
    """A cast or constructor function received an uncastable value."""

    default_code = "FORG0001"


class StaticCastException(StaticException, CastException):
    """A cast provably failing at compile time (same dual-taxonomy
    rationale as :class:`StaticTypeException`, for callers catching
    :class:`CastException`)."""

    default_code = "FORG0001"


class OutOfMemorySimulated(DynamicException):
    """Raised by materializing engines whose memory budget is exceeded.

    Used by the Zorba/Xidel-like baselines to reproduce the out-of-memory
    failures reported in the paper's Figure 12.
    """

    default_code = "SENR0001"


class UnsupportedFeature(StaticException):
    """A JSONiq feature outside the supported subset was used."""

    default_code = "XQST0031"
