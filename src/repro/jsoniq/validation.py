"""JSound-lite schema validation and annotation.

Schema validation is listed as future work in the paper's conclusion;
this module implements a compact JSound-style dialect.  A schema is
itself a JSON value:

* an atomic type name — ``"string"``, ``"integer"``, ``"decimal"``,
  ``"double"``, ``"number"``, ``"boolean"``, ``"null"``, ``"date"``,
  ``"atomic"``, ``"item"``;
* an object — field name to nested schema; a ``?`` suffix on the field
  name marks it optional (``{"name": "string", "age?": "integer"}``);
* a one-element array — an array of that member schema (``["string"]``);
* a type name with a ``?`` suffix — nullable/absent allowed
  (``"integer?"``).

Three builtin functions are registered:

* ``validate($seq, $schema)`` — returns the items unchanged, raising a
  dynamic error (code ``JNTY0004``) on the first violation;
* ``is-valid($seq, $schema)`` — boolean;
* ``annotate($seq, $schema)`` — *casts* values to the declared types
  where possible (``"5"`` → 5 for an ``integer`` field), the JSound
  annotation behaviour that makes messy data clean.
"""

from __future__ import annotations

from typing import List, Optional

from repro.items import Item, ObjectItem, ArrayItem
from repro.jsoniq.errors import DynamicException, JsoniqException
from repro.jsoniq.functions.registry import simple_function
from repro.jsoniq.runtime.control import cast_item, matches_item_type

_ATOMIC_NAMES = {
    "string", "integer", "decimal", "double", "number", "boolean",
    "null", "date", "atomic", "item",
}


class ValidationError(DynamicException):
    """A value does not match its declared schema."""

    default_code = "JNTY0004"


class SchemaError(DynamicException):
    """The schema itself is malformed."""

    default_code = "JNTY0001"


class Validator:
    """A compiled schema node."""

    def check(self, item: Item, path: str) -> Optional[str]:
        """None when valid, else a human-readable violation."""
        raise NotImplementedError

    def annotate(self, item: Item, path: str) -> Item:
        """The item coerced to this schema; raises on impossible values."""
        raise NotImplementedError


class AtomicValidator(Validator):
    def __init__(self, type_name: str, nullable: bool):
        self.type_name = type_name
        self.nullable = nullable

    def check(self, item: Item, path: str) -> Optional[str]:
        if self.nullable and item.is_null:
            return None
        if matches_item_type(item, self.type_name):
            return None
        return "{}: expected {}, got {}".format(
            path, self.type_name, item.type_name
        )

    def annotate(self, item: Item, path: str) -> Item:
        if self.nullable and item.is_null:
            return item
        if matches_item_type(item, self.type_name):
            return item
        if self.type_name in ("item", "atomic", "number"):
            raise ValidationError(
                "{}: cannot annotate {} as {}".format(
                    path, item.type_name, self.type_name
                )
            )
        try:
            return cast_item(item, self.type_name)
        except JsoniqException as error:
            raise ValidationError(
                "{}: cannot cast {} to {}".format(
                    path, item.type_name, self.type_name
                )
            ) from error


class ObjectValidator(Validator):
    def __init__(self, fields):
        #: field name -> (validator, required)
        self.fields = fields

    def check(self, item: Item, path: str) -> Optional[str]:
        if not item.is_object:
            return "{}: expected an object, got {}".format(
                path, item.type_name
            )
        for name, (validator, required) in self.fields.items():
            value = item.pairs.get(name)
            if value is None:
                if required:
                    return "{}: missing required field {!r}".format(
                        path, name
                    )
                continue
            violation = validator.check(value, path + "." + name)
            if violation:
                return violation
        return None

    def annotate(self, item: Item, path: str) -> Item:
        if not item.is_object:
            raise ValidationError(
                "{}: expected an object, got {}".format(path, item.type_name)
            )
        out = {}
        for name, value in item.pairs.items():
            spec = self.fields.get(name)
            if spec is None:
                out[name] = value  # open schema: extra fields pass through
            else:
                out[name] = spec[0].annotate(value, path + "." + name)
        for name, (validator, required) in self.fields.items():
            if required and name not in item.pairs:
                raise ValidationError(
                    "{}: missing required field {!r}".format(path, name)
                )
        return ObjectItem(out)


class ArrayValidator(Validator):
    def __init__(self, member: Validator):
        self.member = member

    def check(self, item: Item, path: str) -> Optional[str]:
        if not item.is_array:
            return "{}: expected an array, got {}".format(
                path, item.type_name
            )
        for index, member in enumerate(item.members, start=1):
            violation = self.member.check(
                member, "{}[[{}]]".format(path, index)
            )
            if violation:
                return violation
        return None

    def annotate(self, item: Item, path: str) -> Item:
        if not item.is_array:
            raise ValidationError(
                "{}: expected an array, got {}".format(path, item.type_name)
            )
        return ArrayItem([
            self.member.annotate(member, "{}[[{}]]".format(path, index))
            for index, member in enumerate(item.members, start=1)
        ])


def compile_schema(schema: Item) -> Validator:
    """Compile a schema item into a validator tree."""
    if schema.is_string:
        name = schema.value
        nullable = name.endswith("?")
        if nullable:
            name = name[:-1]
        if name not in _ATOMIC_NAMES:
            raise SchemaError("unknown schema type {!r}".format(name))
        return AtomicValidator(name, nullable)
    if schema.is_object:
        fields = {}
        for raw_name, nested in schema.pairs.items():
            required = not raw_name.endswith("?")
            name = raw_name if required else raw_name[:-1]
            fields[name] = (compile_schema(nested), required)
        return ObjectValidator(fields)
    if schema.is_array:
        if len(schema.members) != 1:
            raise SchemaError(
                "array schemas must have exactly one member schema"
            )
        return ArrayValidator(compile_schema(schema.members[0]))
    raise SchemaError(
        "a schema must be a type name, object or array, got "
        + schema.type_name
    )


def _schema_argument(sequence, name: str) -> Validator:
    if len(sequence) != 1:
        raise SchemaError("{}() requires a single schema item".format(name))
    return compile_schema(sequence[0])


@simple_function("validate", [2])
def _validate(context, sequence, schema) -> List[Item]:
    validator = _schema_argument(schema, "validate")
    for position, item in enumerate(sequence, start=1):
        violation = validator.check(item, "$[{}]".format(position))
        if violation:
            raise ValidationError(violation)
    return sequence


@simple_function("is-valid", [2])
def _is_valid(context, sequence, schema) -> List[Item]:
    from repro.items import FALSE, TRUE

    validator = _schema_argument(schema, "is-valid")
    for position, item in enumerate(sequence, start=1):
        if validator.check(item, "$[{}]".format(position)):
            return [FALSE]
    return [TRUE]


@simple_function("annotate", [2])
def _annotate(context, sequence, schema) -> List[Item]:
    validator = _schema_argument(schema, "annotate")
    return [
        validator.annotate(item, "$[{}]".format(position))
        for position, item in enumerate(sequence, start=1)
    ]
