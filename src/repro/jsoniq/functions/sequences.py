"""Sequence functions: count, exists, head/tail, subsequence, distinct-values…

The cardinality and slicing functions are RDD-aware: ``count`` becomes a
Spark count action (paper, Section 4.1.2), ``exists``/``empty`` only pull
one record, ``tail``/``subsequence`` translate to indexed filters.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List

from repro.items import (
    FALSE,
    TRUE,
    IntegerItem,
    Item,
    grouping_key,
    values_equal,
)
from repro.jsoniq.errors import DynamicException, TypeException
from repro.jsoniq.functions.registry import (
    iterator_function,
    simple_function,
)
from repro.jsoniq.runtime.base import RuntimeIterator
from repro.jsoniq.runtime.dynamic_context import DynamicContext


@iterator_function("count", [1])
class CountIterator(RuntimeIterator):
    """``count($seq)`` — a Spark count action when the child is an RDD."""

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.source = arguments[0]

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if self.source.is_rdd(context):
            # The columnar count kernel (flwor/columnar.py) sums batch
            # verdicts without boxing; None = gate closed, reference
            # count action.
            fast = getattr(self.source, "rdd_count", None)
            if fast is not None:
                total = fast(context)
                if total is not None:
                    yield IntegerItem(total)
                    return
            yield IntegerItem(self.source.get_rdd(context).count())
            return
        total = sum(1 for _ in self.source.iterate(context))
        yield IntegerItem(total)


@iterator_function("empty", [1])
class EmptyIterator(RuntimeIterator):
    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.source = arguments[0]

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if self.source.is_rdd(context):
            yield TRUE if self.source.get_rdd(context).is_empty() else FALSE
            return
        first = self.source.materialize_local(context, limit=1)
        yield FALSE if first else TRUE


@iterator_function("exists", [1])
class ExistsIterator(RuntimeIterator):
    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.source = arguments[0]

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if self.source.is_rdd(context):
            yield FALSE if self.source.get_rdd(context).is_empty() else TRUE
            return
        first = self.source.materialize_local(context, limit=1)
        yield TRUE if first else FALSE


@iterator_function("head", [1])
class HeadIterator(RuntimeIterator):
    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.source = arguments[0]

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if self.source.is_rdd(context):
            yield from self.source.get_rdd(context).take(1)
            return
        yield from self.source.materialize_local(context, limit=1)


@iterator_function("tail", [1])
class TailIterator(RuntimeIterator):
    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.source = arguments[0]

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        yield from itertools.islice(self.source.iterate(context), 1, None)

    def is_rdd(self, context: DynamicContext) -> bool:
        return self.source.is_rdd(context)

    def get_rdd(self, context: DynamicContext):
        rdd = self.source.get_rdd(context)
        return (
            rdd.zip_with_index()
            .filter(lambda pair: pair[1] >= 1)
            .map(lambda pair: pair[0])
        )


@iterator_function("subsequence", [2, 3])
class SubsequenceIterator(RuntimeIterator):
    """``subsequence($seq, $start[, $length])`` with 1-based positions."""

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.source = arguments[0]
        self.start = arguments[1]
        self.length = arguments[2] if len(arguments) > 2 else None

    def _bounds(self, context: DynamicContext):
        start_item = self.start.evaluate_atomic(context, "subsequence start")
        if start_item is None or not start_item.is_numeric:
            raise TypeException("subsequence start must be a number")
        start = max(1, int(round(float(start_item.value))))
        end = None
        if self.length is not None:
            length_item = self.length.evaluate_atomic(
                context, "subsequence length"
            )
            if length_item is None or not length_item.is_numeric:
                raise TypeException("subsequence length must be a number")
            end = (
                int(round(float(start_item.value)))
                + int(round(float(length_item.value)))
            )
        return start, end

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        start, end = self._bounds(context)
        stop = None if end is None else max(0, end - 1)
        yield from itertools.islice(
            self.source.iterate(context), start - 1, stop
        )

    def is_rdd(self, context: DynamicContext) -> bool:
        return self.source.is_rdd(context)

    def get_rdd(self, context: DynamicContext):
        start, end = self._bounds(context)
        rdd = self.source.get_rdd(context).zip_with_index()

        def keep(pair) -> bool:
            position = pair[1] + 1
            return position >= start and (end is None or position < end)

        return rdd.filter(keep).map(lambda pair: pair[0])


@iterator_function("distinct-values", [1])
class DistinctValuesIterator(RuntimeIterator):
    """Distinct atomic values, JSONiq equality (cross-numeric-type)."""

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.source = arguments[0]

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if self.source.is_rdd(context):
            yield from self.get_rdd(context).to_local_iterator()
            return
        seen = set()
        for item in self.source.iterate(context):
            key = _distinct_key(item)
            if key not in seen:
                seen.add(key)
                yield item

    def is_rdd(self, context: DynamicContext) -> bool:
        return self.source.is_rdd(context)

    def get_rdd(self, context: DynamicContext):
        rdd = self.source.get_rdd(context)
        return (
            rdd.map(lambda item: (_distinct_key(item), item))
            .reduce_by_key(lambda first, _: first)
            .values()
        )


def _distinct_key(item: Item):
    if item.is_atomic:
        return grouping_key(item)
    return ("structured", item.serialize())


@simple_function("reverse", [1])
def _reverse(context, sequence):
    return reversed(sequence)


@simple_function("insert-before", [3])
def _insert_before(context, sequence, position, inserts):
    if len(position) != 1 or not position[0].is_numeric:
        raise TypeException("insert-before position must be one number")
    index = max(1, int(position[0].value)) - 1
    return sequence[:index] + inserts + sequence[index:]


@simple_function("remove", [2])
def _remove(context, sequence, position):
    if len(position) != 1 or not position[0].is_numeric:
        raise TypeException("remove position must be one number")
    index = int(position[0].value) - 1
    if 0 <= index < len(sequence):
        return sequence[:index] + sequence[index + 1:]
    return sequence


@simple_function("index-of", [2])
def _index_of(context, sequence, search):
    if len(search) != 1 or not search[0].is_atomic:
        raise TypeException("index-of search value must be one atomic")
    out = []
    for position, item in enumerate(sequence, start=1):
        if item.is_atomic and values_equal(item, search[0]):
            out.append(IntegerItem(position))
    return out


@simple_function("last-item", [1])
def _last_item(context, sequence):
    return sequence[-1:]


@simple_function("zero-or-one", [1])
def _zero_or_one(context, sequence):
    if len(sequence) > 1:
        raise DynamicException(
            "zero-or-one received more than one item", code="FORG0003"
        )
    return sequence


@simple_function("exactly-one", [1])
def _exactly_one(context, sequence):
    if len(sequence) != 1:
        raise DynamicException(
            "exactly-one received {} items".format(len(sequence)),
            code="FORG0005",
        )
    return sequence


@simple_function("one-or-more", [1])
def _one_or_more(context, sequence):
    if not sequence:
        raise DynamicException(
            "one-or-more received the empty sequence", code="FORG0004"
        )
    return sequence


@simple_function("deep-equal", [2])
def _deep_equal(context, left, right):
    if len(left) != len(right):
        return [FALSE]
    for mine, theirs in zip(left, right):
        if mine.is_atomic and theirs.is_atomic:
            if not values_equal(mine, theirs):
                return [FALSE]
        elif mine != theirs:
            return [FALSE]
    return [TRUE]
