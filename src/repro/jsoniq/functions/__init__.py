"""Builtin function library.

Importing this package registers every builtin into the registry; the
compiler resolves calls through :func:`repro.jsoniq.functions.registry.
build_function_iterator`.
"""

from repro.jsoniq.functions import (  # noqa: F401 - imported for registration
    aggregates,
    io,
    numerics,
    objects,
    positional,
    sequences,
    strings,
    temporal,
    windows,
)
from repro.jsoniq import validation  # noqa: F401 - registers validate/annotate
from repro.jsoniq.functions.registry import (
    build_function_iterator,
    builtin_names,
    is_builtin,
)

__all__ = ["build_function_iterator", "builtin_names", "is_builtin"]
