"""Aggregate functions: sum, avg, min, max.

All four are RDD-aware: when the argument is physically an RDD, the
aggregation runs as a Spark reduce action and only the scalar result
travels to the driver (paper, Section 5.5: "aggregating iterators invoke
a Spark action on the child RDD").
"""

from __future__ import annotations

from decimal import Decimal
from typing import Iterator, List, Optional

from repro.items import (
    DecimalItem,
    IntegerItem,
    Item,
    make_numeric,
    value_compare,
)
from repro.jsoniq.errors import TypeException
from repro.jsoniq.functions.registry import iterator_function
from repro.jsoniq.runtime.arithmetic import compute_arithmetic
from repro.jsoniq.runtime.base import RuntimeIterator
from repro.jsoniq.runtime.dynamic_context import DynamicContext


class _AggregateIterator(RuntimeIterator):
    """Shared plumbing: local fold or distributed reduce."""

    name = "aggregate"

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.source = arguments[0]

    def _combine(self, left: Item, right: Item) -> Item:
        raise NotImplementedError

    def _check(self, item: Item) -> Item:
        return item

    def _finish(self, accumulated: Optional[Item], count: int
                ) -> Iterator[Item]:
        if accumulated is not None:
            yield accumulated

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if self.source.is_rdd(context):
            rdd = self.source.get_rdd(context).map(self._check)
            if rdd.is_empty():
                yield from self._finish(None, 0)
                return
            count = rdd.count()
            yield from self._finish(rdd.reduce(self._combine), count)
            return
        accumulated: Optional[Item] = None
        count = 0
        for item in self.source.iterate(context):
            item = self._check(item)
            count += 1
            accumulated = (
                item if accumulated is None
                else self._combine(accumulated, item)
            )
        yield from self._finish(accumulated, count)


def _require_numeric(item: Item, name: str) -> Item:
    if not item.is_numeric:
        raise TypeException(
            "{}() requires numeric items, got {}".format(name, item.type_name)
        )
    return item


@iterator_function("sum", [1, 2])
class SumIterator(_AggregateIterator):
    """``sum($seq[, $zero])`` — 0 (or the given zero) on empty input."""

    name = "sum"

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments[:1])
        self.zero = arguments[1] if len(arguments) > 1 else None

    def _check(self, item: Item) -> Item:
        return _require_numeric(item, "sum")

    def _combine(self, left: Item, right: Item) -> Item:
        return compute_arithmetic("+", left, right)

    def _finish(self, accumulated, count) -> Iterator[Item]:
        if accumulated is not None:
            yield accumulated
        elif self.zero is None:
            yield IntegerItem(0)
        # A provided zero needs the dynamic context, handled in _generate.

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        produced = False
        for item in super()._generate(context):
            produced = True
            yield item
        if not produced and self.zero is not None:
            yield from self.zero.iterate(context)


@iterator_function("max", [1])
class MaxIterator(_AggregateIterator):
    name = "max"

    def _combine(self, left: Item, right: Item) -> Item:
        return right if value_compare(right, left) > 0 else left


@iterator_function("min", [1])
class MinIterator(_AggregateIterator):
    name = "min"

    def _combine(self, left: Item, right: Item) -> Item:
        return right if value_compare(right, left) < 0 else left


@iterator_function("avg", [1])
class AvgIterator(_AggregateIterator):
    """``avg($seq)`` — empty on empty input, exact decimal otherwise."""

    name = "avg"

    def _check(self, item: Item) -> Item:
        return _require_numeric(item, "avg")

    def _combine(self, left: Item, right: Item) -> Item:
        return compute_arithmetic("+", left, right)

    def _finish(self, accumulated, count) -> Iterator[Item]:
        if accumulated is None:
            return
        if accumulated.is_double:
            yield make_numeric(accumulated.value / count)
        else:
            yield DecimalItem(Decimal(str(accumulated.value)) / count)
