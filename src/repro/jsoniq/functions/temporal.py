"""Temporal functions: component accessors, constructors, current-*.

Complements the temporal item types (paper future work, "additional
types"): ``dateTime()``/``time()``/``duration()`` constructors come from
the generic cast machinery; this module adds the W3C component accessors
and the (non-deterministic) current-* functions.
"""

from __future__ import annotations

import datetime

from repro.items import (
    DateItem,
    DateTimeItem,
    DecimalItem,
    IntegerItem,
    TimeItem,
)
from repro.jsoniq.errors import TypeException
from repro.jsoniq.functions.registry import simple_function
from repro.jsoniq.runtime.control import cast_item


def _one_of(sequence, type_flag: str, name: str):
    if not sequence:
        return None
    if len(sequence) != 1 or not getattr(sequence[0], type_flag):
        raise TypeException(
            "{}() requires a single {} value".format(
                name, type_flag.replace("is_", "")
            )
        )
    return sequence[0]


def _component(name, type_flag, extract):
    @simple_function(name, [1])
    def accessor(context, sequence, _extract=extract, _flag=type_flag,
                 _name=name):
        item = _one_of(sequence, _flag, _name)
        return [] if item is None else [_extract(item)]

    return accessor


_component("year-from-date", "is_date",
           lambda item: IntegerItem(item.value.year))
_component("month-from-date", "is_date",
           lambda item: IntegerItem(item.value.month))
_component("day-from-date", "is_date",
           lambda item: IntegerItem(item.value.day))

_component("year-from-dateTime", "is_datetime",
           lambda item: IntegerItem(item.value.year))
_component("month-from-dateTime", "is_datetime",
           lambda item: IntegerItem(item.value.month))
_component("day-from-dateTime", "is_datetime",
           lambda item: IntegerItem(item.value.day))
_component("hours-from-dateTime", "is_datetime",
           lambda item: IntegerItem(item.value.hour))
_component("minutes-from-dateTime", "is_datetime",
           lambda item: IntegerItem(item.value.minute))
_component("seconds-from-dateTime", "is_datetime",
           lambda item: DecimalItem(
               item.value.second + item.value.microsecond / 1e6
           ))

_component("hours-from-time", "is_time",
           lambda item: IntegerItem(item.value.hour))
_component("minutes-from-time", "is_time",
           lambda item: IntegerItem(item.value.minute))
_component("seconds-from-time", "is_time",
           lambda item: DecimalItem(
               item.value.second + item.value.microsecond / 1e6
           ))

_component("years-from-duration", "is_year_month_duration",
           lambda item: IntegerItem(int(item.months / 12)))
_component("months-from-duration", "is_year_month_duration",
           lambda item: IntegerItem(
               int(item.months - int(item.months / 12) * 12)
           ))
_component("days-from-duration", "is_day_time_duration",
           lambda item: IntegerItem(int(item.seconds / 86400)))
_component("hours-from-duration", "is_day_time_duration",
           lambda item: IntegerItem(int(item.seconds % 86400 / 3600)))
_component("minutes-from-duration", "is_day_time_duration",
           lambda item: IntegerItem(int(item.seconds % 3600 / 60)))
_component("seconds-from-duration", "is_day_time_duration",
           lambda item: DecimalItem(str(item.seconds % 60)))


@simple_function("duration", [1])
def _duration(context, sequence):
    if len(sequence) != 1:
        raise TypeException("duration() requires one item")
    return [cast_item(sequence[0], "duration")]


@simple_function("dateTime", [1])
def _datetime(context, sequence):
    if len(sequence) != 1:
        raise TypeException("dateTime() requires one item")
    return [cast_item(sequence[0], "dateTime")]


@simple_function("time", [1])
def _time(context, sequence):
    if len(sequence) != 1:
        raise TypeException("time() requires one item")
    return [cast_item(sequence[0], "time")]


@simple_function("current-date", [0])
def _current_date(context):
    return [DateItem(datetime.date.today())]


@simple_function("current-dateTime", [0])
def _current_datetime(context):
    return [DateTimeItem(datetime.datetime.now())]


@simple_function("current-time", [0])
def _current_time(context):
    return [TimeItem(datetime.datetime.now().time())]
