"""String functions (a practical slice of the W3C library)."""

from __future__ import annotations

import re

from repro.items import (
    FALSE,
    TRUE,
    IntegerItem,
    Item,
    StringItem,
)
from repro.jsoniq.errors import DynamicException, TypeException
from repro.jsoniq.functions.registry import simple_function


def _one_string(sequence, name: str, allow_empty: bool = True) -> str:
    """Extract the single string argument (empty sequence -> '')."""
    if not sequence:
        if allow_empty:
            return ""
        raise TypeException("{}() requires a string".format(name))
    if len(sequence) > 1:
        raise TypeException("{}() requires a single string".format(name))
    item = sequence[0]
    if not item.is_string:
        raise TypeException(
            "{}() requires a string, got {}".format(name, item.type_name)
        )
    return item.value


def _string_of(item: Item) -> str:
    if item.is_string:
        return item.value
    if item.is_object or item.is_array:
        raise TypeException(
            "cannot convert {} to a string".format(item.type_name)
        )
    return item.serialize().strip('"')


@simple_function("string", [1])
def _string(context, sequence):
    if not sequence:
        return [StringItem("")]
    if len(sequence) > 1:
        raise TypeException("string() requires at most one item")
    return [StringItem(_string_of(sequence[0]))]


@simple_function("concat", [2, 3, 4, 5, 6, 7, 8])
def _concat(context, *arguments):
    pieces = []
    for argument in arguments:
        if argument:
            pieces.append(_string_of(argument[0]))
    return [StringItem("".join(pieces))]


@simple_function("string-join", [1, 2])
def _string_join(context, sequence, *separator):
    glue = _one_string(separator[0], "string-join") if separator else ""
    return [StringItem(glue.join(_string_of(item) for item in sequence))]


@simple_function("string-length", [1])
def _string_length(context, sequence):
    return [IntegerItem(len(_one_string(sequence, "string-length")))]


@simple_function("substring", [2, 3])
def _substring(context, sequence, start, *length):
    text = _one_string(sequence, "substring")
    if len(start) != 1 or not start[0].is_numeric:
        raise TypeException("substring start must be one number")
    begin = int(round(float(start[0].value)))
    if length:
        if len(length[0]) != 1 or not length[0][0].is_numeric:
            raise TypeException("substring length must be one number")
        span = int(round(float(length[0][0].value)))
        end = begin + span
    else:
        end = len(text) + 1
    begin = max(1, begin)
    return [StringItem(text[begin - 1:max(begin - 1, end - 1)])]


@simple_function("upper-case", [1])
def _upper_case(context, sequence):
    return [StringItem(_one_string(sequence, "upper-case").upper())]


@simple_function("lower-case", [1])
def _lower_case(context, sequence):
    return [StringItem(_one_string(sequence, "lower-case").lower())]


@simple_function("contains", [2])
def _contains(context, haystack, needle):
    text = _one_string(haystack, "contains")
    search = _one_string(needle, "contains")
    return [TRUE if search in text else FALSE]


@simple_function("starts-with", [2])
def _starts_with(context, haystack, needle):
    text = _one_string(haystack, "starts-with")
    return [TRUE if text.startswith(_one_string(needle, "starts-with")) else FALSE]


@simple_function("ends-with", [2])
def _ends_with(context, haystack, needle):
    text = _one_string(haystack, "ends-with")
    return [TRUE if text.endswith(_one_string(needle, "ends-with")) else FALSE]


@simple_function("substring-before", [2])
def _substring_before(context, haystack, needle):
    text = _one_string(haystack, "substring-before")
    search = _one_string(needle, "substring-before")
    index = text.find(search) if search else -1
    return [StringItem(text[:index] if index >= 0 else "")]


@simple_function("substring-after", [2])
def _substring_after(context, haystack, needle):
    text = _one_string(haystack, "substring-after")
    search = _one_string(needle, "substring-after")
    index = text.find(search) if search else -1
    return [StringItem(text[index + len(search):] if index >= 0 else "")]


@simple_function("normalize-space", [1])
def _normalize_space(context, sequence):
    return [StringItem(" ".join(_one_string(sequence, "normalize-space").split()))]


def _compile(pattern: str, name: str) -> "re.Pattern":
    try:
        return re.compile(pattern)
    except re.error as error:
        raise DynamicException(
            "invalid {} pattern: {}".format(name, error), code="FORX0002"
        ) from error


@simple_function("tokenize", [1, 2])
def _tokenize(context, sequence, *pattern):
    text = _one_string(sequence, "tokenize")
    if pattern:
        splitter = _compile(_one_string(pattern[0], "tokenize"), "tokenize")
        parts = splitter.split(text)
    else:
        parts = text.split()
    return [StringItem(part) for part in parts]


@simple_function("matches", [2])
def _matches(context, sequence, pattern):
    text = _one_string(sequence, "matches")
    regex = _compile(_one_string(pattern, "matches"), "matches")
    return [TRUE if regex.search(text) else FALSE]


@simple_function("replace", [3])
def _replace(context, sequence, pattern, replacement):
    text = _one_string(sequence, "replace")
    regex = _compile(_one_string(pattern, "replace"), "replace")
    substitution = _one_string(replacement, "replace").replace("$0", "\\g<0>")
    substitution = re.sub(r"\$(\d)", r"\\\1", substitution)
    return [StringItem(regex.sub(substitution, text))]


@simple_function("serialize", [1])
def _serialize(context, sequence):
    if len(sequence) == 1:
        return [StringItem(sequence[0].serialize())]
    return [StringItem(
        "(" + ", ".join(item.serialize() for item in sequence) + ")"
    )]
