"""Builtin function registry.

Two registration styles exist:

* :func:`simple_function` — for functions whose semantics is a plain
  Python computation over *materialized* argument sequences.  They are
  wrapped in :class:`SimpleFunctionIterator`.

* :func:`iterator_function` — for functions that need their own runtime
  iterator, because they are streaming, RDD-aware (``count`` maps to a
  Spark count action, paper Section 4.1.2) or provide input data
  (``json-file``, ``parallelize``, Section 5.7).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from repro.items import Item
from repro.jsoniq.errors import StaticException
from repro.jsoniq.runtime.base import RuntimeIterator
from repro.jsoniq.runtime.dynamic_context import DynamicContext

#: name -> arity -> python callable (context, *arg_lists) -> iterable[Item]
_SIMPLE: Dict[str, Dict[int, Callable]] = {}

#: name -> (allowed_arities, factory(arg_iterators) -> RuntimeIterator)
_FACTORIES: Dict[str, Tuple[Tuple[int, ...], Callable]] = {}


def simple_function(name: str, arities: Iterable[int]):
    """Register a materializing builtin under one or more arities."""

    def register(func: Callable) -> Callable:
        table = _SIMPLE.setdefault(name, {})
        for arity in arities:
            if arity in table:
                raise ValueError(
                    "duplicate builtin {}#{}".format(name, arity)
                )
            table[arity] = func
        return func

    return register


def iterator_function(name: str, arities: Iterable[int]):
    """Register a factory producing a dedicated runtime iterator."""

    def register(factory: Callable) -> Callable:
        if name in _FACTORIES:
            raise ValueError("duplicate builtin " + name)
        _FACTORIES[name] = (tuple(arities), factory)
        return factory

    return register


def is_builtin(name: str, arity: int) -> bool:
    if name in _SIMPLE and arity in _SIMPLE[name]:
        return True
    if name in _FACTORIES and arity in _FACTORIES[name][0]:
        return True
    return False


def builtin_names() -> List[str]:
    return sorted(set(_SIMPLE) | set(_FACTORIES))


def build_function_iterator(
    name: str, arguments: List[RuntimeIterator]
) -> RuntimeIterator:
    """Instantiate the runtime iterator for one builtin call."""
    arity = len(arguments)
    if name in _FACTORIES and arity in _FACTORIES[name][0]:
        return _FACTORIES[name][1](arguments)
    if name in _SIMPLE and arity in _SIMPLE[name]:
        return SimpleFunctionIterator(name, _SIMPLE[name][arity], arguments)
    raise StaticException(
        "unknown function {}#{}".format(name, arity), code="XPST0017"
    )


class SimpleFunctionIterator(RuntimeIterator):
    """Materializes every argument, then delegates to a Python callable."""

    def __init__(self, name: str, func: Callable,
                 arguments: List[RuntimeIterator]):
        super().__init__(list(arguments))
        self.name = name
        self.func = func

    def _generate(self, context: DynamicContext):
        arguments = [child.materialize(context) for child in self.children]
        yield from self.func(context, *arguments)
