"""Window functions over sequences.

The paper's conclusion lists FLWOR *window clauses* as future work for
streaming platforms; on a batch substrate the equivalent capability is
provided as functions, the way Rumble's own library later did:

* ``tumbling-window($seq, $size)`` — consecutive non-overlapping windows
  of ``$size`` items (the last one may be shorter), each boxed as an
  array;
* ``sliding-window($seq, $size)`` — every window of ``$size`` consecutive
  items, boxed as arrays.
"""

from __future__ import annotations

from typing import List

from repro.items import ArrayItem, Item
from repro.jsoniq.errors import TypeException
from repro.jsoniq.functions.registry import simple_function


def _window_size(argument, name: str) -> int:
    if len(argument) != 1 or not argument[0].is_numeric:
        raise TypeException(
            "{}() size must be a single number".format(name)
        )
    size = int(argument[0].value)
    if size <= 0:
        raise TypeException("{}() size must be positive".format(name))
    return size


@simple_function("tumbling-window", [2])
def _tumbling_window(context, sequence, size_argument) -> List[Item]:
    size = _window_size(size_argument, "tumbling-window")
    return [
        ArrayItem(sequence[start:start + size])
        for start in range(0, len(sequence), size)
    ]


@simple_function("sliding-window", [2])
def _sliding_window(context, sequence, size_argument) -> List[Item]:
    size = _window_size(size_argument, "sliding-window")
    if len(sequence) < size:
        return []
    return [
        ArrayItem(sequence[start:start + size])
        for start in range(0, len(sequence) - size + 1)
    ]
