"""User-defined functions (prolog ``declare function``).

UDF support is listed as future work in the paper's conclusion; this
reproduction implements it.  A UDF call evaluates its body in a fresh
dynamic context with only the parameters bound — JSONiq functions do not
close over the caller's variables, so recursion (``local:fact``) is safe.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.items import Item
from repro.jsoniq.errors import DynamicException
from repro.jsoniq.runtime.base import RuntimeIterator
from repro.jsoniq.runtime.dynamic_context import DynamicContext

import sys

#: Recursion guard: JSONiq is Turing-complete, Python's stack is not.
#: Each JSONiq call consumes a few dozen interpreter frames, so the
#: interpreter limit is raised to keep this guard the one that trips.
MAX_UDF_DEPTH = 200

sys.setrecursionlimit(max(sys.getrecursionlimit(), 20_000))


class UserFunction:
    """A compiled user-defined function."""

    def __init__(self, name: str, parameters: List[str]):
        self.name = name
        self.parameters = parameters
        #: Compiled body; assigned after construction so that recursive
        #: bodies can reference the function while being compiled.
        self.body: RuntimeIterator | None = None


class UdfCallIterator(RuntimeIterator):
    """One call site of a user-defined function."""

    _depth = 0  # process-wide recursion depth accounting

    def __init__(self, function: UserFunction,
                 arguments: List[RuntimeIterator]):
        super().__init__(list(arguments))
        self.function = function

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if self.function.body is None:
            raise DynamicException(
                "function {} has no body".format(self.function.name)
            )
        frame = DynamicContext(runtime=context.runtime)
        for parameter, argument in zip(self.function.parameters, self.children):
            frame.bind(parameter, argument.materialize(context))
        if UdfCallIterator._depth >= MAX_UDF_DEPTH:
            raise DynamicException(
                "maximum recursion depth exceeded in {}".format(
                    self.function.name
                ),
                code="SENR0003",
            )
        UdfCallIterator._depth += 1
        try:
            yield from self.function.body.materialize(frame)
        finally:
            UdfCallIterator._depth -= 1
