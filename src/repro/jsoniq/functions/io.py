"""Input functions: json-file, parallelize, collection, json-doc.

These are the two RDD-producing function iterators of the paper's Section
5.7 (plus convenience aliases).  They reach the Spark substrate through
``context.runtime`` — the engine configuration installed by
:class:`repro.core.engine.Rumble`.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.items import Item, item_from_python
from repro.jsoniq.errors import DynamicException, TypeException
from repro.jsoniq.functions.registry import iterator_function, simple_function
from repro.jsoniq.jsonlines import iter_json_lines, parse_json_line
from repro.jsoniq.runtime.base import RuntimeIterator
from repro.jsoniq.runtime.dynamic_context import DynamicContext


def _runtime(context: DynamicContext):
    runtime = context.runtime
    if runtime is None:
        raise DynamicException(
            "no engine runtime is attached to this dynamic context"
        )
    return runtime


def _one_string_argument(
    iterator: RuntimeIterator, context: DynamicContext, name: str
) -> str:
    item = iterator.evaluate_atomic(context, name + " argument")
    if item is None or not item.is_string:
        raise TypeException(name + "() requires one string argument")
    return item.value


def _parse_settings(runtime):
    """The engine's parse mode and corrupt-record field name."""
    config = runtime.config
    return (
        getattr(config, "parse_mode", "failfast"),
        getattr(config, "corrupt_record_field", "_corrupt_record"),
    )


def _json_lines_reader(runtime, mode: str, corrupt_field: str):
    """A partition-mapper decoding JSON lines under ``mode``, reporting
    every tolerated malformed line to the context's fault ledger."""
    if mode == "failfast":
        return iter_json_lines
    faults = runtime.spark.spark_context.faults
    kind = (
        "malformed_dropped" if mode == "dropmalformed"
        else "malformed_captured"
    )

    def on_malformed(line: str, error: Exception) -> None:
        faults.record(
            kind, "MalformedRecord", mode=mode, reason=str(error)[:120]
        )

    def read(lines) -> Iterator[Item]:
        return iter_json_lines(
            lines,
            mode=mode,
            corrupt_field=corrupt_field,
            on_malformed=on_malformed,
        )

    return read


@iterator_function("json-file", [1, 2])
class JsonFileIterator(RuntimeIterator):
    """``json-file($path[, $partitions])`` — a partitioned read of a
    JSON-Lines file, mapping text lines straight to items."""

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.path = arguments[0]
        self.partitions = arguments[1] if len(arguments) > 1 else None

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        return self.get_rdd(context).to_local_iterator()

    def is_rdd(self, context: DynamicContext) -> bool:
        return True

    def get_rdd(self, context: DynamicContext):
        runtime, path, min_partitions = self._resolve(context)
        mode, corrupt_field = _parse_settings(runtime)
        lines = runtime.spark.spark_context.text_file(
            path, min_partitions,
            decode_errors="strict" if mode == "failfast" else "replace",
        )
        return lines.map_partitions(
            _json_lines_reader(runtime, mode, corrupt_field)
        )

    def _resolve(self, context: DynamicContext):
        """(runtime, path, min_partitions) shared by both read paths."""
        runtime = _runtime(context)
        path = _one_string_argument(self.path, context, "json-file")
        min_partitions = None
        if self.partitions is not None:
            partitions_item = self.partitions.evaluate_atomic(
                context, "json-file partitions"
            )
            if partitions_item is None or not partitions_item.is_numeric:
                raise TypeException(
                    "json-file() partition count must be a number"
                )
            min_partitions = int(partitions_item.value)
        return runtime, path, min_partitions

    def get_rdd_pushed(self, context: DynamicContext, plan):
        """The pushdown read path (see flwor/pushdown.py): min/max file
        pruning, then per-record predicate pruning and projection applied
        on the decoded dicts before items are built."""
        from repro.jsoniq.jsonlines import iter_json_lines_pushed
        from repro.jsoniq.runtime.base import _obs_of
        from repro.spark import storage
        from repro.spark.rdd import RDD

        runtime, path, min_partitions = self._resolve(context)
        mode, corrupt_field = _parse_settings(runtime)
        context_ = runtime.spark.spark_context
        blocks, pruned_files = storage.split_input_pruned(
            path,
            min_partitions=min_partitions,
            block_size=int(context_.conf.get("spark.storage.blockSize")),
            range_predicates=plan.range_predicates,
        )
        obs = _obs_of(context)
        if obs is not None:
            obs.metrics.counter("rumble.pushdown.scans").inc()
            if pruned_files:
                obs.metrics.counter(
                    "rumble.pushdown.files_pruned"
                ).inc(pruned_files)
        if not blocks:
            return context_.empty_rdd()
        decode_errors = "strict" if mode == "failfast" else "replace"

        def compute(split: int):
            return blocks[split].read_lines(decode_errors=decode_errors)

        lines = RDD(
            context_, compute, len(blocks),
            name="textFile(pushed:{})".format(path),
        )
        predicates = tuple(
            predicate.raw for predicate in plan.predicates
        )
        projection = plan.effective_projection()  # logged, not applied:
        # lazy item wrapping already defers unreferenced keys.
        on_malformed = None
        if mode != "failfast":
            faults = context_.faults
            kind = (
                "malformed_dropped" if mode == "dropmalformed"
                else "malformed_captured"
            )

            def on_malformed(line, error):
                faults.record(
                    kind, "MalformedRecord", mode=mode,
                    reason=str(error)[:120],
                )

        on_pruned = None
        if obs is not None:
            pruned_counter = obs.metrics.counter(
                "rumble.pushdown.records_pruned"
            )
            on_pruned = pruned_counter.inc
            if projection is not None:
                obs.metrics.counter("rumble.pushdown.projections").inc()
            if predicates:
                obs.metrics.counter(
                    "rumble.pushdown.predicates"
                ).inc(len(predicates))

        def read(lines_iter) -> Iterator[Item]:
            return iter_json_lines_pushed(
                lines_iter,
                predicates=predicates,
                mode=mode,
                corrupt_field=corrupt_field,
                on_malformed=on_malformed,
                on_pruned=on_pruned,
            )

        return lines.map_partitions(read)

    def get_rdd_columnar(self, context: DynamicContext, plan):
        """The vectorized scan: one :class:`MaskedBatch` per file block.

        Result-identical to :meth:`get_rdd_pushed` by construction —
        same file pruning, same decode, same three-valued predicate
        semantics (vectorized into per-column masks) — so it reports the
        same ``rumble.pushdown.*`` counters *plus* the
        ``rumble.columnar.*`` family.  Consumers box surviving rows at
        the boundary (:meth:`MaskedBatch.iter_boxed`) or run batch
        kernels over the columns directly.

        Shredded batches are cached process-wide by block fingerprint,
        but only under ``failfast`` parsing: the tolerant modes report
        every malformed line to the fault ledger per scan, which a cache
        hit would silence.
        """
        from repro.items.columnar import BATCH_CACHE, PRUNED, MaskedBatch
        from repro.jsoniq.jsonlines import shred_json_lines
        from repro.jsoniq.runtime.base import _obs_of
        from repro.spark import storage
        from repro.spark.rdd import RDD

        runtime, path, min_partitions = self._resolve(context)
        mode, corrupt_field = _parse_settings(runtime)
        context_ = runtime.spark.spark_context
        blocks, pruned_files = storage.split_input_pruned(
            path,
            min_partitions=min_partitions,
            block_size=int(context_.conf.get("spark.storage.blockSize")),
            range_predicates=plan.range_predicates,
        )
        obs = _obs_of(context)
        predicates = tuple(plan.predicates)
        projection = plan.effective_projection()
        counters = None
        if obs is not None:
            metrics = obs.metrics
            metrics.counter("rumble.pushdown.scans").inc()
            metrics.counter("rumble.columnar.scans").inc()
            if pruned_files:
                metrics.counter(
                    "rumble.pushdown.files_pruned"
                ).inc(pruned_files)
            if projection is not None:
                metrics.counter("rumble.pushdown.projections").inc()
            if predicates:
                metrics.counter(
                    "rumble.pushdown.predicates"
                ).inc(len(predicates))
            counters = {
                "batches": metrics.counter("rumble.columnar.batches"),
                "shredded": metrics.counter("rumble.columnar.shredded_rows"),
                "escaped": metrics.counter("rumble.columnar.escaped_rows"),
                "pruned": metrics.counter("rumble.columnar.pruned_rows"),
                "mask_rows": metrics.counter("rumble.columnar.mask_rows"),
                "mask_selected": metrics.counter(
                    "rumble.columnar.mask_selected"
                ),
                "cache_hits": metrics.counter("rumble.columnar.cache_hits"),
                "records_pruned": metrics.counter(
                    "rumble.pushdown.records_pruned"
                ),
            }
        if not blocks:
            return context_.empty_rdd()
        decode_errors = "strict" if mode == "failfast" else "replace"
        cacheable = mode == "failfast"
        on_malformed = None
        if mode != "failfast":
            faults = context_.faults
            kind = (
                "malformed_dropped" if mode == "dropmalformed"
                else "malformed_captured"
            )

            def on_malformed(line, error):
                faults.record(
                    kind, "MalformedRecord", mode=mode,
                    reason=str(error)[:120],
                )

        ledger = getattr(context_, "columnar", None)

        def compute(split: int):
            block = blocks[split]
            batch = None
            key = None
            if cacheable:
                try:
                    key = block.fingerprint()
                except OSError:
                    key = None
                if key is not None:
                    batch = BATCH_CACHE.get(key)
            hit = batch is not None
            if batch is None:
                batch = shred_json_lines(
                    block.read_lines(decode_errors=decode_errors),
                    mode=mode,
                    corrupt_field=corrupt_field,
                    on_malformed=on_malformed,
                )
                if key is not None:
                    BATCH_CACHE.put(key, batch)
            statuses = batch.apply_predicates(predicates)
            pruned = statuses.count(PRUNED) if predicates else 0
            if counters is not None:
                counters["batches"].inc()
                counters["shredded"].inc(batch.shredded_count)
                counters["escaped"].inc(len(batch.escaped))
                if hit:
                    counters["cache_hits"].inc()
                if predicates:
                    counters["records_pruned"].inc(pruned)
                    counters["pruned"].inc(pruned)
                    counters["mask_rows"].inc(batch.row_count)
                    counters["mask_selected"].inc(batch.row_count - pruned)
            if ledger is not None:
                ledger.record(
                    path=path,
                    block=(block.start, block.length),
                    rows=batch.row_count,
                    shredded=batch.shredded_count,
                    escaped=len(batch.escaped),
                    pruned=pruned,
                    cache_hit=hit,
                    schema=(
                        batch.schema.describe() if batch.schema is not None
                        else "(no objects sampled)"
                    ),
                )
            yield MaskedBatch(batch, statuses)

        return RDD(
            context_, compute, len(blocks),
            name="columnarScan({})".format(path),
        )


@iterator_function("json-lines", [1, 2])
class JsonLinesIterator(JsonFileIterator):
    """Rumble's newer alias for ``json-file``."""


@iterator_function("structured-json-file", [1, 2])
class StructuredJsonFileIterator(RuntimeIterator):
    """``structured-json-file($path[, $partitions])`` — the DataFrame
    read path: schema inference plus record coercion, honouring the same
    parse modes as ``json-file`` (a corrupt line becomes a row whose
    fields are null except the corrupt-record column)."""

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.path = arguments[0]
        self.partitions = arguments[1] if len(arguments) > 1 else None

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        return self.get_rdd(context).to_local_iterator()

    def is_rdd(self, context: DynamicContext) -> bool:
        return True

    def get_rdd(self, context: DynamicContext):
        from repro.jsoniq.jsonlines import _wrap_fast

        runtime = _runtime(context)
        path = _one_string_argument(
            self.path, context, "structured-json-file"
        )
        min_partitions = None
        if self.partitions is not None:
            partitions_item = self.partitions.evaluate_atomic(
                context, "structured-json-file partitions"
            )
            if partitions_item is None or not partitions_item.is_numeric:
                raise TypeException(
                    "structured-json-file() partition count must be a number"
                )
            min_partitions = int(partitions_item.value)
        mode, corrupt_field = _parse_settings(runtime)
        frame = runtime.spark.read.json(
            path, min_partitions, mode=mode, corrupt_field=corrupt_field,
            faults=runtime.spark.spark_context.faults,
        )
        return frame.rdd.map(_wrap_fast)


@iterator_function("parallelize", [1, 2])
class ParallelizeIterator(RuntimeIterator):
    """``parallelize($seq[, $partitions])`` — force a local sequence onto
    the cluster, triggering Spark-enabled behaviour downstream."""

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.source = arguments[0]
        self.partitions = arguments[1] if len(arguments) > 1 else None

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        return self.get_rdd(context).to_local_iterator()

    def is_rdd(self, context: DynamicContext) -> bool:
        return True

    def get_rdd(self, context: DynamicContext):
        runtime = _runtime(context)
        slices = None
        if self.partitions is not None:
            slices_item = self.partitions.evaluate_atomic(
                context, "parallelize partitions"
            )
            if slices_item is None or not slices_item.is_numeric:
                raise TypeException(
                    "parallelize() partition count must be a number"
                )
            slices = int(slices_item.value)
        items = self.source.materialize(context)
        return runtime.spark.spark_context.parallelize(items, slices)


@iterator_function("collection", [1])
class CollectionIterator(RuntimeIterator):
    """``collection($name)`` — a named collection registered with the
    engine, resolving either to a storage URI or to in-memory items."""

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.name = arguments[0]

    def _resolve(self, context: DynamicContext):
        runtime = _runtime(context)
        name = _one_string_argument(self.name, context, "collection")
        try:
            return runtime.collections[name]
        except KeyError:
            raise DynamicException(
                "unknown collection {!r}".format(name), code="FODC0002"
            ) from None

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        return self.get_rdd(context).to_local_iterator()

    def is_rdd(self, context: DynamicContext) -> bool:
        return True

    def get_rdd(self, context: DynamicContext):
        runtime = _runtime(context)
        name = _one_string_argument(self.name, context, "collection")
        cached = runtime.collection_rdds.get(name)
        if cached is not None:
            return cached
        binding = self._resolve(context)
        if isinstance(binding, str):
            mode, corrupt_field = _parse_settings(runtime)
            lines = runtime.spark.spark_context.text_file(
                binding,
                decode_errors="strict" if mode == "failfast" else "replace",
            )
            rdd = lines.map_partitions(
                _json_lines_reader(runtime, mode, corrupt_field)
            )
        else:
            items = [
                item if isinstance(item, Item) else item_from_python(item)
                for item in binding
            ]
            rdd = runtime.spark.spark_context.parallelize(items)
        # Cache the materialized partitions: collections are typically the
        # small, repeatedly-joined side (the broadcast pattern).
        rdd.cache()
        runtime.collection_rdds[name] = rdd
        return rdd


@iterator_function("text-file", [1, 2])
class TextFileIterator(RuntimeIterator):
    """``text-file($path[, $partitions])`` — each line as a string item,
    read through the same partitioned storage layer as json-file."""

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.path = arguments[0]
        self.partitions = arguments[1] if len(arguments) > 1 else None

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        return self.get_rdd(context).to_local_iterator()

    def is_rdd(self, context: DynamicContext) -> bool:
        return True

    def get_rdd(self, context: DynamicContext):
        from repro.items import StringItem

        runtime = _runtime(context)
        path = _one_string_argument(self.path, context, "text-file")
        min_partitions = None
        if self.partitions is not None:
            partitions_item = self.partitions.evaluate_atomic(
                context, "text-file partitions"
            )
            if partitions_item is None or not partitions_item.is_numeric:
                raise TypeException(
                    "text-file() partition count must be a number"
                )
            min_partitions = int(partitions_item.value)
        lines = runtime.spark.spark_context.text_file(path, min_partitions)
        return lines.map(StringItem)


@iterator_function("csv-file", [1, 2])
class CsvFileIterator(RuntimeIterator):
    """``csv-file($path[, $partitions])`` — CSV with a header row, each
    record becoming an object; numeric-looking fields become numbers.

    The header is read once on the driver; partitions then parse their
    own lines, skipping the header line in the first block.
    """

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)
        self.path = arguments[0]
        self.partitions = arguments[1] if len(arguments) > 1 else None

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        return self.get_rdd(context).to_local_iterator()

    def is_rdd(self, context: DynamicContext) -> bool:
        return True

    def get_rdd(self, context: DynamicContext):
        import csv as csv_module

        from repro.spark import storage
        from repro.jsoniq.jsonlines import _wrap_fast

        runtime = _runtime(context)
        path = _one_string_argument(self.path, context, "csv-file")
        min_partitions = None
        if self.partitions is not None:
            partitions_item = self.partitions.evaluate_atomic(
                context, "csv-file partitions"
            )
            if partitions_item is None or not partitions_item.is_numeric:
                raise TypeException(
                    "csv-file() partition count must be a number"
                )
            min_partitions = int(partitions_item.value)
        local = storage.REGISTRY.resolve(path)
        with open(local, "r", encoding="utf-8", newline="") as handle:
            header_line = handle.readline()
        header = next(csv_module.reader([header_line]))

        def parse_lines(lines) -> Iterator[Item]:
            for row in csv_module.reader(lines):
                if row == header:
                    continue  # the header line itself
                record = {}
                for name, raw in zip(header, row):
                    record[name] = _coerce_csv_value(raw)
                yield _wrap_fast(record)

        lines = runtime.spark.spark_context.text_file(path, min_partitions)
        return lines.map_partitions(parse_lines)


def _coerce_csv_value(raw: str):
    """CSV cells are text; recognize integers, floats and booleans."""
    if raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    if raw in ("true", "false"):
        return raw == "true"
    return raw


@simple_function("json-doc", [1])
def _json_doc(context, path_argument):
    """Read one whole JSON document (not JSON-Lines) as a single item."""
    if len(path_argument) != 1 or not path_argument[0].is_string:
        raise TypeException("json-doc() requires one string argument")
    from repro.spark import storage

    local = storage.REGISTRY.resolve(path_argument[0].value)
    with open(local, "r", encoding="utf-8") as handle:
        return [parse_json_line(handle.read().strip())]


@simple_function("parse-json", [1])
def _parse_json(context, text_argument):
    if len(text_argument) != 1 or not text_argument[0].is_string:
        raise TypeException("parse-json() requires one string argument")
    return [parse_json_line(text_argument[0].value)]
