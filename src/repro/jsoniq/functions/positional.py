"""Positional context functions: ``position()`` and ``last()``.

Usable inside predicates, XQuery-style: ``$seq[position() gt 2]``,
``$seq[last()]``.  ``last()`` requires the predicate to know the filtered
sequence's length, so predicates whose condition mentions ``last()``
materialize their input first (detected at compile time by
:class:`~repro.jsoniq.runtime.navigation.PredicateIterator`).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.items import IntegerItem, Item
from repro.jsoniq.errors import DynamicException
from repro.jsoniq.functions.registry import iterator_function
from repro.jsoniq.runtime.base import RuntimeIterator
from repro.jsoniq.runtime.dynamic_context import DynamicContext


@iterator_function("position", [0])
class PositionIterator(RuntimeIterator):
    """The 1-based position of the context item in the filtered sequence."""

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        position = context.position
        if position is None:
            raise DynamicException(
                "position() is only defined inside a predicate",
                code="XPDY0002",
            )
        yield IntegerItem(position)


@iterator_function("last", [0])
class LastIterator(RuntimeIterator):
    """The size of the sequence being filtered."""

    def __init__(self, arguments: List[RuntimeIterator]):
        super().__init__(arguments)

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        last = context.last
        if last is None:
            raise DynamicException(
                "last() is only defined inside a materializing predicate",
                code="XPDY0002",
            )
        yield IntegerItem(last)
