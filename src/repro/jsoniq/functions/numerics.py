"""Numeric functions and atomic constructor functions."""

from __future__ import annotations

import math
from decimal import Decimal, ROUND_HALF_UP

from repro.items import (
    FALSE,
    TRUE,
    DecimalItem,
    DoubleItem,
    make_numeric,
)
from repro.jsoniq.errors import JsoniqException, TypeException
from repro.jsoniq.functions.registry import simple_function
from repro.jsoniq.runtime.control import cast_item


def _one_numeric(sequence, name: str):
    if not sequence:
        return None
    if len(sequence) > 1 or not sequence[0].is_numeric:
        raise TypeException("{}() requires one numeric item".format(name))
    return sequence[0]


@simple_function("abs", [1])
def _abs(context, sequence):
    item = _one_numeric(sequence, "abs")
    return [] if item is None else [make_numeric(abs(item.value))]


@simple_function("ceiling", [1])
def _ceiling(context, sequence):
    item = _one_numeric(sequence, "ceiling")
    if item is None:
        return []
    if item.is_integer:
        return [item]
    if item.is_double:
        return [DoubleItem(math.ceil(item.value))]
    return [DecimalItem(item.value.to_integral_value(rounding="ROUND_CEILING"))]


@simple_function("floor", [1])
def _floor(context, sequence):
    item = _one_numeric(sequence, "floor")
    if item is None:
        return []
    if item.is_integer:
        return [item]
    if item.is_double:
        return [DoubleItem(math.floor(item.value))]
    return [DecimalItem(item.value.to_integral_value(rounding="ROUND_FLOOR"))]


@simple_function("round", [1, 2])
def _round(context, sequence, *precision):
    item = _one_numeric(sequence, "round")
    if item is None:
        return []
    digits = 0
    if precision:
        digit_item = _one_numeric(precision[0], "round")
        digits = int(digit_item.value) if digit_item else 0
    if item.is_integer:
        return [item]
    if item.is_double:
        scale = 10 ** digits
        return [DoubleItem(math.floor(item.value * scale + 0.5) / scale)]
    quantum = Decimal(1).scaleb(-digits)
    return [DecimalItem(item.value.quantize(quantum, rounding=ROUND_HALF_UP))]


@simple_function("sqrt", [1])
def _sqrt(context, sequence):
    item = _one_numeric(sequence, "sqrt")
    return [] if item is None else [DoubleItem(math.sqrt(float(item.value)))]


@simple_function("exp", [1])
def _exp(context, sequence):
    item = _one_numeric(sequence, "exp")
    return [] if item is None else [DoubleItem(math.exp(float(item.value)))]


@simple_function("log", [1])
def _log(context, sequence):
    item = _one_numeric(sequence, "log")
    return [] if item is None else [DoubleItem(math.log(float(item.value)))]


@simple_function("pow", [2])
def _pow(context, base, exponent):
    base_item = _one_numeric(base, "pow")
    exponent_item = _one_numeric(exponent, "pow")
    if base_item is None or exponent_item is None:
        return []
    return [DoubleItem(float(base_item.value) ** float(exponent_item.value))]


@simple_function("number", [1])
def _number(context, sequence):
    """Cast to double; NaN when the cast fails (XPath semantics)."""
    if not sequence or len(sequence) > 1:
        return [DoubleItem(float("nan"))]
    try:
        return [cast_item(sequence[0], "double")]
    except JsoniqException:
        return [DoubleItem(float("nan"))]


def _constructor(type_name: str):
    def construct(context, sequence):
        if not sequence:
            return []
        if len(sequence) > 1:
            raise TypeException(
                "{}() requires at most one item".format(type_name)
            )
        return [cast_item(sequence[0], type_name)]

    return construct


simple_function("integer", [1])(_constructor("integer"))
simple_function("decimal", [1])(_constructor("decimal"))
simple_function("double", [1])(_constructor("double"))
simple_function("date", [1])(_constructor("date"))


@simple_function("boolean", [1])
def _boolean(context, sequence):
    """The effective boolean value as a function."""
    if not sequence:
        return [FALSE]
    if len(sequence) > 1:
        raise TypeException("boolean() of a sequence longer than one")
    return [TRUE if sequence[0].effective_boolean_value() else FALSE]
