"""Object and array functions (the JSONiq-specific library)."""

from __future__ import annotations

from typing import List

from repro.items import (
    IntegerItem,
    Item,
    ObjectItem,
    StringItem,
)
from repro.jsoniq.errors import TypeException
from repro.jsoniq.functions.registry import simple_function


@simple_function("keys", [1])
def _keys(context, sequence):
    """Distinct keys of all object items in the sequence, in order."""
    seen = []
    emitted = set()
    for item in sequence:
        if item.is_object:
            for key in item.keys():
                if key not in emitted:
                    emitted.add(key)
                    seen.append(StringItem(key))
    return seen


@simple_function("values", [1])
def _values(context, sequence):
    out: List[Item] = []
    for item in sequence:
        if item.is_object:
            out.extend(item.pairs.values())
    return out


@simple_function("members", [1])
def _members(context, sequence):
    out: List[Item] = []
    for item in sequence:
        out.extend(item.unbox())
    return out


@simple_function("size", [1])
def _size(context, sequence):
    """Size of a single array (empty sequence -> empty)."""
    if not sequence:
        return []
    if len(sequence) > 1 or not sequence[0].is_array:
        raise TypeException("size() requires a single array")
    return [IntegerItem(len(sequence[0].members))]


@simple_function("flatten", [1])
def _flatten(context, sequence):
    """Recursively unbox arrays; non-arrays pass through."""
    out: List[Item] = []

    def walk(item: Item) -> None:
        if item.is_array:
            for member in item.members:
                walk(member)
        else:
            out.append(item)

    for item in sequence:
        walk(item)
    return out


@simple_function("project", [2])
def _project(context, sequence, keys):
    """Keep only the given keys of each object."""
    wanted = [key.value for key in keys if key.is_string]
    out: List[Item] = []
    for item in sequence:
        if item.is_object:
            out.append(ObjectItem({
                key: value
                for key, value in item.pairs.items()
                if key in wanted
            }))
        else:
            out.append(item)
    return out


@simple_function("remove-keys", [2])
def _remove_keys(context, sequence, keys):
    doomed = {key.value for key in keys if key.is_string}
    out: List[Item] = []
    for item in sequence:
        if item.is_object:
            out.append(ObjectItem({
                key: value
                for key, value in item.pairs.items()
                if key not in doomed
            }))
        else:
            out.append(item)
    return out


@simple_function("accumulate", [1])
def _accumulate(context, sequence):
    """Merge objects left to right; later values win on key clashes."""
    merged = {}
    for item in sequence:
        if item.is_object:
            merged.update(item.pairs)
    return [ObjectItem(merged)]


@simple_function("descendant-objects", [1])
def _descendant_objects(context, sequence):
    out: List[Item] = []

    def walk(item: Item) -> None:
        if item.is_object:
            out.append(item)
            for value in item.pairs.values():
                walk(value)
        elif item.is_array:
            for member in item.members:
                walk(member)

    for item in sequence:
        walk(item)
    return out


@simple_function("descendant-arrays", [1])
def _descendant_arrays(context, sequence):
    out: List[Item] = []

    def walk(item: Item) -> None:
        if item.is_array:
            out.append(item)
            for member in item.members:
                walk(member)
        elif item.is_object:
            for value in item.pairs.values():
                walk(value)

    for item in sequence:
        walk(item)
    return out


@simple_function("null", [0])
def _null(context):
    from repro.items import NULL

    return [NULL]
