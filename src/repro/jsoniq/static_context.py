"""Chained static contexts (paper, Section 5.3).

Each expression is analysed in a static context holding the in-scope
variables and known user-defined functions.  Contexts are chained — a
child context references its parent instead of copying bindings — so that
variable declaration is O(1) and lookups walk the chain.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.jsoniq.errors import StaticException


class StaticContext:
    """One scope in the chain."""

    def __init__(self, parent: Optional["StaticContext"] = None):
        self.parent = parent
        self._variables: Dict[str, object] = {}
        # Functions live in the root context only (JSONiq prolog scope).
        self._functions: Dict[Tuple[str, int], object] = {} if parent is None else None

    # -- Variables ------------------------------------------------------------
    def bind_variable(self, name: str, declared_type: object = None) -> "StaticContext":
        """Return a child context with one more in-scope variable."""
        child = StaticContext(self)
        child._variables[name] = declared_type
        return child

    def lookup_variable(self, name: str):
        """The innermost binding object for a name, or None.

        Returns whatever ``bind_variable`` stored — the static analyzer
        stores :class:`repro.jsoniq.analysis.inference.Binding` objects,
        older callers may store plain declared-type markers.
        """
        context: Optional[StaticContext] = self
        while context is not None:
            if name in context._variables:
                return context._variables[name]
            context = context.parent
        return None

    def has_variable(self, name: str) -> bool:
        context: Optional[StaticContext] = self
        while context is not None:
            if name in context._variables:
                return True
            context = context.parent
        return False

    def require_variable(self, name: str, line: int = 0, column: int = 0) -> None:
        if not self.has_variable(name):
            raise StaticException(
                "undeclared variable ${}".format(name),
                code="XPST0008",
                line=line,
                column=column,
            )

    def in_scope_variables(self) -> Dict[str, object]:
        """All visible variables, innermost binding winning."""
        chain = []
        context: Optional[StaticContext] = self
        while context is not None:
            chain.append(context._variables)
            context = context.parent
        merged: Dict[str, object] = {}
        for variables in reversed(chain):
            merged.update(variables)
        return merged

    # -- Functions --------------------------------------------------------------
    def _root(self) -> "StaticContext":
        context = self
        while context.parent is not None:
            context = context.parent
        return context

    def declare_function(self, name: str, arity: int, declaration) -> None:
        root = self._root()
        key = (name, arity)
        if key in root._functions:
            raise StaticException(
                "function {}#{} declared twice".format(name, arity),
                code="XQST0034",
            )
        root._functions[key] = declaration

    def lookup_function(self, name: str, arity: int):
        return self._root()._functions.get((name, arity))
