"""Recursive-descent parser for the supported JSONiq grammar.

Produces the AST of :mod:`repro.jsoniq.ast`.  Operator precedence follows
the JSONiq specification, lowest first::

    comma > flwor/if/switch/try/quantified > or > and > not > comparison
    > string-concat > range > additive > multiplicative > instance-of
    > treat > castable > cast > unary > simple-map > postfix > primary
"""

from __future__ import annotations

from decimal import Decimal
from typing import List, Optional, Tuple

from repro.jsoniq import ast
from repro.jsoniq.errors import ParseException
from repro.jsoniq.lexer import Token, tokenize

_VALUE_COMPARISONS = {"eq", "ne", "lt", "le", "gt", "ge"}
_GENERAL_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}
_ATOMIC_TYPES = {
    "string", "integer", "decimal", "double", "boolean", "null", "atomic",
    "date", "number", "dateTime", "time", "duration",
    "dayTimeDuration", "yearMonthDuration",
}
_ITEM_TYPES = _ATOMIC_TYPES | {"item", "object", "array", "json-item"}

#: Keywords that are also builtin function names and may appear in a
#: function-call position (``count(...)``, ``empty(...)``, ``null()``).
_KEYWORD_FUNCTIONS = frozenset({"count", "empty", "null"})


class Parser:
    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._index = 0

    # -- Token plumbing -------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._peek().matches(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            found = self._peek()
            raise ParseException(
                "expected {}{}, found {!r}".format(
                    kind,
                    " {!r}".format(text) if text else "",
                    found.text or "end of query",
                ),
                line=found.line,
                column=found.column,
            )
        return token

    def _pos(self) -> dict:
        token = self._peek()
        return {"line": token.line, "column": token.column}

    def _name_like(self) -> Optional[Token]:
        """Accept a name even when it collides with a keyword (object keys,
        lookup keys)."""
        if self._peek().kind in ("name", "keyword"):
            return self._advance()
        return None

    # -- Entry points ------------------------------------------------------------
    def parse_module(self) -> ast.MainModule:
        pos = self._pos()
        declarations = self._parse_prolog()
        expression = self.parse_expression()
        token = self._peek()
        if token.kind != "eof":
            raise ParseException(
                "unexpected trailing input {!r}".format(token.text),
                line=token.line,
                column=token.column,
            )
        return ast.MainModule(declarations, expression, **pos)

    def _parse_prolog(self) -> List[ast.AstNode]:
        declarations: List[ast.AstNode] = []
        while self._peek().matches("keyword", "declare"):
            self._advance()
            if self._accept("keyword", "function"):
                declarations.append(self._parse_function_declaration())
            elif self._accept("keyword", "variable"):
                declarations.append(self._parse_variable_declaration())
            else:
                token = self._peek()
                raise ParseException(
                    "expected 'function' or 'variable' after 'declare'",
                    line=token.line,
                    column=token.column,
                )
            self._expect("punct", ";")
        return declarations

    def _parse_function_declaration(self) -> ast.FunctionDeclaration:
        pos = self._pos()
        name = self._expect("name").text
        self._expect("punct", "(")
        parameters: List[str] = []
        parameter_types: List[Optional[ast.SequenceType]] = []
        if not self._accept("punct", ")"):
            while True:
                self._expect("punct", "$")
                parameters.append(self._expect_name_text())
                parameter_types.append(self._maybe_type_annotation())
                if not self._accept("punct", ","):
                    break
            self._expect("punct", ")")
        return_type = self._maybe_return_type()
        self._expect("punct", "{")
        body = self.parse_expression()
        self._expect("punct", "}")
        return ast.FunctionDeclaration(
            name, parameters, body,
            parameter_types=parameter_types, return_type=return_type, **pos
        )

    def _parse_variable_declaration(self) -> ast.VariableDeclaration:
        pos = self._pos()
        self._expect("punct", "$")
        name = self._expect_name_text()
        declared_type = self._maybe_type_annotation()
        if self._accept("keyword", "external"):
            return ast.VariableDeclaration(
                name, None, declared_type=declared_type, **pos
            )
        self._expect("punct", ":=")
        expression = self.parse_expression_single()
        return ast.VariableDeclaration(
            name, expression, declared_type=declared_type, **pos
        )

    def _expect_name_text(self) -> str:
        token = self._name_like()
        if token is None:
            found = self._peek()
            raise ParseException(
                "expected a name, found {!r}".format(found.text),
                line=found.line,
                column=found.column,
            )
        return token.text

    def _maybe_type_annotation(self) -> Optional[ast.SequenceType]:
        if self._accept("keyword", "as"):
            return self._parse_sequence_type()
        return None

    def _maybe_return_type(self) -> Optional[ast.SequenceType]:
        if self._accept("keyword", "as"):
            return self._parse_sequence_type()
        return None

    # -- Expressions ----------------------------------------------------------------
    def parse_expression(self) -> ast.Expression:
        pos = self._pos()
        first = self.parse_expression_single()
        if not self._peek().matches("punct", ","):
            return first
        expressions = [first]
        while self._accept("punct", ","):
            expressions.append(self.parse_expression_single())
        return ast.CommaExpression(expressions, **pos)

    def parse_expression_single(self) -> ast.Expression:
        token = self._peek()
        if token.kind == "keyword":
            if token.text in ("for", "let"):
                return self._parse_flwor()
            if token.text == "if":
                return self._parse_if()
            if token.text == "switch":
                return self._parse_switch()
            if token.text == "typeswitch":
                return self._parse_typeswitch()
            if token.text == "try":
                return self._parse_try_catch()
            if token.text in ("some", "every"):
                return self._parse_quantified()
        return self._parse_or()

    # -- FLWOR --------------------------------------------------------------------------
    def _parse_flwor(self) -> ast.FlworExpression:
        pos = self._pos()
        clauses: List[ast.Clause] = []
        clauses.extend(self._parse_initial_clause())
        while True:
            token = self._peek()
            if token.matches("keyword", "for") or token.matches("keyword", "let"):
                clauses.extend(self._parse_initial_clause())
            elif token.matches("keyword", "where"):
                clause_pos = self._pos()
                self._advance()
                clauses.append(
                    ast.WhereClause(self.parse_expression_single(), **clause_pos)
                )
            elif token.matches("keyword", "group"):
                clauses.append(self._parse_group_by())
            elif token.matches("keyword", "order") or token.matches(
                "keyword", "stable"
            ):
                clauses.append(self._parse_order_by())
            elif token.matches("keyword", "count"):
                clause_pos = self._pos()
                self._advance()
                self._expect("punct", "$")
                clauses.append(
                    ast.CountClause(self._expect_name_text(), **clause_pos)
                )
            elif token.matches("keyword", "return"):
                clause_pos = self._pos()
                self._advance()
                clauses.append(
                    ast.ReturnClause(self.parse_expression_single(), **clause_pos)
                )
                return ast.FlworExpression(clauses, **pos)
            else:
                raise ParseException(
                    "expected a FLWOR clause, found {!r}".format(token.text),
                    line=token.line,
                    column=token.column,
                )

    def _parse_initial_clause(self) -> List[ast.Clause]:
        if self._peek().matches("keyword", "for"):
            follower = self._peek(1)
            if follower.kind == "keyword" and follower.text in (
                "tumbling", "sliding"
            ):
                return [self._parse_window()]
            return self._parse_for()
        return self._parse_let()

    def _parse_window(self) -> ast.WindowClause:
        pos = self._pos()
        self._expect("keyword", "for")
        kind = self._advance().text  # tumbling | sliding
        self._expect("keyword", "window")
        self._expect("punct", "$")
        variable = self._expect_name_text()
        declared_type = self._maybe_type_annotation()
        self._expect("keyword", "in")
        expression = self.parse_expression_single()
        self._expect("keyword", "start")
        start = ast.WindowCondition(
            self._parse_window_vars(), self._parse_window_when()
        )
        end = None
        only = bool(self._accept("keyword", "only"))
        if only or self._peek().matches("keyword", "end"):
            self._expect("keyword", "end")
            end = ast.WindowCondition(
                self._parse_window_vars(),
                self._parse_window_when(),
                only=only,
            )
        elif only:
            raise ParseException("'only' must be followed by 'end'")
        if kind == "sliding" and end is None:
            raise ParseException(
                "sliding windows require an end condition"
            )
        return ast.WindowClause(kind, variable, expression, start, end,
                                declared_type=declared_type, **pos)

    def _parse_window_vars(self) -> ast.WindowVars:
        current = position = previous = next_ = None
        if self._peek().matches("punct", "$"):
            self._advance()
            current = self._expect_name_text()
        if self._accept("keyword", "at"):
            self._expect("punct", "$")
            position = self._expect_name_text()
        if self._accept("keyword", "previous"):
            self._expect("punct", "$")
            previous = self._expect_name_text()
        if self._accept("keyword", "next"):
            self._expect("punct", "$")
            next_ = self._expect_name_text()
        return ast.WindowVars(current, position, previous, next_)

    def _parse_window_when(self) -> ast.Expression:
        self._expect("keyword", "when")
        return self.parse_expression_single()

    def _parse_for(self) -> List[ast.Clause]:
        self._expect("keyword", "for")
        clauses: List[ast.Clause] = []
        while True:
            pos = self._pos()
            self._expect("punct", "$")
            variable = self._expect_name_text()
            declared_type = self._maybe_type_annotation()
            allowing_empty = False
            if self._accept("keyword", "allowing"):
                self._expect("keyword", "empty")
                allowing_empty = True
            position_variable = None
            if self._accept("keyword", "at"):
                self._expect("punct", "$")
                position_variable = self._expect_name_text()
            self._expect("keyword", "in")
            expression = self.parse_expression_single()
            clauses.append(
                ast.ForClause(
                    variable,
                    expression,
                    allowing_empty=allowing_empty,
                    position_variable=position_variable,
                    declared_type=declared_type,
                    **pos,
                )
            )
            if not self._accept("punct", ","):
                return clauses

    def _parse_let(self) -> List[ast.Clause]:
        self._expect("keyword", "let")
        clauses: List[ast.Clause] = []
        while True:
            pos = self._pos()
            self._expect("punct", "$")
            variable = self._expect_name_text()
            declared_type = self._maybe_type_annotation()
            self._expect("punct", ":=")
            expression = self.parse_expression_single()
            clauses.append(ast.LetClause(
                variable, expression, declared_type=declared_type, **pos
            ))
            if not self._accept("punct", ","):
                return clauses

    def _parse_group_by(self) -> ast.GroupByClause:
        pos = self._pos()
        self._expect("keyword", "group")
        self._expect("keyword", "by")
        keys: List[ast.GroupByKey] = []
        while True:
            self._expect("punct", "$")
            variable = self._expect_name_text()
            expression = None
            if self._accept("punct", ":="):
                expression = self.parse_expression_single()
            keys.append(ast.GroupByKey(variable, expression))
            if not self._accept("punct", ","):
                return ast.GroupByClause(keys, **pos)

    def _parse_order_by(self) -> ast.OrderByClause:
        pos = self._pos()
        stable = bool(self._accept("keyword", "stable"))
        self._expect("keyword", "order")
        self._expect("keyword", "by")
        specs: List[ast.OrderSpec] = []
        while True:
            expression = self.parse_expression_single()
            ascending = True
            if self._accept("keyword", "descending"):
                ascending = False
            else:
                self._accept("keyword", "ascending")
            empty_greatest = False
            if self._accept("keyword", "empty"):
                if self._accept("keyword", "greatest"):
                    empty_greatest = True
                else:
                    self._expect("keyword", "least")
            specs.append(ast.OrderSpec(expression, ascending, empty_greatest))
            if not self._accept("punct", ","):
                return ast.OrderByClause(specs, stable=stable, **pos)

    # -- Control flow ----------------------------------------------------------------------
    def _parse_if(self) -> ast.IfExpression:
        pos = self._pos()
        self._expect("keyword", "if")
        self._expect("punct", "(")
        condition = self.parse_expression()
        self._expect("punct", ")")
        self._expect("keyword", "then")
        then_branch = self.parse_expression_single()
        self._expect("keyword", "else")
        else_branch = self.parse_expression_single()
        return ast.IfExpression(condition, then_branch, else_branch, **pos)

    def _parse_switch(self) -> ast.SwitchExpression:
        pos = self._pos()
        self._expect("keyword", "switch")
        self._expect("punct", "(")
        subject = self.parse_expression()
        self._expect("punct", ")")
        cases: List[Tuple[List[ast.Expression], ast.Expression]] = []
        while self._accept("keyword", "case"):
            tests = [self.parse_expression_single()]
            while self._accept("keyword", "case"):
                tests.append(self.parse_expression_single())
            self._expect("keyword", "return")
            cases.append((tests, self.parse_expression_single()))
        self._expect("keyword", "default")
        self._expect("keyword", "return")
        default = self.parse_expression_single()
        if not cases:
            raise ParseException("switch requires at least one case")
        return ast.SwitchExpression(subject, cases, default, **pos)

    def _parse_typeswitch(self) -> ast.TypeswitchExpression:
        pos = self._pos()
        self._expect("keyword", "typeswitch")
        self._expect("punct", "(")
        subject = self.parse_expression()
        self._expect("punct", ")")
        cases = []
        while self._accept("keyword", "case"):
            variable = None
            if self._accept("punct", "$"):
                variable = self._expect_name_text()
                self._expect("keyword", "as")
            sequence_type = self._parse_sequence_type()
            self._expect("keyword", "return")
            cases.append((variable, sequence_type,
                          self.parse_expression_single()))
        if not cases:
            raise ParseException("typeswitch requires at least one case")
        self._expect("keyword", "default")
        default_variable = None
        if self._accept("punct", "$"):
            default_variable = self._expect_name_text()
        self._expect("keyword", "return")
        default = self.parse_expression_single()
        return ast.TypeswitchExpression(
            subject, cases, default_variable, default, **pos
        )

    def _parse_try_catch(self) -> ast.TryCatchExpression:
        pos = self._pos()
        self._expect("keyword", "try")
        self._expect("punct", "{")
        try_expr = self.parse_expression()
        self._expect("punct", "}")
        self._expect("keyword", "catch")
        codes: Optional[List[str]] = None
        if not self._accept("punct", "*"):
            codes = [self._expect_name_text()]
            while self._accept("punct", "|"):
                codes.append(self._expect_name_text())
        self._expect("punct", "{")
        catch_expr = self.parse_expression()
        self._expect("punct", "}")
        return ast.TryCatchExpression(try_expr, catch_expr, codes, **pos)

    def _parse_quantified(self) -> ast.QuantifiedExpression:
        pos = self._pos()
        quantifier = self._advance().text  # some | every
        bindings: List[Tuple[str, ast.Expression]] = []
        binding_types: List[Optional[ast.SequenceType]] = []
        while True:
            self._expect("punct", "$")
            variable = self._expect_name_text()
            binding_types.append(self._maybe_type_annotation())
            self._expect("keyword", "in")
            bindings.append((variable, self.parse_expression_single()))
            if not self._accept("punct", ","):
                break
        self._expect("keyword", "satisfies")
        condition = self.parse_expression_single()
        return ast.QuantifiedExpression(
            quantifier, bindings, condition,
            binding_types=binding_types, **pos
        )

    # -- Operator precedence chain -------------------------------------------------------------
    def _parse_or(self) -> ast.Expression:
        pos = self._pos()
        left = self._parse_and()
        while self._accept("keyword", "or"):
            left = ast.BinaryExpression("or", left, self._parse_and(), **pos)
        return left

    def _parse_and(self) -> ast.Expression:
        pos = self._pos()
        left = self._parse_not()
        while self._accept("keyword", "and"):
            left = ast.BinaryExpression("and", left, self._parse_not(), **pos)
        return left

    def _parse_not(self) -> ast.Expression:
        pos = self._pos()
        if self._accept("keyword", "not"):
            return ast.UnaryExpression("not", self._parse_not(), **pos)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        pos = self._pos()
        left = self._parse_string_concat()
        token = self._peek()
        if token.kind == "keyword" and token.text in _VALUE_COMPARISONS:
            op = self._advance().text
            return ast.ComparisonExpression(
                op, left, self._parse_string_concat(), **pos
            )
        if token.kind == "punct" and token.text in _GENERAL_COMPARISONS:
            op = self._advance().text
            return ast.ComparisonExpression(
                op, left, self._parse_string_concat(), **pos
            )
        return left

    def _parse_string_concat(self) -> ast.Expression:
        pos = self._pos()
        first = self._parse_range()
        if not self._peek().matches("punct", "||"):
            return first
        parts = [first]
        while self._accept("punct", "||"):
            parts.append(self._parse_range())
        return ast.StringConcatExpression(parts, **pos)

    def _parse_range(self) -> ast.Expression:
        pos = self._pos()
        start = self._parse_additive()
        if self._accept("keyword", "to"):
            return ast.RangeExpression(start, self._parse_additive(), **pos)
        return start

    def _parse_additive(self) -> ast.Expression:
        pos = self._pos()
        left = self._parse_multiplicative()
        while True:
            if self._accept("punct", "+"):
                left = ast.BinaryExpression(
                    "+", left, self._parse_multiplicative(), **pos
                )
            elif self._accept("punct", "-"):
                left = ast.BinaryExpression(
                    "-", left, self._parse_multiplicative(), **pos
                )
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        pos = self._pos()
        left = self._parse_instance_of()
        while True:
            token = self._peek()
            if token.matches("punct", "*"):
                self._advance()
                op = "*"
            elif token.kind == "keyword" and token.text in ("div", "idiv", "mod"):
                op = self._advance().text
            else:
                return left
            left = ast.BinaryExpression(
                op, left, self._parse_instance_of(), **pos
            )

    def _parse_instance_of(self) -> ast.Expression:
        pos = self._pos()
        operand = self._parse_treat()
        if self._peek().matches("keyword", "instance"):
            self._advance()
            self._expect("keyword", "of")
            return ast.InstanceOfExpression(
                operand, self._parse_sequence_type(), **pos
            )
        return operand

    def _parse_treat(self) -> ast.Expression:
        pos = self._pos()
        operand = self._parse_castable()
        if self._peek().matches("keyword", "treat"):
            self._advance()
            self._expect("keyword", "as")
            return ast.TreatExpression(
                operand, self._parse_sequence_type(), **pos
            )
        return operand

    def _parse_castable(self) -> ast.Expression:
        pos = self._pos()
        operand = self._parse_cast()
        if self._peek().matches("keyword", "castable"):
            self._advance()
            self._expect("keyword", "as")
            type_name, allows_empty = self._parse_single_type()
            return ast.CastExpression(
                operand, type_name, allows_empty, castable=True, **pos
            )
        return operand

    def _parse_cast(self) -> ast.Expression:
        pos = self._pos()
        operand = self._parse_unary()
        if self._peek().matches("keyword", "cast"):
            self._advance()
            self._expect("keyword", "as")
            type_name, allows_empty = self._parse_single_type()
            return ast.CastExpression(
                operand, type_name, allows_empty, castable=False, **pos
            )
        return operand

    def _parse_single_type(self) -> Tuple[str, bool]:
        name = self._expect_name_text()
        if name not in _ATOMIC_TYPES:
            raise ParseException("unknown atomic type {!r}".format(name))
        allows_empty = bool(self._accept("punct", "?"))
        return name, allows_empty

    def _parse_unary(self) -> ast.Expression:
        pos = self._pos()
        if self._accept("punct", "-"):
            return ast.UnaryExpression("-", self._parse_unary(), **pos)
        if self._accept("punct", "+"):
            return ast.UnaryExpression("+", self._parse_unary(), **pos)
        return self._parse_simple_map()

    def _parse_simple_map(self) -> ast.Expression:
        pos = self._pos()
        left = self._parse_postfix()
        while self._accept("punct", "!"):
            left = ast.SimpleMap(left, self._parse_postfix(), **pos)
        return left

    # -- Postfix -----------------------------------------------------------------------------------
    def _parse_postfix(self) -> ast.Expression:
        pos = self._pos()
        expression = self._parse_primary()
        while True:
            token = self._peek()
            if token.matches("punct", "."):
                self._advance()
                expression = ast.ObjectLookup(
                    expression, self._parse_lookup_key(), **pos
                )
            elif token.matches("punct", "[]"):
                self._advance()
                expression = ast.ArrayUnboxing(expression, **pos)
            elif token.matches("punct", "["):
                if self._peek(1).matches("punct", "["):
                    self._advance()
                    self._advance()
                    index = self.parse_expression()
                    self._expect("punct", "]")
                    self._expect("punct", "]")
                    expression = ast.ArrayLookup(expression, index, **pos)
                else:
                    self._advance()
                    condition = self.parse_expression()
                    self._expect("punct", "]")
                    expression = ast.Predicate(expression, condition, **pos)
            else:
                return expression

    def _parse_lookup_key(self) -> ast.Expression:
        pos = self._pos()
        token = self._peek()
        if token.kind == "string":
            self._advance()
            return ast.Literal("string", token.text, **pos)
        if token.matches("punct", "$"):
            self._advance()
            return ast.VariableReference(self._expect_name_text(), **pos)
        if token.matches("punct", "("):
            self._advance()
            key = self.parse_expression()
            self._expect("punct", ")")
            return key
        name = self._name_like()
        if name is not None:
            return ast.Literal("string", name.text, **pos)
        raise ParseException(
            "expected an object lookup key, found {!r}".format(token.text),
            line=token.line,
            column=token.column,
        )

    # -- Primary ---------------------------------------------------------------------------------------
    def _parse_primary(self) -> ast.Expression:
        pos = self._pos()
        token = self._peek()
        if (
            token.kind == "keyword"
            and token.text in _KEYWORD_FUNCTIONS
            and self._peek(1).matches("punct", "(")
        ):
            return self._parse_function_call()
        if token.kind == "string":
            self._advance()
            return ast.Literal("string", token.text, **pos)
        if token.kind == "integer":
            self._advance()
            return ast.Literal("integer", int(token.text), **pos)
        if token.kind == "decimal":
            self._advance()
            return ast.Literal("decimal", Decimal(token.text), **pos)
        if token.kind == "double":
            self._advance()
            return ast.Literal("double", float(token.text), **pos)
        if token.matches("keyword", "true"):
            self._advance()
            return ast.Literal("boolean", True, **pos)
        if token.matches("keyword", "false"):
            self._advance()
            return ast.Literal("boolean", False, **pos)
        if token.matches("keyword", "null"):
            self._advance()
            return ast.Literal("null", None, **pos)
        if token.matches("punct", "$$"):
            self._advance()
            return ast.ContextItem(**pos)
        if token.matches("punct", "$"):
            self._advance()
            return ast.VariableReference(self._expect_name_text(), **pos)
        if token.matches("punct", "("):
            self._advance()
            if self._accept("punct", ")"):
                return ast.EmptySequence(**pos)
            inner = self.parse_expression()
            self._expect("punct", ")")
            return inner
        if token.matches("punct", "{"):
            return self._parse_object_constructor()
        if token.matches("punct", "[]"):
            # The lexer fuses the empty array constructor into one token.
            self._advance()
            return ast.ArrayConstructor(None, **pos)
        if token.matches("punct", "["):
            return self._parse_array_constructor()
        if token.kind == "name" or (
            token.kind == "keyword" and token.text in _KEYWORD_FUNCTIONS
        ):
            if self._peek(1).matches("punct", "("):
                return self._parse_function_call()
            raise ParseException(
                "unexpected name {!r} (did you mean ${} or a function"
                " call?)".format(token.text, token.text),
                line=token.line,
                column=token.column,
            )
        raise ParseException(
            "unexpected token {!r}".format(token.text or "end of query"),
            line=token.line,
            column=token.column,
        )

    def _parse_object_constructor(self) -> ast.ObjectConstructor:
        pos = self._pos()
        self._expect("punct", "{")
        pairs: List[Tuple[ast.Expression, ast.Expression]] = []
        if self._accept("punct", "}"):
            return ast.ObjectConstructor(pairs, **pos)
        while True:
            key = self._parse_object_key()
            self._expect("punct", ":")
            value = self.parse_expression_single()
            pairs.append((key, value))
            if not self._accept("punct", ","):
                break
        self._expect("punct", "}")
        return ast.ObjectConstructor(pairs, **pos)

    def _parse_object_key(self) -> ast.Expression:
        """An object key: a literal shortcut when directly followed by
        ``:``, otherwise a full (dynamic) expression."""
        pos = self._pos()
        token = self._peek()
        follower = self._peek(1)
        if token.kind == "string" and follower.matches("punct", ":"):
            self._advance()
            return ast.Literal("string", token.text, **pos)
        if (
            token.kind in ("name", "keyword")
            and follower.matches("punct", ":")
        ):
            self._advance()
            return ast.Literal("string", token.text, **pos)
        return self.parse_expression_single()

    def _parse_array_constructor(self) -> ast.ArrayConstructor:
        pos = self._pos()
        self._expect("punct", "[")
        if self._accept("punct", "]"):
            return ast.ArrayConstructor(None, **pos)
        content = self.parse_expression()
        self._expect("punct", "]")
        return ast.ArrayConstructor(content, **pos)

    def _parse_function_call(self) -> ast.FunctionCall:
        pos = self._pos()
        name = self._advance().text  # name, or a whitelisted keyword
        self._expect("punct", "(")
        arguments: List[ast.Expression] = []
        if not self._accept("punct", ")"):
            while True:
                arguments.append(self.parse_expression_single())
                if not self._accept("punct", ","):
                    break
            self._expect("punct", ")")
        return ast.FunctionCall(name, arguments, **pos)

    # -- Types --------------------------------------------------------------------------------------------
    def _parse_sequence_type(self) -> ast.SequenceType:
        name = self._expect_name_text()
        if name == "empty-sequence":
            self._expect("punct", "(")
            self._expect("punct", ")")
            return ast.SequenceType("item", "()")
        if name not in _ITEM_TYPES:
            raise ParseException("unknown item type {!r}".format(name))
        if self._accept("punct", "("):
            self._expect("punct", ")")
        occurrence = ""
        token = self._peek()
        if token.kind == "punct" and token.text in ("?", "*", "+"):
            occurrence = self._advance().text
        return ast.SequenceType(name, occurrence)


def parse(text: str) -> ast.MainModule:
    """Parse a JSONiq main module (prolog + expression)."""
    return Parser(text).parse_module()


def parse_expression(text: str) -> ast.Expression:
    """Parse a single JSONiq expression (no prolog)."""
    return parse(text).expression
