"""Control-flow and type iterators: if, switch, try-catch, quantifiers,
ranges, string concatenation, instance-of / treat / cast."""

from __future__ import annotations

import datetime
from decimal import Decimal, InvalidOperation
from typing import Iterator, List, Tuple

from repro.items import (
    FALSE,
    NULL,
    TRUE,
    DateItem,
    DecimalItem,
    DoubleItem,
    IntegerItem,
    Item,
    StringItem,
    values_equal,
)
from repro.jsoniq.ast import SequenceType
from repro.jsoniq.errors import CastException, JsoniqException, TypeException
from repro.jsoniq.runtime.base import RuntimeIterator
from repro.jsoniq.runtime.dynamic_context import DynamicContext


class IfIterator(RuntimeIterator):
    def __init__(self, condition: RuntimeIterator, then_branch: RuntimeIterator,
                 else_branch: RuntimeIterator):
        super().__init__([condition, then_branch, else_branch])
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch

    def _pick(self, context: DynamicContext) -> RuntimeIterator:
        if self.condition.effective_boolean_value(context):
            return self.then_branch
        return self.else_branch

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        yield from self._pick(context).iterate(context)

    def is_rdd(self, context: DynamicContext) -> bool:
        return self._pick(context).is_rdd(context)

    def get_rdd(self, context: DynamicContext):
        return self._pick(context).get_rdd(context)


class SwitchIterator(RuntimeIterator):
    """``switch`` compares the subject with each case by value equality."""

    def __init__(self, subject: RuntimeIterator,
                 cases: List[Tuple[List[RuntimeIterator], RuntimeIterator]],
                 default: RuntimeIterator):
        children = [subject]
        for tests, result in cases:
            children.extend(tests)
            children.append(result)
        children.append(default)
        super().__init__(children)
        self.subject = subject
        self.cases = cases
        self.default = default

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        subject = self.subject.evaluate_atomic(context, "switch subject")
        for tests, result in self.cases:
            for test in tests:
                candidate = test.evaluate_atomic(context, "switch case")
                if subject is None and candidate is None:
                    yield from result.iterate(context)
                    return
                if (
                    subject is not None
                    and candidate is not None
                    and values_equal(subject, candidate)
                ):
                    yield from result.iterate(context)
                    return
        yield from self.default.iterate(context)


class TypeswitchIterator(RuntimeIterator):
    """``typeswitch``: first case whose sequence type matches wins; the
    case variable (when present) is bound to the subject sequence."""

    def __init__(self, subject: RuntimeIterator,
                 cases,  # List[(variable|None, SequenceType, iterator)]
                 default_variable, default: RuntimeIterator):
        children = [subject]
        children.extend(result for _, _, result in cases)
        children.append(default)
        super().__init__(children)
        self.subject = subject
        self.cases = cases
        self.default_variable = default_variable
        self.default = default

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        subject = self.subject.materialize(context)
        for variable, sequence_type, result in self.cases:
            if matches_sequence_type(subject, sequence_type):
                yield from self._branch(result, variable, subject, context)
                return
        yield from self._branch(
            self.default, self.default_variable, subject, context
        )

    @staticmethod
    def _branch(result, variable, subject, context):
        if variable:
            inner = context.child()
            inner.bind_shared(variable, subject)
            return result.materialize_local(inner)
        return result.iterate(context)


class TryCatchIterator(RuntimeIterator):
    """``try { ... } catch code|code { ... }`` — dynamic errors only.

    Because evaluation is lazy, the try expression is materialized eagerly
    inside the try scope, as JSONiq requires.
    """

    def __init__(self, try_expr: RuntimeIterator, catch_expr: RuntimeIterator,
                 codes):
        super().__init__([try_expr, catch_expr])
        self.try_expr = try_expr
        self.catch_expr = catch_expr
        self.codes = codes  # None catches everything

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        try:
            items = self.try_expr.materialize(context)
        except JsoniqException as error:
            if self.codes is None or error.code in self.codes:
                yield from self.catch_expr.iterate(context)
                return
            raise
        yield from items


class QuantifiedIterator(RuntimeIterator):
    """``some/every $v in expr (, ...) satisfies condition``."""

    def __init__(self, quantifier: str,
                 bindings: List[Tuple[str, RuntimeIterator]],
                 condition: RuntimeIterator):
        super().__init__([expr for _, expr in bindings] + [condition])
        self.quantifier = quantifier
        self.bindings = bindings
        self.condition = condition

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        result = self._evaluate(context, 0)
        yield TRUE if result else FALSE

    def _evaluate(self, context: DynamicContext, depth: int) -> bool:
        if depth == len(self.bindings):
            return self.condition.effective_boolean_value(context)
        name, expression = self.bindings[depth]
        some = self.quantifier == "some"
        for item in expression.iterate(context):
            inner = context.child()
            inner.bind(name, [item])
            satisfied = self._evaluate(inner, depth + 1)
            if some and satisfied:
                return True
            if not some and not satisfied:
                return False
        return not some


class RangeIterator(RuntimeIterator):
    """``start to end`` — the ascending integer range, empty if start > end."""

    def __init__(self, start: RuntimeIterator, end: RuntimeIterator):
        super().__init__([start, end])
        self.start = start
        self.end = end

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        start = self.start.evaluate_atomic(context, "range start")
        end = self.end.evaluate_atomic(context, "range end")
        if start is None or end is None:
            return
        if not (start.is_numeric and end.is_numeric):
            raise TypeException("range bounds must be numeric")
        for value in range(int(start.value), int(end.value) + 1):
            yield IntegerItem(value)


class StringConcatIterator(RuntimeIterator):
    """``a || b`` — empty operands become empty strings."""

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        pieces = []
        for child in self.children:
            item = child.evaluate_atomic(context, "operand of ||")
            pieces.append("" if item is None else _string_of(item))
        yield StringItem("".join(pieces))


def _string_of(item: Item) -> str:
    if item.is_string:
        return item.value
    if item.is_null:
        return "null"
    return item.serialize().strip('"')


def matches_item_type(item: Item, type_name: str) -> bool:
    """Does one item match an item type name?"""
    if type_name in ("item", "json-item"):
        return True if type_name == "item" else True
    if type_name == "atomic":
        return item.is_atomic
    if type_name == "object":
        return item.is_object
    if type_name == "array":
        return item.is_array
    if type_name == "string":
        return item.is_string
    if type_name == "integer":
        return item.is_integer
    if type_name == "decimal":
        # integer is derived from decimal in the XDM hierarchy
        return item.is_decimal or item.is_integer
    if type_name == "double":
        return item.is_double
    if type_name == "number":
        return item.is_numeric
    if type_name == "boolean":
        return item.is_boolean
    if type_name == "null":
        return item.is_null
    if type_name == "date":
        return item.is_date
    if type_name == "dateTime":
        return item.is_datetime
    if type_name == "time":
        return item.is_time
    if type_name == "duration":
        return item.is_duration
    if type_name == "dayTimeDuration":
        return item.is_day_time_duration
    if type_name == "yearMonthDuration":
        return item.is_year_month_duration
    raise TypeException("unknown item type " + type_name)


def matches_sequence_type(items: List[Item], sequence_type: SequenceType) -> bool:
    occurrence = sequence_type.occurrence
    if occurrence == "()":
        return not items
    if not items:
        return occurrence in ("?", "*")
    if len(items) > 1 and occurrence not in ("*", "+"):
        return False
    return all(
        matches_item_type(item, sequence_type.item_type) for item in items
    )


class InstanceOfIterator(RuntimeIterator):
    def __init__(self, operand: RuntimeIterator, sequence_type: SequenceType):
        super().__init__([operand])
        self.operand = operand
        self.sequence_type = sequence_type

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        items = self.operand.materialize(context)
        yield TRUE if matches_sequence_type(items, self.sequence_type) else FALSE


class TreatIterator(RuntimeIterator):
    def __init__(self, operand: RuntimeIterator, sequence_type: SequenceType):
        super().__init__([operand])
        self.operand = operand
        self.sequence_type = sequence_type

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        items = self.operand.materialize(context)
        if not matches_sequence_type(items, self.sequence_type):
            raise TypeException(
                "sequence does not match type {}".format(self.sequence_type),
            )
        yield from items


def cast_item(item: Item, type_name: str) -> Item:
    """Cast one atomic item to a target atomic type."""
    if not item.is_atomic:
        raise CastException("cannot cast " + item.type_name)
    try:
        if type_name == "string":
            return StringItem(_string_of(item))
        if type_name == "integer":
            if item.is_string:
                return IntegerItem(int(item.value.strip()))
            if item.is_numeric:
                return IntegerItem(int(item.value))
            if item.is_boolean:
                return IntegerItem(1 if item.value else 0)
        if type_name == "decimal":
            if item.is_string:
                return DecimalItem(Decimal(item.value.strip()))
            if item.is_numeric:
                return DecimalItem(Decimal(str(item.value)))
            if item.is_boolean:
                return DecimalItem(Decimal(1 if item.value else 0))
        if type_name == "double":
            if item.is_string:
                return DoubleItem(float(item.value.strip()))
            if item.is_numeric:
                return DoubleItem(float(item.value))
            if item.is_boolean:
                return DoubleItem(1.0 if item.value else 0.0)
        if type_name == "boolean":
            if item.is_boolean:
                return item
            if item.is_string:
                text = item.value.strip()
                if text in ("true", "1"):
                    return TRUE
                if text in ("false", "0"):
                    return FALSE
                raise CastException("cannot cast {!r} to boolean".format(text))
            if item.is_numeric:
                return TRUE if item.value != 0 else FALSE
        if type_name == "date":
            if item.is_date:
                return item
            if item.is_datetime:
                return DateItem(item.value.date())
            if item.is_string:
                return DateItem(datetime.date.fromisoformat(item.value.strip()))
        if type_name == "dateTime":
            from repro.items.temporal import DateTimeItem

            if item.is_datetime:
                return item
            if item.is_date:
                return DateTimeItem(
                    datetime.datetime.combine(item.value, datetime.time())
                )
            if item.is_string:
                return DateTimeItem(
                    datetime.datetime.fromisoformat(item.value.strip())
                )
        if type_name == "time":
            from repro.items.temporal import TimeItem

            if item.is_time:
                return item
            if item.is_datetime:
                return TimeItem(item.value.time())
            if item.is_string:
                return TimeItem(
                    datetime.time.fromisoformat(item.value.strip())
                )
        if type_name in ("duration", "dayTimeDuration", "yearMonthDuration"):
            from repro.items.temporal import duration_from_string

            if item.is_string:
                parsed = duration_from_string(item.value.strip())
            elif item.is_duration:
                parsed = item
            else:
                parsed = None
            if parsed is not None:
                if type_name == "dayTimeDuration" and not (
                    parsed.is_day_time_duration
                ):
                    raise CastException(
                        "not a dayTimeDuration: " + parsed.string_value()
                    )
                if type_name == "yearMonthDuration" and not (
                    parsed.is_year_month_duration
                ):
                    raise CastException(
                        "not a yearMonthDuration: " + parsed.string_value()
                    )
                return parsed
        if type_name == "null":
            if item.is_null:
                return NULL
    except (ValueError, InvalidOperation) as error:
        raise CastException(
            "cannot cast {} to {}: {}".format(item.type_name, type_name, error)
        ) from error
    raise CastException(
        "cannot cast {} to {}".format(item.type_name, type_name)
    )


class CastIterator(RuntimeIterator):
    """``cast as`` and ``castable as``."""

    def __init__(self, operand: RuntimeIterator, type_name: str,
                 allows_empty: bool, castable: bool):
        super().__init__([operand])
        self.operand = operand
        self.type_name = type_name
        self.allows_empty = allows_empty
        self.castable = castable

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        items = self.operand.materialize_local(context, limit=2)
        if self.castable:
            yield TRUE if self._is_castable(items) else FALSE
            return
        if not items:
            if self.allows_empty:
                return
            raise CastException("cannot cast the empty sequence")
        if len(items) > 1:
            raise TypeException("cast requires at most one item")
        yield cast_item(items[0], self.type_name)

    def _is_castable(self, items: List[Item]) -> bool:
        if not items:
            return self.allows_empty
        if len(items) > 1:
            return False
        try:
            cast_item(items[0], self.type_name)
            return True
        except JsoniqException:
            return False
