"""Arithmetic iterators with JSONiq numeric promotion.

``integer op integer`` stays integer (except ``div``, which produces a
decimal), mixing in a decimal promotes to decimal, mixing in a double
promotes to double.  An empty operand makes the whole result empty; a
non-numeric operand is a type error.
"""

from __future__ import annotations

from decimal import Decimal, InvalidOperation
from typing import Iterator, Optional

from repro.items import (
    DecimalItem,
    DoubleItem,
    IntegerItem,
    Item,
    make_numeric,
)
from repro.items.atomics import promote_pair
from repro.jsoniq.errors import DynamicException, TypeException
from repro.jsoniq.runtime.base import RuntimeIterator
from repro.jsoniq.runtime.dynamic_context import DynamicContext


def _numeric_operand(
    iterator: RuntimeIterator, context: DynamicContext, op: str
) -> Optional[Item]:
    item = iterator.evaluate_atomic(context, "operand of " + op)
    if item is None:
        return None
    if not item.is_numeric:
        raise TypeException(
            "operand of {} must be numeric, got {}".format(op, item.type_name)
        )
    return item


class BinaryArithmeticIterator(RuntimeIterator):
    """``+ - * div idiv mod`` — numeric, plus the temporal combinations
    (date/dateTime/time ± duration, dateTime − dateTime, duration scaling)."""

    def __init__(self, op: str, left: RuntimeIterator, right: RuntimeIterator,
                 static_numeric: bool = False):
        super().__init__([left, right])
        self.op = op
        self.left = left
        self.right = right
        #: Set by the compiler when static inference proved both operands
        #: are single numerics — enables the checkless fast path.
        self.static_numeric = static_numeric

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if self.static_numeric:
            left = self.left.evaluate_single(context)
            right = self.right.evaluate_single(context)
            if left is None or right is None:
                return
            yield compute_arithmetic(self.op, left, right)
            return
        left = self.left.evaluate_atomic(context, "operand of " + self.op)
        right = self.right.evaluate_atomic(context, "operand of " + self.op)
        if left is None or right is None:
            return
        if _is_temporal(left) or _is_temporal(right):
            yield compute_temporal_arithmetic(self.op, left, right)
            return
        for operand in (left, right):
            if not operand.is_numeric:
                raise TypeException(
                    "operand of {} must be numeric, got {}".format(
                        self.op, operand.type_name
                    )
                )
        yield compute_arithmetic(self.op, left, right)


def compute_arithmetic(op: str, left: Item, right: Item) -> Item:
    """Apply one arithmetic operator to two numeric items."""
    lhs, rhs, family = promote_pair(left, right)
    if op == "+":
        return make_numeric(lhs + rhs)
    if op == "-":
        return make_numeric(lhs - rhs)
    if op == "*":
        return make_numeric(lhs * rhs)
    if op == "div":
        if family == "double":
            if rhs == 0:
                return DoubleItem(
                    float("nan") if lhs == 0 else
                    float("inf") if lhs > 0 else float("-inf")
                )
            return DoubleItem(lhs / rhs)
        if rhs == 0:
            raise DynamicException("division by zero", code="FOAR0001")
        try:
            return DecimalItem(Decimal(lhs) / Decimal(rhs))
        except InvalidOperation as error:
            raise DynamicException(str(error), code="FOAR0002") from error
    if op == "idiv":
        if rhs == 0:
            raise DynamicException("integer division by zero", code="FOAR0001")
        return IntegerItem(_truncating_divide(lhs, rhs))
    if op == "mod":
        if rhs == 0:
            if family == "double":
                return DoubleItem(float("nan"))
            raise DynamicException("modulus by zero", code="FOAR0001")
        # XQuery mod keeps the sign of the dividend (unlike Python's %).
        remainder = lhs - rhs * _truncating_divide(lhs, rhs)
        return make_numeric(remainder)
    raise ValueError("unknown arithmetic operator " + op)


def _is_temporal(item: Item) -> bool:
    return item.is_date or item.is_datetime or item.is_time or item.is_duration


def compute_temporal_arithmetic(op: str, left: Item, right: Item) -> Item:
    """The XDM temporal operator table (the supported slice)."""
    import datetime

    from repro.items import DateItem
    from repro.items.temporal import (
        DateTimeItem,
        DayTimeDurationItem,
        TimeItem,
        YearMonthDurationItem,
    )

    def add_months(date_value, months: int):
        month_index = date_value.month - 1 + months
        year = date_value.year + month_index // 12
        month = month_index % 12 + 1
        import calendar

        day = min(date_value.day, calendar.monthrange(year, month)[1])
        return date_value.replace(year=year, month=month, day=day)

    # date/dateTime/time  ±  duration
    if (left.is_date or left.is_datetime or left.is_time) and right.is_duration:
        sign = 1 if op == "+" else -1 if op == "-" else None
        if sign is None:
            raise TypeException(
                "cannot apply {} to {} and {}".format(
                    op, left.type_name, right.type_name
                )
            )
        if right.is_year_month_duration:
            if left.is_time:
                raise TypeException("cannot add months to a time")
            shifted = add_months(left.value, sign * right.months)
            return DateItem(shifted) if left.is_date else DateTimeItem(shifted)
        delta = datetime.timedelta(seconds=sign * right.seconds)
        if left.is_date:
            return DateItem(
                (datetime.datetime.combine(left.value, datetime.time())
                 + delta).date()
            )
        if left.is_datetime:
            return DateTimeItem(left.value + delta)
        anchor = datetime.datetime.combine(
            datetime.date(2000, 1, 1), left.value
        )
        return TimeItem((anchor + delta).time())
    # duration + date/dateTime (commutative +)
    if op == "+" and left.is_duration and (
        right.is_date or right.is_datetime or right.is_time
    ):
        return compute_temporal_arithmetic("+", right, left)
    # dateTime - dateTime, date - date, time - time
    if op == "-" and left.is_datetime and right.is_datetime:
        return DayTimeDurationItem((left.value - right.value).total_seconds())
    if op == "-" and left.is_date and right.is_date:
        return DayTimeDurationItem(
            (left.value - right.value).total_seconds()
        )
    if op == "-" and left.is_time and right.is_time:
        return DayTimeDurationItem(left.sort_key() - right.sort_key())
    # duration ± duration (same family)
    if left.is_day_time_duration and right.is_day_time_duration:
        if op == "+":
            return DayTimeDurationItem(left.seconds + right.seconds)
        if op == "-":
            return DayTimeDurationItem(left.seconds - right.seconds)
        if op == "div":
            if right.seconds == 0:
                raise DynamicException("division by zero", code="FOAR0001")
            return DecimalItem(
                Decimal(str(left.seconds)) / Decimal(str(right.seconds))
            )
    if left.is_year_month_duration and right.is_year_month_duration:
        if op == "+":
            return YearMonthDurationItem(left.months + right.months)
        if op == "-":
            return YearMonthDurationItem(left.months - right.months)
        if op == "div":
            if right.months == 0:
                raise DynamicException("division by zero", code="FOAR0001")
            return DecimalItem(Decimal(left.months) / Decimal(right.months))
    # duration * number / duration div number (and commutative *)
    if left.is_duration and right.is_numeric:
        factor = float(right.value)
        if op == "*":
            scaled = factor
        elif op == "div":
            if factor == 0:
                raise DynamicException("division by zero", code="FOAR0001")
            scaled = 1.0 / factor
        else:
            scaled = None
        if scaled is not None:
            if left.is_day_time_duration:
                return DayTimeDurationItem(left.seconds * scaled)
            return YearMonthDurationItem(round(left.months * scaled))
    if op == "*" and left.is_numeric and right.is_duration:
        return compute_temporal_arithmetic("*", right, left)
    raise TypeException(
        "cannot apply {} to {} and {}".format(
            op, left.type_name, right.type_name
        )
    )


def _truncating_divide(lhs, rhs) -> int:
    """Integer division truncating toward zero (XQuery ``idiv``), exact
    for arbitrarily large integers."""
    if isinstance(lhs, int) and isinstance(rhs, int):
        quotient = abs(lhs) // abs(rhs)
        return quotient if (lhs < 0) == (rhs < 0) else -quotient
    return int(lhs / rhs)


class UnarySignIterator(RuntimeIterator):
    """Unary ``-`` and ``+``."""

    def __init__(self, op: str, operand: RuntimeIterator):
        super().__init__([operand])
        self.op = op
        self.operand = operand

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        item = _numeric_operand(self.operand, context, "unary " + self.op)
        if item is None:
            return
        if self.op == "-":
            yield make_numeric(-item.value)
        else:
            yield item
