"""FLWOR clause iterators.

Each clause consumes a tuple stream from its input clause and produces a
new tuple stream, through two interchangeable APIs (paper, Section 5.8):

* a **local** pull API — ``tuple_stream(context)``;
* a **DataFrame** API — ``get_dataframe(context)`` — available when the
  whole upstream chain is DataFrame-capable, in which case each clause
  applies the relational mapping of the paper's Sections 4.4–4.10.

``sql_template()`` returns the Spark SQL shape from the paper, used by
the Figure 9 tests and benchmarks to assert the mapping.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.items import (
    Item,
    check_sortable,
    grouping_key,
    ordering_tuple,
)
from repro.jsoniq.errors import TypeException
from repro.jsoniq.runtime.base import RuntimeIterator, _cancel_of, _obs_of
from repro.jsoniq.runtime.dynamic_context import DynamicContext
from repro.jsoniq.runtime.flwor.tuples import CountedSequence, FlworTuple
from repro.spark.column import col, explode, row_udf
from repro.spark.dataframe import AggCall, DataFrame
from repro.spark.types import StructField, StructType, infer_type


class ClauseIterator:
    """Base of all clause iterators (returns tuple streams)."""

    #: True when this clause can emit *more* tuples than it consumes
    #: (``for``, ``window``).  Cancellation guards sit on the consumer
    #: side of expanding producers only: a 1:1 clause (let/where/
    #: order/count) re-yields tuples that already crossed a guarded
    #: boundary upstream, so guarding it again would just re-check the
    #: same tuples while taxing every clause hop with a generator.
    expands = False

    def __init__(self, input_clause: Optional["ClauseIterator"]):
        self.input_clause = input_clause

    # -- Local API -------------------------------------------------------------
    def tuple_stream(self, context: DynamicContext) -> Iterator[FlworTuple]:
        raise NotImplementedError

    # -- DataFrame API ------------------------------------------------------------
    def supports_dataframe(self, context: DynamicContext) -> bool:
        """True when this clause can emit its tuple stream as a DataFrame."""
        if self.input_clause is None:
            return False
        return self.input_clause.supports_dataframe(context)

    def get_dataframe(self, context: DynamicContext) -> DataFrame:
        raise NotImplementedError

    def sql_template(self) -> str:
        """The paper's Spark SQL shape for this clause."""
        raise NotImplementedError

    def spark_mapping(self) -> str:
        """The RDD-level mapping of the paper's Figure 9."""
        raise NotImplementedError

    # -- Helpers ---------------------------------------------------------------------
    def _input_tuples(self, context: DynamicContext) -> Iterator[FlworTuple]:
        if self.input_clause is None:
            yield FlworTuple()
            return
        stream = self.input_clause.tuple_stream(context)
        obs = _obs_of(context)
        cancel = _cancel_of(context)
        if cancel is not None and self.input_clause.expands:
            # The FLWOR clause-boundary check, placed where tuple
            # counts can grow: any unbounded stream was emitted by an
            # expanding clause, so guarding expanders' consumers (plus
            # the return clause) stops a cancelled request within one
            # stride of tuples without taxing 1:1 clause hops.
            stream = cancel.guard(stream)
        if obs is None:
            yield from stream
            return
        # Profiled run: count the tuples flowing into this clause.
        counter = obs.metrics.counter(
            "rumble.clause.tuples_in", clause=type(self).__name__
        )
        for tuple_ in stream:
            counter.inc()
            yield tuple_

    @staticmethod
    def _frame(session, rdd, variables: List[str]) -> DataFrame:
        schema = StructType(
            [StructField(name, infer_type(None)) for name in variables]
        )
        return DataFrame(session, rdd, schema)


def _evaluate_in_tuple(
    expression: RuntimeIterator,
    tuple_: FlworTuple,
    context: DynamicContext,
) -> List[Item]:
    return expression.materialize_local(tuple_.to_context(context))


def _row_context(
    context: DynamicContext, row: Dict[str, object]
) -> DynamicContext:
    """Rebuild a dynamic context straight from a DataFrame row (the hot
    path of every EVALUATE_EXPRESSION call), skipping the FlworTuple
    intermediate: helper (``#``-prefixed) columns are not variables."""
    inner = context.child()
    for name, value in row.items():
        if name[0] != "#":
            if isinstance(value, CountedSequence):
                inner.bind_counted(name, value)
            else:
                inner.bind_shared(name, value)
    return inner


#: Compile-time fast paths for ``$var.key`` extraction and simple
#: comparison predicates.  On by default; the ablation benchmark
#: (benchmarks/test_ablation_optimizations.py) toggles this off to measure
#: what the generic EVALUATE_EXPRESSION path costs.
FAST_PATHS_ENABLED = True


def _make_fast_extractor(expression: RuntimeIterator):
    """A compiled fast path for ``$var.key`` expressions.

    Grouping and ordering keys are overwhelmingly single constant-key
    lookups on a clause variable; recognizing the shape at compile time
    lets the hot loops skip the dynamic-context / iterator machinery.
    Returns ``None`` when the expression is not of that shape.
    """
    from repro.jsoniq.runtime.navigation import ObjectLookupIterator
    from repro.jsoniq.runtime.primary import VariableIterator

    if not FAST_PATHS_ENABLED:
        return None
    if not isinstance(expression, ObjectLookupIterator):
        return None
    if expression._constant_key is None:
        return None
    if not isinstance(expression.source, VariableIterator):
        return None
    variable = expression.source.name
    key = expression._constant_key

    def extract(row: Dict[str, object]) -> List[Item]:
        items = row.get(variable)
        if not items:
            return []
        out: List[Item] = []
        for item in items:
            if item.is_object:
                value = item.get_item(key)
                if value is not None:
                    out.append(value)
        return out

    return extract


def _make_fast_predicate(condition: RuntimeIterator):
    """A compiled fast path for ``<key-expr> <cmp> <key-expr|literal>``
    where-conditions — the predicate shape of every selection in the
    paper's workloads.  Returns ``None`` when the condition is not of
    that shape (the generic EVALUATE_EXPRESSION path handles it)."""
    from repro.jsoniq.runtime.comparison import (
        ComparisonIterator,
        _GENERAL_TO_VALUE,
        _VALUE_OPS,
        _apply,
    )
    from repro.jsoniq.runtime.primary import LiteralIterator

    if not FAST_PATHS_ENABLED or not isinstance(condition, ComparisonIterator):
        return None

    def operand_reader(expression):
        fast = _make_fast_extractor(expression)
        if fast is not None:
            return fast
        if isinstance(expression, LiteralIterator):
            constant = [expression.item]
            return lambda row: constant
        return None

    left = operand_reader(condition.left)
    right = operand_reader(condition.right)
    if left is None or right is None:
        return None
    op = condition.op
    value_comparison = op in _VALUE_OPS
    value_op = op if value_comparison else _GENERAL_TO_VALUE[op]

    def predicate(row: Dict[str, object]) -> bool:
        left_items = left(row)
        right_items = right(row)
        if value_comparison and (len(left_items) > 1 or len(right_items) > 1):
            raise TypeException(
                "comparison operand has more than one item"
            )
        for mine in left_items:
            for theirs in right_items:
                if _apply(value_op, mine, theirs):
                    return True
        return False

    return predicate


def _row_evaluator(expression: RuntimeIterator, context: DynamicContext):
    """The EVALUATE_EXPRESSION(a, b, c, ...) UDF of the paper's Section 4:
    rebuild a dynamic context from the row's variable columns and evaluate
    the JSONiq expression with the iterator's local API."""

    def evaluate(row: Dict[str, object]) -> List[Item]:
        return expression.materialize_local(_row_context(context, row))

    return evaluate


class ForClauseIterator(ClauseIterator):
    """``for $v in expr`` — Section 4.4.

    As the first clause it creates the initial DataFrame (in parallel when
    the source expression is an RDD); chained, it is an extended projection
    followed by ``EXPLODE``.
    """

    expands = True

    #: Attached by :mod:`repro.jsoniq.runtime.flwor.pushdown` when this is
    #: the leading clause of a pushdown-eligible chain.
    pushdown_plan = None
    #: Attached by :mod:`repro.jsoniq.runtime.flwor.columnar` alongside the
    #: pushdown plan (the columnar decision record for explain + kernels).
    columnar_plan = None
    #: Attached by :mod:`repro.jsoniq.codegen` alongside the pushdown plan
    #: (the whole-stage codegen decision record for explain + the stage).
    codegen_plan = None

    def __init__(
        self,
        input_clause: Optional[ClauseIterator],
        variable: str,
        expression: RuntimeIterator,
        allowing_empty: bool = False,
        position_variable: Optional[str] = None,
    ):
        super().__init__(input_clause)
        self.variable = variable
        self.expression = expression
        self.allowing_empty = allowing_empty
        self.position_variable = position_variable

    def tuple_stream(self, context: DynamicContext) -> Iterator[FlworTuple]:
        for tuple_ in self._input_tuples(context):
            inner = tuple_.to_context(context)
            produced = False
            position = 0
            for item in self.expression.iterate(inner):
                produced = True
                position += 1
                out = tuple_.extend(self.variable, [item])
                if self.position_variable:
                    from repro.items import IntegerItem

                    out = out.extend(
                        self.position_variable, [IntegerItem(position)]
                    )
                yield out
            if not produced and self.allowing_empty:
                out = tuple_.extend(self.variable, [])
                if self.position_variable:
                    from repro.items import IntegerItem

                    out = out.extend(self.position_variable, [IntegerItem(0)])
                yield out

    def supports_dataframe(self, context: DynamicContext) -> bool:
        if self.position_variable:
            # The paper defers positional variables to the count clause.
            return False
        if self.input_clause is None:
            return self.expression.is_rdd(context)
        return self.input_clause.supports_dataframe(context)

    @staticmethod
    def _columnar_on(runtime) -> bool:
        from repro.core.config import columnar_enabled

        return columnar_enabled(runtime.config)

    def get_dataframe(self, context: DynamicContext) -> DataFrame:
        runtime = context.runtime
        obs = _obs_of(context)
        if self.input_clause is None:
            plan = self.pushdown_plan
            if (
                plan is not None
                and plan.predicates
                and getattr(runtime.config, "pushdown", True)
                and hasattr(self.expression, "get_rdd_columnar")
                and self._columnar_on(runtime)
            ):
                # The masked batch scan: predicates run as per-column
                # masks over shredded batches; only surviving rows box
                # at this boundary (verified ones pre-proved, exactly
                # like the pushed row scan's pushdown_verified marks).
                batches = self.expression.get_rdd_columnar(context, plan)

                def unbox(masked_batches):
                    for masked in masked_batches:
                        yield from masked.iter_boxed()

                unbox._columnar_label = "unbox[${}]".format(self.variable)
                rdd = batches.map_partitions(unbox)
            elif (
                plan is not None
                and getattr(runtime.config, "pushdown", True)
                and hasattr(self.expression, "get_rdd_pushed")
            ):
                rdd = self.expression.get_rdd_pushed(context, plan)
            else:
                rdd = self.expression.get_rdd(context)
            variable = self.variable
            if obs is not None:
                scanned = obs.metrics.counter(
                    "rumble.clause.rows_out", clause="ForClauseIterator",
                    source=type(self.expression).__name__,
                )

                def bind(item):
                    scanned.inc()
                    return {variable: [item]}

                rows = rdd.map(bind)
            else:
                rows = rdd.map(lambda item: {variable: [item]})
            return self._frame(runtime.spark, rows, [variable])
        frame = self.input_clause.get_dataframe(context)
        evaluator = _row_evaluator(self.expression, context)
        allowing_empty = self.allowing_empty

        def fan_out(row: Dict[str, object]) -> List[List[Item]]:
            items = evaluator(row)
            if not items and allowing_empty:
                return [[]]
            return [[item] for item in items]

        if obs is not None:
            inner_fan_out = fan_out
            fanned = obs.metrics.counter(
                "rumble.clause.rows_out", clause="ForClauseIterator"
            )

            def fan_out(row: Dict[str, object]) -> List[List[Item]]:
                out = inner_fan_out(row)
                fanned.inc(len(out))
                return out

        existing = [col(name) for name in frame.columns if name != self.variable]
        exploded = explode(row_udf(fan_out, name="EVALUATE_EXPRESSION"))
        return frame.select(*existing, exploded.alias(self.variable))

    def sql_template(self) -> str:
        if self.input_clause is None:
            return "CREATE DATAFRAME ({}) FROM RDD".format(self.variable)
        return (
            "SELECT *, EXPLODE(EVALUATE_EXPRESSION(*)) AS {} FROM input"
            .format(self.variable)
        )

    def spark_mapping(self) -> str:
        return "flatMap()"


class LetClauseIterator(ClauseIterator):
    """``let $v := expr`` — Section 4.5: the same extended projection
    without the EXPLODE call."""

    def __init__(
        self,
        input_clause: Optional[ClauseIterator],
        variable: str,
        expression: RuntimeIterator,
    ):
        super().__init__(input_clause)
        self.variable = variable
        self.expression = expression

    def tuple_stream(self, context: DynamicContext) -> Iterator[FlworTuple]:
        from repro.jsoniq.runtime.flwor.tuples import RddSequence

        if self.input_clause is None and self.expression.is_rdd(context):
            # A leading let stays local (paper, Section 4.5) but the
            # binding itself can remain an RDD, so downstream aggregates
            # still run as Spark actions (Section 5.5).
            yield FlworTuple().extend(
                self.variable, RddSequence(self.expression.get_rdd(context))
            )
            return
        for tuple_ in self._input_tuples(context):
            items = _evaluate_in_tuple(self.expression, tuple_, context)
            yield tuple_.extend(self.variable, items)

    def supports_dataframe(self, context: DynamicContext) -> bool:
        # A leading let stays local (paper, Section 4.5).
        if self.input_clause is None:
            return False
        return self.input_clause.supports_dataframe(context)

    def get_dataframe(self, context: DynamicContext) -> DataFrame:
        frame = self.input_clause.get_dataframe(context)
        evaluator = _row_evaluator(self.expression, context)
        return frame.with_column(
            self.variable, row_udf(evaluator, name="EVALUATE_EXPRESSION")
        )

    def sql_template(self) -> str:
        return "SELECT *, EVALUATE_EXPRESSION(*) AS {} FROM input".format(
            self.variable
        )

    def spark_mapping(self) -> str:
        return "map()"


class WindowClauseIterator(ClauseIterator):
    """``for tumbling|sliding window $w in expr start ... end ...`` —
    XQuery 3.0 window semantics (the paper's future-work item).

    Windows are computed locally (the paper defers distributed windows
    to streaming platforms), so a FLWOR containing a window clause runs
    on the pull-based path.
    """

    expands = True

    def __init__(
        self,
        input_clause: Optional[ClauseIterator],
        kind: str,
        variable: str,
        expression: RuntimeIterator,
        start_vars,          # ast.WindowVars
        start_when: RuntimeIterator,
        end_vars=None,       # ast.WindowVars | None
        end_when: Optional[RuntimeIterator] = None,
        end_only: bool = False,
    ):
        super().__init__(input_clause)
        self.kind = kind
        self.variable = variable
        self.expression = expression
        self.start_vars = start_vars
        self.start_when = start_when
        self.end_vars = end_vars
        self.end_when = end_when
        self.end_only = end_only

    def supports_dataframe(self, context: DynamicContext) -> bool:
        return False

    # -- Boundary conditions ---------------------------------------------------
    @staticmethod
    def _bind_boundary(context, variables, items, index: int):
        from repro.items import IntegerItem

        scope = context.child()
        if variables.current:
            scope.bind_shared(variables.current, [items[index]])
        if variables.position:
            scope.bind_shared(variables.position, [IntegerItem(index + 1)])
        if variables.previous:
            scope.bind_shared(
                variables.previous,
                [items[index - 1]] if index > 0 else [],
            )
        if variables.next:
            scope.bind_shared(
                variables.next,
                [items[index + 1]] if index + 1 < len(items) else [],
            )
        return scope

    def _start_scope(self, context, items, index: int):
        return self._bind_boundary(context, self.start_vars, items, index)

    def _starts(self, items, context) -> List[int]:
        return [
            index for index in range(len(items))
            if self.start_when.effective_boolean_value(
                self._start_scope(context, items, index)
            )
        ]

    def _find_end(self, items, start_scope, start: int) -> Optional[int]:
        """First end position >= start; the end condition's scope chains
        below the start condition's bindings, as the XQuery spec says."""
        for index in range(start, len(items)):
            if self.end_when.effective_boolean_value(
                self._bind_boundary(start_scope, self.end_vars, items, index)
            ):
                return index
        return None

    def _windows(self, items, context):
        """Yield (start, end) index pairs per the XQuery window rules."""
        starts = self._starts(items, context)
        if self.kind == "sliding":
            for start in starts:
                scope = self._start_scope(context, items, start)
                end = self._find_end(items, scope, start)
                if end is None:
                    if not self.end_only:
                        yield (start, len(items) - 1)
                else:
                    yield (start, end)
            return
        # Tumbling: windows never overlap; a start inside an open window
        # is ignored.
        position = 0
        start_set = set(starts)
        while position < len(items):
            if position not in start_set:
                position += 1
                continue
            if self.end_when is not None:
                scope = self._start_scope(context, items, position)
                end = self._find_end(items, scope, position)
                if end is None:
                    if not self.end_only:
                        yield (position, len(items) - 1)
                    return
                yield (position, end)
                position = end + 1
            else:
                # Ends right before the next start, or at the sequence end.
                next_start = next(
                    (s for s in starts if s > position), len(items)
                )
                yield (position, next_start - 1)
                position = next_start

    def tuple_stream(self, context: DynamicContext) -> Iterator[FlworTuple]:
        for tuple_ in self._input_tuples(context):
            inner = tuple_.to_context(context)
            items = self.expression.materialize(inner)
            for start, end in self._windows(items, inner):
                out = tuple_.extend(self.variable, items[start:end + 1])
                out = self._extend_boundary(
                    out, self.start_vars, items, start
                )
                if self.end_vars is not None:
                    out = self._extend_boundary(
                        out, self.end_vars, items, end
                    )
                yield out

    @staticmethod
    def _extend_boundary(tuple_, variables, items, index: int):
        from repro.items import IntegerItem

        if variables.current:
            tuple_ = tuple_.extend(variables.current, [items[index]])
        if variables.position:
            tuple_ = tuple_.extend(
                variables.position, [IntegerItem(index + 1)]
            )
        if variables.previous:
            tuple_ = tuple_.extend(
                variables.previous,
                [items[index - 1]] if index > 0 else [],
            )
        if variables.next:
            tuple_ = tuple_.extend(
                variables.next,
                [items[index + 1]] if index + 1 < len(items) else [],
            )
        return tuple_

    def sql_template(self) -> str:
        return "-- window clauses evaluate locally (streaming future work)"

    def spark_mapping(self) -> str:
        return "local evaluation"


class WhereClauseIterator(ClauseIterator):
    """``where expr`` — Section 4.6: a selection."""

    #: Attached by :mod:`repro.jsoniq.runtime.flwor.pushdown` when this
    #: clause's condition was compiled into a pushed scan predicate:
    #: rows the scan marked ``pushdown_verified`` (every pushed
    #: predicate returned a definite True) skip re-evaluation.
    pushdown_plan = None

    def __init__(self, input_clause: ClauseIterator,
                 condition: RuntimeIterator):
        super().__init__(input_clause)
        self.condition = condition

    def tuple_stream(self, context: DynamicContext) -> Iterator[FlworTuple]:
        for tuple_ in self._input_tuples(context):
            if self.condition.effective_boolean_value(
                tuple_.to_context(context)
            ):
                yield tuple_

    def get_dataframe(self, context: DynamicContext) -> DataFrame:
        frame = self.input_clause.get_dataframe(context)
        condition = self.condition
        predicate = _make_fast_predicate(condition)
        if predicate is None:
            def predicate(row: Dict[str, object]) -> bool:
                return condition.effective_boolean_value(
                    _row_context(context, row)
                )

        plan = self.pushdown_plan
        if plan is not None and getattr(
            context.runtime.config, "pushdown", True
        ):
            variable = plan.variable
            checked = predicate

            def predicate(row: Dict[str, object]) -> bool:
                items = row.get(variable)
                if (
                    items is not None
                    and len(items) == 1
                    and getattr(items[0], "pushdown_verified", False)
                ):
                    return True
                return checked(row)

        obs = _obs_of(context)
        if obs is not None:
            inner_predicate = predicate
            rows_in = obs.metrics.counter(
                "rumble.clause.rows_in", clause="WhereClauseIterator"
            )
            rows_out = obs.metrics.counter(
                "rumble.clause.rows_out", clause="WhereClauseIterator"
            )

            def predicate(row: Dict[str, object]) -> bool:
                rows_in.inc()
                selected = inner_predicate(row)
                if selected:
                    rows_out.inc()
                return selected

        return frame.where(row_udf(predicate, name="EVALUATE_EXPRESSION"))

    def sql_template(self) -> str:
        return "SELECT * FROM input WHERE EVALUATE_EXPRESSION(*)"

    def spark_mapping(self) -> str:
        return "filter(condition)"


#: How a non-grouping variable is consumed downstream of a group-by.
USAGE_MATERIALIZE = "materialize"
USAGE_COUNT_ONLY = "count"
USAGE_UNUSED = "unused"


class GroupByClauseIterator(ClauseIterator):
    """``group by $k (:= expr)?, ...`` — Section 4.7.

    Grouping keys are encoded into three native columns each (type code,
    string, double) so the underlying engine groups without looking at
    items; non-grouping variables are materialized into concatenated
    sequences by the SEQUENCE() aggregation — or by COUNT()/nothing when
    the usage analysis allows (``variable_usage``).
    """

    #: Attached by :mod:`repro.jsoniq.runtime.flwor.columnar` when this
    #: group-by can pre-aggregate masked batches into partial rows.
    columnar_kernel = None

    def __init__(
        self,
        input_clause: ClauseIterator,
        keys: List[Tuple[str, Optional[RuntimeIterator]]],
        variable_usage: Optional[Dict[str, str]] = None,
    ):
        super().__init__(input_clause)
        self.keys = keys
        #: non-grouping variable name -> USAGE_* (default: materialize)
        self.variable_usage = variable_usage or {}

    def _key_names(self) -> List[str]:
        return [name for name, _ in self.keys]

    def _bind_keys(
        self, tuple_: FlworTuple, context: DynamicContext
    ) -> FlworTuple:
        """Bind ``$k := expr`` keys; verify every key is <= 1 atomic."""
        for name, expression in self.keys:
            if expression is not None:
                items = _evaluate_in_tuple(expression, tuple_, context)
                tuple_ = tuple_.extend(name, items)
            items = tuple_.get(name)
            if len(items) > 1:
                raise TypeException(
                    "grouping variable ${} has more than one item".format(name)
                )
            if items and not items[0].is_atomic:
                raise TypeException(
                    "grouping variable ${} is not atomic ({})".format(
                        name, items[0].type_name
                    )
                )
        return tuple_

    def _grouping_key(self, tuple_: FlworTuple):
        parts = []
        for name, _ in self.keys:
            items = tuple_.get(name)
            parts.append(grouping_key(items[0] if items else None))
        return tuple(parts)

    def _merge_group(self, members: List[FlworTuple]) -> FlworTuple:
        key_names = set(self._key_names())
        first = members[0]
        merged: Dict[str, object] = {}
        for name in first.variables():
            if name in key_names:
                merged[name] = first.get(name)
                continue
            usage = self.variable_usage.get(name, USAGE_MATERIALIZE)
            if usage == USAGE_UNUSED:
                continue
            if usage == USAGE_COUNT_ONLY:
                merged[name] = CountedSequence(
                    sum(len(member.get(name)) for member in members)
                )
            else:
                merged[name] = [
                    item
                    for member in members
                    for item in member.get(name)
                ]
        return FlworTuple(merged)

    def tuple_stream(self, context: DynamicContext) -> Iterator[FlworTuple]:
        groups: Dict[tuple, List[FlworTuple]] = {}
        for tuple_ in self._input_tuples(context):
            tuple_ = self._bind_keys(tuple_, context)
            groups.setdefault(self._grouping_key(tuple_), []).append(tuple_)
        # JSONiq leaves group order undefined; emitting groups in key
        # order makes local and distributed execution agree exactly.
        for _, members in sorted(groups.items(), key=lambda kv: kv[0]):
            yield self._merge_group(members)

    def get_dataframe(self, context: DynamicContext) -> DataFrame:
        key_names = self._key_names()
        kernel = self.columnar_kernel
        if kernel is not None:
            # The columnar group-by count kernel: partial rows straight
            # from masked batches (one per partition and key, counts
            # pre-aggregated), same columns the reference ``encode``
            # emits — the group/aggregate/order machinery below merges
            # them unchanged.  None = gate closed, take the row path.
            encoded = kernel.partial_rows(context)
            if encoded is not None:
                return self._aggregate_encoded(
                    context, encoded, [kernel.cplan.plan.variable],
                    key_names,
                )
        frame = self.input_clause.get_dataframe(context)

        # Extended projection: bind fresh keys, then the three native
        # columns per grouping variable (pure driver-side Python, as the
        # paper notes the column creation is done "in pure Java").
        keys = [
            (name, expression, _make_fast_extractor(expression)
             if expression is not None else None)
            for name, expression in self.keys
        ]
        key_name_set = set(key_names)
        usage = self.variable_usage

        def encode(row: Dict[str, object]) -> List[Dict[str, object]]:
            inner = None
            out = {}
            # Map-side pruning and partial aggregation: unused variables
            # never enter the shuffle; count-only ones travel as lengths.
            for name, value in row.items():
                if name in key_name_set:
                    out[name] = value
                    continue
                kind = usage.get(name, USAGE_MATERIALIZE)
                if kind == USAGE_UNUSED:
                    continue
                if kind == USAGE_COUNT_ONLY:
                    out[name] = CountedSequence(len(value))
                else:
                    out[name] = value
            for name, expression, fast in keys:
                if fast is not None:
                    items = fast(row)
                    out[name] = items
                elif expression is not None:
                    if inner is None:
                        inner = _row_context(context, row)
                    items = expression.materialize_local(inner)
                    out[name] = items
                    inner.bind_shared(name, items)
                else:
                    items = out.get(name, [])
                if len(items) > 1:
                    raise TypeException(
                        "grouping variable ${} has more than one item"
                        .format(name)
                    )
                if items and not items[0].is_atomic:
                    raise TypeException(
                        "grouping variable ${} is not atomic ({})".format(
                            name, items[0].type_name
                        )
                    )
                code, text, number = grouping_key(
                    items[0] if items else None
                )
                out["#" + name + "#t"] = code
                out["#" + name + "#s"] = text
                out["#" + name + "#n"] = number
            return [out]

        encoded = frame.rdd.flat_map(encode)
        return self._aggregate_encoded(
            context, encoded, list(frame.columns), key_names
        )

    def _aggregate_encoded(
        self, context, encoded, source_columns, key_names
    ) -> DataFrame:
        """Group, aggregate and order pre-encoded rows (shared by the
        reference encode path and the columnar kernel)."""
        variables = [
            name
            for name in set(
                list(source_columns) + key_names
            )
        ]
        native = []
        for name in key_names:
            native += ["#" + name + "#t", "#" + name + "#s", "#" + name + "#n"]
        working = self._frame(
            context.runtime.spark, encoded, variables + native
        )

        aggregates = []
        for name in key_names:
            aggregates.append(
                AggCall(
                    "ARRAY_DISTINCT", col(name),
                    lambda values: values[0], alias=name,
                )
            )
        for name in source_columns:
            if name in key_names:
                continue
            kind = self.variable_usage.get(name, USAGE_MATERIALIZE)
            if kind == USAGE_UNUSED:
                continue
            if kind == USAGE_COUNT_ONLY:
                aggregates.append(
                    AggCall(
                        "COUNT", col(name),
                        lambda values: CountedSequence(
                            sum(len(value) for value in values)
                        ),
                        alias=name,
                    )
                )
            else:
                aggregates.append(
                    AggCall(
                        "SEQUENCE", col(name),
                        lambda values: [
                            item for value in values for item in value
                        ],
                        alias=name,
                    )
                )
        grouped = working.group_by(*[col(name) for name in native]).agg(
            *aggregates
        )
        # Same deterministic group order as the local path (sorted by the
        # native key encoding) before the helper columns are dropped.
        ordered = grouped.order_by(*[col(name) for name in native])
        return ordered.drop(*native)

    def sql_template(self) -> str:
        key_names = self._key_names()
        native = ", ".join(
            "{0}1, {0}2, {0}3".format(name) for name in key_names
        )
        selected = []
        for name in key_names:
            selected.append("ARRAY_DISTINCT({})".format(name))
        for name, usage in sorted(self.variable_usage.items()):
            if usage == USAGE_COUNT_ONLY:
                selected.append("COUNT({})".format(name))
            elif usage == USAGE_MATERIALIZE:
                selected.append("SEQUENCE({})".format(name))
        if not selected:
            selected = ["SEQUENCE(*)"]
        return "SELECT {} GROUP BY {} FROM input".format(
            ", ".join(selected), native
        )

    def spark_mapping(self) -> str:
        return "mapToPair() groupByKey() map()"


class OrderByClauseIterator(ClauseIterator):
    """``order by spec, ...`` — Section 4.8.

    A first pass discovers each key's type family and raises on
    incompatibilities; a second pass creates the needed native columns and
    delegates to the engine's ORDER BY.
    """

    def __init__(
        self,
        input_clause: ClauseIterator,
        specs: List[Tuple[RuntimeIterator, bool, bool]],
        stable: bool = False,
    ):
        super().__init__(input_clause)
        #: (expression, ascending, empty_greatest) per ordering key
        self.specs = specs
        self.stable = stable

    def _key_of(
        self, tuple_: FlworTuple, context: DynamicContext
    ) -> List[Optional[Item]]:
        return self._key_of_context(tuple_.to_context(context))

    def _key_of_context(
        self, inner: DynamicContext
    ) -> List[Optional[Item]]:
        values: List[Optional[Item]] = []
        for expression, _, _ in self.specs:
            items = expression.materialize_local(inner)
            values.append(self._check_key(items))
        return values

    @staticmethod
    def _check_key(items: List[Item]) -> Optional[Item]:
        if len(items) > 1:
            raise TypeException(
                "order-by key evaluated to more than one item"
            )
        if items and not items[0].is_atomic:
            raise TypeException(
                "order-by key is not atomic ({})".format(items[0].type_name)
            )
        return items[0] if items else None

    def _row_key_reader(self, context: DynamicContext):
        """A per-row key evaluator using fast extractors when possible."""
        extractors = [
            _make_fast_extractor(expression)
            for expression, _, _ in self.specs
        ]
        expressions = [expression for expression, _, _ in self.specs]
        check = self._check_key

        def read(row: Dict[str, object]) -> List[Optional[Item]]:
            inner = None
            values: List[Optional[Item]] = []
            for fast, expression in zip(extractors, expressions):
                if fast is not None:
                    values.append(check(fast(row)))
                else:
                    if inner is None:
                        inner = _row_context(context, row)
                    values.append(check(expression.materialize_local(inner)))
            return values

        return read

    def _ordering_row(
        self, values: List[Optional[Item]]
    ) -> List[tuple]:
        return [
            ordering_tuple(value, empty_greatest)
            for value, (_, _, empty_greatest) in zip(values, self.specs)
        ]

    def tuple_stream(self, context: DynamicContext) -> Iterator[FlworTuple]:
        materialized: List[Tuple[List[tuple], FlworTuple]] = []
        families: List[Optional[str]] = [None] * len(self.specs)
        for tuple_ in self._input_tuples(context):
            values = self._key_of(tuple_, context)
            for index, value in enumerate(values):
                if value is not None:
                    families[index] = check_sortable(families[index], value)
            materialized.append((self._ordering_row(values), tuple_))
        for index, (_, ascending, _) in reversed(list(enumerate(self.specs))):
            materialized.sort(
                key=lambda pair: pair[0][index], reverse=not ascending
            )
        for _, tuple_ in materialized:
            yield tuple_

    def get_dataframe(self, context: DynamicContext) -> DataFrame:
        frame = self.input_clause.get_dataframe(context)
        # The type-discovery pass plus the sort itself scan the input
        # twice; persist it so upstream lineage runs once (what Rumble
        # gets from Spark SQL caching the exchange input).
        frame.rdd.cache()
        key_of = self._row_key_reader(context)
        ordering_row = self._ordering_row
        specs = self.specs

        # First pass: type discovery (Section 4.8 requires the error).
        def families_of(row: Dict[str, object]) -> List[Optional[str]]:
            values = key_of(row)
            return [
                None if value is None else check_sortable(None, value)
                for value in values
            ]

        def merge_families(left, right) -> List[Optional[str]]:
            merged = []
            for mine, theirs in zip(left, right):
                if mine is not None and theirs is not None and mine != theirs:
                    raise TypeException(
                        "incompatible order-by key types: {} and {}".format(
                            mine, theirs
                        )
                    )
                merged.append(mine if mine is not None else theirs)
            return merged

        if not frame.rdd.is_empty():
            frame.rdd.map(families_of).reduce(merge_families)

        # Second pass: native key columns + engine sort.
        def attach(row: Dict[str, object]) -> Dict[str, object]:
            values = key_of(row)
            out = dict(row)
            for index, key in enumerate(ordering_row(values)):
                out["#ord{}".format(index)] = key
            return out

        keyed = frame.rdd.map(attach)
        native = ["#ord{}".format(index) for index in range(len(specs))]
        working = self._frame(
            context.runtime.spark, keyed, list(frame.columns) + native
        )
        ordered = working.order_by(
            *[col(name) for name in native],
            ascending=[ascending for _, ascending, _ in specs],
        )
        return ordered.drop(*native)

    def sql_template(self) -> str:
        native = ", ".join(
            "b{}1, b{}2".format(index, index)
            for index in range(len(self.specs))
        )
        return "SELECT * ORDER BY {} FROM input".format(native)

    def spark_mapping(self) -> str:
        return "mapToPair() sortByKey() map()"


class CountClauseIterator(ClauseIterator):
    """``count $v`` — Section 4.9: zipWithIndex on the tuple stream."""

    def __init__(self, input_clause: ClauseIterator, variable: str):
        super().__init__(input_clause)
        self.variable = variable

    def tuple_stream(self, context: DynamicContext) -> Iterator[FlworTuple]:
        from repro.items import IntegerItem

        for position, tuple_ in enumerate(self._input_tuples(context), 1):
            yield tuple_.extend(self.variable, [IntegerItem(position)])

    def get_dataframe(self, context: DynamicContext) -> DataFrame:
        from repro.items import IntegerItem

        frame = self.input_clause.get_dataframe(context)
        indexed = frame.with_row_index("#idx")
        variable = self.variable

        def attach(row: Dict[str, object]) -> Dict[str, object]:
            out = {
                name: value for name, value in row.items() if name != "#idx"
            }
            out[variable] = [IntegerItem(row["#idx"] + 1)]
            return out

        rows = indexed.rdd.map(attach)
        return self._frame(
            context.runtime.spark, rows, list(frame.columns) + [variable]
        )

    def sql_template(self) -> str:
        return "SELECT *, ZIP_WITH_INDEX() AS {} FROM input".format(
            self.variable
        )

    def spark_mapping(self) -> str:
        return "zipWithIndex() map()"


class ReturnClauseIterator(RuntimeIterator):
    """``return expr`` — Section 4.10: a flatMap from tuples to items.

    This is an *expression* iterator: the FLWOR as a whole returns a
    sequence of items, RDD-backed whenever the clause chain supports
    DataFrames.
    """

    #: Attached by :mod:`repro.jsoniq.runtime.flwor.pushdown`.
    pushdown_plan = None
    topk = None
    #: Attached by :mod:`repro.jsoniq.runtime.flwor.columnar`.
    columnar_plan = None
    #: Attached by :mod:`repro.jsoniq.codegen`.
    codegen_plan = None

    def __init__(self, input_clause: ClauseIterator,
                 expression: RuntimeIterator):
        super().__init__([expression])
        self.input_clause = input_clause
        self.expression = expression

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        obs = _obs_of(context)
        if self.is_rdd(context):
            if obs is not None:
                obs.metrics.counter(
                    "rumble.execution.switches", via="flwor-distributed"
                ).inc()
            yield from self.get_rdd(context).to_local_iterator()
            return
        if obs is not None:
            obs.metrics.counter(
                "rumble.execution.switches", via="flwor-local"
            ).inc()
        stream = self.input_clause.tuple_stream(context)
        cancel = _cancel_of(context)
        if cancel is not None:
            # The return clause is the last boundary a tuple crosses;
            # guarding it covers single-clause FLWORs whose input never
            # transits another clause's _input_tuples.
            stream = cancel.guard(stream)
        for tuple_ in stream:
            yield from _evaluate_in_tuple(self.expression, tuple_, context)

    def is_rdd(self, context: DynamicContext) -> bool:
        return (
            context.runtime is not None
            and self.input_clause.supports_dataframe(context)
        )

    def rdd_count(self, context: DynamicContext):
        """The columnar count kernel, or None to fall back to the
        reference ``get_rdd().count()`` (see flwor/columnar.py)."""
        from repro.jsoniq.runtime.flwor.columnar import rdd_count

        return rdd_count(self, context)

    def get_rdd(self, context: DynamicContext):
        from repro.jsoniq.codegen import stage_rdd

        # Whole-stage codegen first: one generated loop straight over
        # the masked batches replaces the unbox → bind → evaluate
        # pipeline below.  None means some gate failed — the
        # interpreted path stays the untouched reference.
        staged = stage_rdd(self, context)
        if staged is not None:
            return staged
        frame = self.input_clause.get_dataframe(context)
        expression = self.expression
        obs = _obs_of(context)

        def emit(row: Dict[str, object]) -> List[Item]:
            return expression.materialize_local(_row_context(context, row))

        if obs is not None:
            inner_emit = emit
            returned = obs.metrics.counter(
                "rumble.clause.rows_out", clause="ReturnClauseIterator"
            )

            def emit(row: Dict[str, object]) -> List[Item]:
                out = inner_emit(row)
                returned.inc(len(out))
                return out

        return frame.rdd.flat_map(emit)

    def sql_template(self) -> str:
        return "FLATMAP(EVALUATE_EXPRESSION(*)) OVER input"

    def spark_mapping(self) -> str:
        return "map() + collect()/take()"
