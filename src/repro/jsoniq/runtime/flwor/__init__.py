"""FLWOR clause iterators and their DataFrame mappings (paper, Section 4)."""

from repro.jsoniq.runtime.flwor.tuples import FlworTuple

__all__ = ["FlworTuple"]
