"""FLWOR tuples: assignments of variables to materialized sequences.

A tuple (in the FLWOR sense — *not* a database tuple, see the paper's
footnote in Section 4.2) maps variable names to sequences of items.  The
sequences inside a tuple are always local materializations, as they are
typically small.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.items import NULL, Item
from repro.jsoniq.runtime.dynamic_context import DynamicContext


class CountedSequence:
    """A sequence known only by its length.

    Produced by the group-by clause for non-grouping variables that the
    static analysis proved are only ever counted (paper, Section 4.7:
    "COUNT() is invoked in Spark SQL instead of materializing").  Iterating
    yields placeholder nulls, so ``count($v)`` is exact while memory stays
    O(1); any other use would be a bug in the usage analysis.
    """

    __slots__ = ("count",)

    def __init__(self, count: int):
        self.count = count

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[Item]:
        return iter([NULL] * self.count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CountedSequence({})".format(self.count)


class RddSequence:
    """A tuple binding backed by an RDD of items.

    Produced by a leading ``let`` whose expression is RDD-capable: the
    sequence stays distributed, so consumers like ``count($xs)`` run as
    Spark actions (paper, Section 5.5) instead of materializing.  Iterating
    streams through the driver; ``materialize()`` collects once.
    """

    __slots__ = ("rdd", "_materialized")

    def __init__(self, rdd):
        self.rdd = rdd
        self._materialized = None

    def materialize(self) -> List[Item]:
        if self._materialized is None:
            self._materialized = self.rdd.collect()
        return self._materialized

    def __iter__(self) -> Iterator[Item]:
        if self._materialized is not None:
            return iter(self._materialized)
        return self.rdd.to_local_iterator()

    def __len__(self) -> int:
        return len(self.materialize())


class FlworTuple:
    """One tuple of the stream flowing between FLWOR clauses."""

    __slots__ = ("bindings",)

    def __init__(self, bindings: Dict[str, object] | None = None):
        self.bindings = bindings or {}

    def extend(self, name: str, items) -> "FlworTuple":
        """A new tuple with one more (or re-declared) variable."""
        bindings = dict(self.bindings)
        bindings[name] = items
        return FlworTuple(bindings)

    def get(self, name: str) -> List[Item]:
        value = self.bindings[name]
        if isinstance(value, CountedSequence):
            return list(value)
        if isinstance(value, RddSequence):
            return value.materialize()
        return value

    def has(self, name: str) -> bool:
        return name in self.bindings

    def variables(self) -> List[str]:
        return list(self.bindings.keys())

    def to_context(self, parent: DynamicContext) -> DynamicContext:
        """Expose the tuple's bindings as a dynamic context.

        Bindings are shared, not copied: tuples are immutable once built,
        so the context can alias their sequences."""
        context = parent.child()
        for name, value in self.bindings.items():
            if isinstance(value, CountedSequence):
                context.bind_counted(name, value)
            elif isinstance(value, RddSequence):
                context.bind_rdd(name, value.rdd)
            else:
                context.bind_shared(name, value)
        return context

    @staticmethod
    def from_row(row: Dict[str, object]) -> "FlworTuple":
        """Rebuild a tuple from a DataFrame row (dropping helper columns)."""
        return FlworTuple({
            name: value
            for name, value in row.items()
            if not name.startswith("#")
        })

    def to_row(self) -> Dict[str, object]:
        return dict(self.bindings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "FlworTuple({})".format(
            {k: len(v) if hasattr(v, "__len__") else v
             for k, v in self.bindings.items()}
        )
