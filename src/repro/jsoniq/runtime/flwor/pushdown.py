"""Scan pushdown and top-k planning for FLWOR chains.

The compiler calls :func:`annotate` on every FLWOR it lowers.  When the
chain starts with ``for $v in json-file(...)`` the analysis derives, from
the AST alone:

* **projection pruning** — the set of top-level keys the rest of the
  chain can ever observe ($v.key lookups).  When the bound item itself
  never escapes, the scan wraps only those keys into items and skips the
  rest of each decoded record (*Scalable Querying of Nested Data*'s
  motivation: push projection into the nested-JSON scan);
* **predicate pushdown** — leading ``where`` conditions of the shape
  ``$v.key <cmp> ($v.key | literal)`` become three-valued *raw*
  predicates evaluated on the decoded dict before any item is built.
  Only a definite **False** prunes a record; Unknown (nulls, mixed
  types, non-scalars) keeps the record so the retained ``where`` clause
  reproduces the exact reference semantics, type errors included;
* **partition pruning** — key-vs-literal predicates double as min/max
  range predicates the storage layer checks against per-file stats
  sidecars (:func:`repro.spark.storage.split_input_pruned`);
* **top-k rewrite** — an ``order by ... count $c where $c le k`` tail
  becomes a :class:`TopKClauseIterator` (per-partition heaps plus a
  driver merge) instead of a full sort.

Everything is gated at run time by ``RumbleConfig.pushdown``; with the
flag off, execution takes the untouched reference path — what the
differential and property tests compare against.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.jsoniq import ast

#: Sentinel distinguishing an absent key from a JSON null.
_MISSING = object()

_VALUE_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
_GENERAL_TO_VALUE = {
    "=": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}
_PY_OPS = {
    "eq": operator.eq, "ne": operator.ne,
    "lt": operator.lt, "le": operator.le,
    "gt": operator.gt, "ge": operator.ge,
}


class PushedPredicate:
    """One where-condition compiled to a raw three-valued predicate.

    ``raw(record)`` is evaluated on the decoded JSON dict: ``False``
    means the where clause is guaranteed to reject the record (prune),
    ``True``/``None`` means keep it and let the clause re-check.
    """

    __slots__ = ("keys", "raw", "description", "spec")

    def __init__(self, keys: Set[str], raw: Callable, description: str,
                 spec: Tuple = ()):
        self.keys = keys
        self.raw = raw
        self.description = description
        #: (left-operand, right-operand, value-op) — used at compile
        #: time to re-identify the where clause this predicate covers.
        self.spec = spec


class PushdownPlan:
    """What the leading scan may skip, shared between the leading for
    clause and the return clause (the ``count()`` consumer flips
    :attr:`count_only` after compilation)."""

    def __init__(self, variable: str):
        self.variable = variable
        self.predicates: List[PushedPredicate] = []
        #: (key, value-op, literal) facts for min/max file-stats pruning.
        self.range_predicates: List[Tuple[str, str, object]] = []
        #: Keys observed via ``$v.key`` anywhere downstream; ``None``
        #: when the whole item escapes regardless of the return clause.
        self.referenced_keys: Optional[Set[str]] = None
        #: The return expression is the bare variable — an escape unless
        #: the FLWOR's only consumer is ``count()``.
        self.bare_return = False
        #: Set by the compiler when ``count(<this flwor>)`` is the sole
        #: consumer, making the bare return cardinality-only.
        self.count_only = False

    def effective_projection(self) -> Optional[List[str]]:
        """The keys the scan must keep, or None for "keep everything"."""
        if self.referenced_keys is None:
            return None
        if self.bare_return and not self.count_only:
            return None
        keys = set(self.referenced_keys)
        for predicate in self.predicates:
            keys.update(predicate.keys)
        return sorted(keys)

    def describe(self) -> List[str]:
        lines = []
        projection = self.effective_projection()
        if projection is not None:
            lines.append("projection: {{{}}}".format(", ".join(projection)))
        for predicate in self.predicates:
            lines.append("pushed predicate: " + predicate.description)
        return lines


def _operand(node: ast.AstNode, variable: str):
    """Classify a comparison operand: ("key", name) for ``$v.key``,
    ("lit", value) for a safe scalar literal, None otherwise."""
    if (
        isinstance(node, ast.ObjectLookup)
        and isinstance(node.source, ast.VariableReference)
        and node.source.name == variable
        and isinstance(node.key, ast.Literal)
        and isinstance(node.key.value, str)
    ):
        return ("key", node.key.value)
    if isinstance(node, ast.Literal) and node.kind in (
        "string", "integer", "decimal", "double", "boolean"
    ):
        value = node.value
        if isinstance(value, (str, bool, int, float)):
            return ("lit", value)
    return None


def _make_raw(left, right, value_op: str) -> Callable:
    """Build the three-valued raw predicate over decoded dicts.

    The operand readers are specialized per shape (key/key, key/lit,
    lit/key) so the per-record path is two dict probes and a compare —
    this closure runs once per scanned record.
    """
    py_op = _PY_OPS[value_op]
    eq_family = value_op in ("eq", "ne")

    if left[0] == "key":
        left_key = left[1]
        read_left = lambda record: record.get(left_key, _MISSING)  # noqa: E731
    else:
        left_value = left[1]
        read_left = lambda record: left_value  # noqa: E731
    if right[0] == "key":
        right_key = right[1]
        read_right = lambda record: record.get(right_key, _MISSING)  # noqa: E731
    else:
        right_value = right[1]
        read_right = lambda record: right_value  # noqa: E731

    def raw(record: dict):
        mine = read_left(record)
        theirs = read_right(record)
        # An absent key is JSONiq's empty sequence: any comparison with
        # it is definitively false (value comparisons yield the empty
        # sequence, whose effective boolean value is false).
        if mine is _MISSING or theirs is _MISSING:
            return False
        # JSON nulls and cross-family comparisons have engine-defined
        # semantics (including type errors): Unknown, never prune.
        if mine is None or theirs is None:
            return None
        mine_bool = isinstance(mine, bool)
        theirs_bool = isinstance(theirs, bool)
        if mine_bool or theirs_bool:
            if mine_bool and theirs_bool and eq_family:
                return py_op(mine, theirs)
            return None
        if isinstance(mine, str) and isinstance(theirs, str):
            return py_op(mine, theirs)
        if isinstance(mine, (int, float)) and isinstance(theirs, (int, float)):
            return py_op(mine, theirs)
        return None

    return raw


_FLIPPED = {"eq": "eq", "ne": "ne", "lt": "gt", "le": "ge",
            "gt": "lt", "ge": "le"}


def _compile_predicate(
    condition: ast.AstNode, variable: str, plan: PushdownPlan
) -> Optional[PushedPredicate]:
    if not isinstance(condition, ast.ComparisonExpression):
        return None
    op = condition.op
    value_op = op if op in _VALUE_OPS else _GENERAL_TO_VALUE.get(op)
    if value_op is None:
        return None
    left = _operand(condition.left, variable)
    right = _operand(condition.right, variable)
    if left is None or right is None:
        return None
    if left[0] != "key" and right[0] != "key":
        return None  # literal-vs-literal: nothing to push
    keys = {spec[1] for spec in (left, right) if spec[0] == "key"}
    description = "{} {} {}".format(
        _describe_operand(left, variable), op,
        _describe_operand(right, variable),
    )
    # Key-vs-literal predicates double as min/max range facts.
    if left[0] == "key" and right[0] == "lit" and not isinstance(
        right[1], bool
    ):
        plan.range_predicates.append((left[1], value_op, right[1]))
    elif right[0] == "key" and left[0] == "lit" and not isinstance(
        left[1], bool
    ):
        plan.range_predicates.append(
            (right[1], _FLIPPED[value_op], left[1])
        )
    return PushedPredicate(
        keys, _make_raw(left, right, value_op), description,
        spec=(left, right, value_op),
    )


def _describe_operand(spec, variable: str) -> str:
    if spec[0] == "key":
        return "${}.{}".format(variable, spec[1])
    return repr(spec[1])


def analyse(flwor: ast.FlworExpression) -> Optional[PushdownPlan]:
    """Derive a pushdown plan from a FLWOR's AST, or None when the
    chain's shape rules every pushdown out."""
    clauses = flwor.clauses
    if not clauses or not isinstance(clauses[0], ast.ForClause):
        return None
    first = clauses[0]
    variable = first.variable
    plan = PushdownPlan(variable)
    # Predicate pruning changes the bound sequence, which positional or
    # allowing-empty bindings would observe.
    predicates_allowed = (
        first.position_variable is None and not first.allowing_empty
    )

    refs: Set[str] = set()
    escaped = False

    def scan(node: ast.AstNode) -> None:
        nonlocal escaped
        if escaped:
            return
        if (
            isinstance(node, ast.ObjectLookup)
            and isinstance(node.source, ast.VariableReference)
            and node.source.name == variable
            and isinstance(node.key, ast.Literal)
            and isinstance(node.key.value, str)
        ):
            refs.add(node.key.value)
            return
        if (
            isinstance(node, ast.FunctionCall)
            and node.name == "count"
            and len(node.arguments) == 1
            and isinstance(node.arguments[0], ast.VariableReference)
            and node.arguments[0].name == variable
        ):
            return  # cardinality-only reference
        if isinstance(node, ast.VariableReference) and node.name == variable:
            escaped = True
            return
        for child in node.children():
            scan(child)

    in_where_prefix = True
    for clause in clauses[1:]:
        if isinstance(clause, ast.WhereClause):
            if in_where_prefix and predicates_allowed:
                predicate = _compile_predicate(
                    clause.condition, variable, plan
                )
                if predicate is not None:
                    plan.predicates.append(predicate)
            scan(clause.condition)
            continue
        in_where_prefix = False
        if isinstance(clause, ast.ReturnClause):
            expression = clause.expression
            if (
                isinstance(expression, ast.VariableReference)
                and expression.name == variable
            ):
                plan.bare_return = True
            else:
                scan(expression)
            break
        if isinstance(clause, ast.WindowClause):
            # Window boundary conditions see neighbouring items through
            # extra bindings; stay conservative.
            escaped = True
            break
        if isinstance(clause, (ast.ForClause, ast.LetClause)):
            scan(clause.expression)
            shadowed = clause.variable == variable or (
                isinstance(clause, ast.ForClause)
                and clause.position_variable == variable
            )
            if shadowed:
                break
        elif isinstance(clause, ast.GroupByClause):
            rebound = False
            for key in clause.keys:
                if key.expression is not None:
                    scan(key.expression)
                elif key.variable == variable:
                    escaped = True  # grouping directly on the item
                if key.variable == variable:
                    rebound = True
            if rebound:
                break
        elif isinstance(clause, ast.OrderByClause):
            for spec in clause.specs:
                scan(spec.expression)
        elif isinstance(clause, ast.CountClause):
            if clause.variable == variable:
                break
        else:
            # A clause kind this analysis does not know: be conservative.
            escaped = True
            break
        if escaped:
            break

    plan.referenced_keys = None if escaped else refs
    if plan.referenced_keys is None and not plan.predicates:
        return None
    return plan


# ---------------------------------------------------------------------------
# Compile-time wiring
# ---------------------------------------------------------------------------

def annotate(flwor: ast.FlworExpression, return_iterator) -> None:
    """Attach the pushdown plan and apply the top-k rewrite to a freshly
    compiled FLWOR chain.  Called by the compiler; both optimizations
    stay dormant until a runtime with ``config.pushdown`` enables them.
    """
    from repro.jsoniq.runtime.flwor.clauses import ForClauseIterator

    head = return_iterator.input_clause
    while head is not None and head.input_clause is not None:
        head = head.input_clause
    if (
        isinstance(head, ForClauseIterator)
        and hasattr(head.expression, "get_rdd_pushed")
    ):
        plan = analyse(flwor)
        if plan is not None:
            head.pushdown_plan = plan
            return_iterator.pushdown_plan = plan
            _tag_covered_wheres(head, return_iterator, plan)
            # Columnar consumers ride the same plan (masked batch scan,
            # count kernel, group-by count kernel); must run before the
            # top-k rewrite while the chain is still the plain clause
            # list.  See flwor/columnar.py.
            from repro.jsoniq.runtime.flwor.columnar import plan_columnar

            plan_columnar(head, return_iterator, plan)
            # Whole-stage codegen rides the same plan one layer higher:
            # when the full chain (scan + covered wheres + return) fits
            # the emitter's shapes, the pipeline compiles into a single
            # generated loop.  See jsoniq/codegen/.
            from repro.jsoniq.codegen import plan_codegen

            plan_codegen(head, return_iterator, plan)
    _rewrite_topk(flwor, return_iterator)


def _iterator_operand(node, variable: str):
    """Classify a compiled comparison operand the same way
    :func:`_operand` classifies its AST counterpart."""
    from repro.jsoniq.runtime.navigation import ObjectLookupIterator
    from repro.jsoniq.runtime.primary import LiteralIterator, VariableIterator

    if (
        isinstance(node, ObjectLookupIterator)
        and isinstance(node.source, VariableIterator)
        and node.source.name == variable
        and node._constant_key is not None
    ):
        return ("key", node._constant_key)
    if isinstance(node, LiteralIterator):
        value = getattr(node.item, "value", None)
        if isinstance(value, (str, bool, int, float)):
            return ("lit", value)
    return None


def _operands_match(found, spec) -> bool:
    if found is None or found != spec:
        return False
    # `True == 1` would let a boolean literal match an integer spec.
    if found[0] == "lit" and isinstance(found[1], bool) != isinstance(
        spec[1], bool
    ):
        return False
    return True


def _tag_covered_wheres(head, return_iterator, plan: PushdownPlan) -> None:
    """Mark the where-clause iterators whose conditions were compiled
    into pushed predicates.  A tagged clause may pass rows the scan
    already proved definitely-true (``item.pushdown_verified``) without
    re-evaluating its condition — the scan's three-valued verdict is
    True only when the condition is guaranteed truthy and error-free.
    """
    from repro.jsoniq.runtime.comparison import ComparisonIterator
    from repro.jsoniq.runtime.flwor.clauses import WhereClauseIterator

    chain = []
    clause = return_iterator.input_clause
    while clause is not None and clause is not head:
        chain.append(clause)
        clause = getattr(clause, "input_clause", None)
    remaining = list(plan.predicates)
    # Forward order: the where prefix sits directly after the head.
    for clause in reversed(chain):
        if not isinstance(clause, WhereClauseIterator) or not remaining:
            break
        condition = clause.condition
        if not isinstance(condition, ComparisonIterator):
            continue
        op = condition.op
        value_op = op if op in _VALUE_OPS else _GENERAL_TO_VALUE.get(op)
        left = _iterator_operand(condition.left, plan.variable)
        right = _iterator_operand(condition.right, plan.variable)
        for predicate in remaining:
            if not predicate.spec:
                continue
            spec_left, spec_right, spec_op = predicate.spec
            if (
                value_op == spec_op
                and _operands_match(left, spec_left)
                and _operands_match(right, spec_right)
            ):
                clause.pushdown_plan = plan
                remaining.remove(predicate)
                break


def _rewrite_topk(flwor: ast.FlworExpression, return_iterator) -> None:
    """Recognize ``order by ... count $c where $c le k return ...`` and
    splice in a :class:`TopKClauseIterator`, keeping the original where
    clause as the reference fallback."""
    from repro.jsoniq.runtime.comparison import ComparisonIterator
    from repro.jsoniq.runtime.flwor.clauses import (
        CountClauseIterator,
        OrderByClauseIterator,
        WhereClauseIterator,
    )

    where = return_iterator.input_clause
    if not isinstance(where, WhereClauseIterator):
        return
    count = where.input_clause
    if not isinstance(count, CountClauseIterator):
        return
    order = count.input_clause
    if not isinstance(order, OrderByClauseIterator):
        return
    condition = where.condition
    if not isinstance(condition, ComparisonIterator):
        return
    limit = _bound_of(condition, count.variable)
    if limit is None:
        return
    # No downstream-use check needed: the heap emits exactly the first k
    # tuples of the sorted stream with the count variable bound 1..k —
    # identical to what count + where would have produced.
    topk = TopKClauseIterator(order, count.variable, limit, fallback=where)
    return_iterator.input_clause = topk
    return_iterator.topk = topk


def _bound_of(condition, count_variable: str) -> Optional[int]:
    """The k of ``$c le k`` / ``$c lt k`` / ``k ge $c`` / ``k gt $c``."""
    from repro.jsoniq.runtime.primary import LiteralIterator, VariableIterator

    def integer_literal(node) -> Optional[int]:
        if isinstance(node, LiteralIterator):
            item = node.item
            value = getattr(item, "value", None)
            if isinstance(value, int) and not isinstance(value, bool):
                return value
        return None

    left, right, op = condition.left, condition.right, condition.op
    if isinstance(left, VariableIterator) and left.name == count_variable:
        value = integer_literal(right)
        if value is None:
            return None
        if op in ("le", "<="):
            return value
        if op in ("lt", "<"):
            return value - 1
        return None
    if isinstance(right, VariableIterator) and right.name == count_variable:
        value = integer_literal(left)
        if value is None:
            return None
        if op in ("ge", ">="):
            return value
        if op in ("gt", ">"):
            return value - 1
        return None
    return None


# ---------------------------------------------------------------------------
# The top-k clause
# ---------------------------------------------------------------------------

class _Descending:
    """Inverts comparison order for descending ordering keys inside one
    composite sort key."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other) -> bool:
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return self.value == other.value


def _composite_key(specs):
    """A single composite sort key equivalent to the reference's chain
    of per-key stable sorts (first spec is the primary key)."""
    directions = [ascending for _, ascending, _ in specs]

    def key(ordering_row) -> tuple:
        return tuple(
            part if ascending else _Descending(part)
            for part, ascending in zip(ordering_row, directions)
        )

    return key


class TopKClauseIterator:
    """``order by ... count $c where $c le k`` as one clause.

    Keeps only k candidates per partition in a heap (stable
    ``heapq.nsmallest``) and merges them on the driver — the classic
    TopK physical operator replacing full-sort + row-number + filter.
    Type-family discovery runs over *every* row first, so incompatible
    ordering keys raise exactly as the reference order-by does.
    """

    def __init__(self, order_clause, count_variable: str, limit: int,
                 fallback):
        #: The original order-by (reused for key readers) and its input.
        self.order_clause = order_clause
        self.input_clause = order_clause.input_clause
        self.count_variable = count_variable
        self.limit = limit
        #: The original where clause — the reference path when the
        #: pushdown config flag is off.
        self.fallback = fallback

    # -- Shared helpers --------------------------------------------------------
    def _enabled(self, context) -> bool:
        runtime = context.runtime
        if runtime is None:
            return False
        return bool(getattr(runtime.config, "pushdown", True))

    @staticmethod
    def _merge_families(families, observed) -> None:
        from repro.jsoniq.errors import TypeException

        for index, family in enumerate(observed):
            if family is None:
                continue
            if families[index] is not None and families[index] != family:
                raise TypeException(
                    "incompatible order-by key types: {} and {}".format(
                        families[index], family
                    )
                )
            families[index] = family

    # -- Local API ---------------------------------------------------------------
    def tuple_stream(self, context):
        import heapq

        from repro.items import IntegerItem, check_sortable

        if not self._enabled(context):
            yield from self.fallback.tuple_stream(context)
            return
        if self.limit <= 0:
            return
        order = self.order_clause
        families = [None] * len(order.specs)

        def decorated():
            for tuple_ in order._input_tuples(context):
                values = order._key_of(tuple_, context)
                for index, value in enumerate(values):
                    if value is not None:
                        families[index] = check_sortable(
                            families[index], value
                        )
                yield (order._ordering_row(values), tuple_)

        composite = _composite_key(order.specs)
        best = heapq.nsmallest(
            self.limit, decorated(), key=lambda pair: composite(pair[0])
        )
        for position, (_, tuple_) in enumerate(best, 1):
            yield tuple_.extend(
                self.count_variable, [IntegerItem(position)]
            )

    # -- DataFrame API ------------------------------------------------------------
    def supports_dataframe(self, context) -> bool:
        if not self._enabled(context):
            return self.fallback.supports_dataframe(context)
        return self.input_clause.supports_dataframe(context)

    def get_dataframe(self, context):
        import heapq

        from repro.items import IntegerItem, check_sortable
        from repro.jsoniq.runtime.base import _obs_of

        if not self._enabled(context):
            return self.fallback.get_dataframe(context)
        order = self.order_clause
        frame = self.input_clause.get_dataframe(context)
        key_of = order._row_key_reader(context)
        ordering_row = order._ordering_row
        composite = _composite_key(order.specs)
        limit = self.limit
        spec_count = len(order.specs)

        def top_of_partition(part):
            """(families, top-k candidates) for one partition — the
            type-discovery pass and the heap run in the same scan."""
            families = [None] * spec_count
            decorated = []
            for row in part:
                values = key_of(row)
                for index, value in enumerate(values):
                    if value is not None:
                        families[index] = check_sortable(
                            families[index], value
                        )
                decorated.append((ordering_row(values), row))
            best = heapq.nsmallest(
                limit, decorated, key=lambda pair: composite(pair[0])
            ) if limit > 0 else []
            return [(families, best)]

        summaries = frame.rdd.map_partitions(top_of_partition).collect()
        families = [None] * spec_count
        candidates = []
        for observed, best in summaries:
            self._merge_families(families, observed)
            candidates.extend(best)
        merged = heapq.nsmallest(
            limit, candidates, key=lambda pair: composite(pair[0])
        ) if limit > 0 else []
        obs = _obs_of(context)
        if obs is not None:
            obs.metrics.counter("rumble.pushdown.topk_rewrites").inc()
        variable = self.count_variable
        rows = []
        for position, (_, row) in enumerate(merged, 1):
            out = dict(row)
            out[variable] = [IntegerItem(position)]
            rows.append(out)
        runtime = context.runtime
        rdd = runtime.spark.spark_context.parallelize(rows, 1)
        from repro.jsoniq.runtime.flwor.clauses import ClauseIterator

        return ClauseIterator._frame(
            runtime.spark, rdd, list(frame.columns) + [variable]
        )

    def sql_template(self) -> str:
        return "SELECT * ORDER BY ... LIMIT {} (top-k)".format(self.limit)

    def spark_mapping(self) -> str:
        return "mapPartitions(heap top-{}) + driver merge".format(self.limit)
