"""Columnar consumers of the pushdown plan: the batch protocol.

:func:`plan_columnar` runs at compile time (from
:func:`repro.jsoniq.runtime.flwor.pushdown.annotate`) over a freshly
compiled FLWOR chain that carries a pushdown plan.  It attaches a
:class:`ColumnarPlan` to the head for-clause and the return clause, and
— when the chain's shape allows — a batch *kernel* to the consumer
clause:

* **masked batch scan** — the leading for-clause scans
  :class:`~repro.items.columnar.MaskedBatch` es and boxes only surviving
  rows at the boundary (the default columnar mode whenever predicates
  were pushed; see ``ForClauseIterator.get_dataframe``);
* **count kernel** — ``count(for $v in json-file(...) where ... return
  $v)`` sums per-batch verdict counts without boxing a single verified
  row (``ReturnClauseIterator.rdd_count``);
* **group-by count kernel** — a group-by on ``$v.key`` keys whose
  non-grouping variable is only counted pre-aggregates each batch into
  one partial row per (partition, key), feeding the existing
  shuffle/aggregation machinery with per-key counts instead of per-row
  tuples (``GroupByClauseIterator.get_dataframe``).

Rows a mask could not decide (``RETAINED``) and escaped rows are boxed
and re-checked through the *original* where conditions, so semantics —
errors included — match the reference row path exactly.  Everything is
gated at run time by :func:`repro.core.config.columnar_enabled` (which
also requires ``config.pushdown``); the row path stays the untouched
reference.
"""

from __future__ import annotations

from typing import List, Optional

from repro.items.columnar import ABSENT, PRUNED, VERIFIED
from repro.jsoniq.errors import TypeException

#: repro.items.compare type codes, used to encode grouping keys straight
#: from raw column values (bool is checked before int: True == 1).
_CODE_EMPTY = 1
_CODE_NULL = 2
_CODE_TRUE = 3
_CODE_FALSE = 4
_CODE_STRING = 5
_CODE_NUMBER = 6


def _columnar_on(context) -> bool:
    """The runtime gate every columnar consumer checks."""
    from repro.core.config import columnar_enabled

    runtime = context.runtime
    if runtime is None:
        return False
    return columnar_enabled(runtime.config)


class ColumnarPlan:
    """The compile-time columnar decision record for one FLWOR chain.

    Decisions that depend on post-``annotate`` state (the compiler flips
    ``plan.count_only`` after us) are taken lazily — :meth:`describe`
    and the runtime kernels re-read the pushdown plan every time.
    """

    def __init__(self, plan, head, wheres: List[object]):
        #: The underlying :class:`PushdownPlan`.
        self.plan = plan
        #: The leading for-clause iterator (scans the file).
        self.head = head
        #: The covered where-clause prefix, forward order: every one was
        #: compiled into a pushed predicate, so they are exactly the
        #: conditions a ``RETAINED`` row must be re-checked against.
        self.wheres = wheres
        #: True when nothing but covered wheres sits between the head
        #: and the return clause — the count kernel fires iff the
        #: compiler also proves the FLWOR is only ever counted.
        self.count_candidate = False
        #: Set when the consumer is a kernel-eligible group-by.
        self.group_kernel: Optional[GroupByCountKernel] = None

    def describe(self) -> List[str]:
        """Explain lines (evaluated lazily — see class docstring)."""
        if self.group_kernel is not None:
            return [
                "columnar: group-by count kernel over masked scan "
                "(keys: {})".format(
                    ", ".join(
                        "${} := ${}.{}".format(name, self.plan.variable, key)
                        for name, key in self.group_kernel.keys
                    )
                )
            ]
        if self.count_candidate and self.plan.count_only:
            return ["columnar: count kernel over masked scan"]
        if self.plan.predicates:
            return [
                "columnar: masked batch scan ({} predicate mask{})".format(
                    len(self.plan.predicates),
                    "" if len(self.plan.predicates) == 1 else "s",
                )
            ]
        return [
            "columnar: declined (no pushed predicate masks; row scan "
            "retained)"
        ]


class GroupByCountKernel:
    """Pre-aggregate masked batches into partial group rows.

    Eligible shape: the group-by's whole upstream is the head scan plus
    covered wheres, every grouping key is ``$k := $v.key``, and the scan
    variable is only counted (or unused) downstream.  The kernel's
    partial rows carry the same columns the reference ``encode`` emits —
    boxed key items, the three native key columns, a
    ``CountedSequence`` for the scan variable — so the existing
    group/aggregate/order machinery merges them unchanged.
    """

    def __init__(self, cplan: ColumnarPlan, keys, usage: str):
        self.cplan = cplan
        #: [(grouping-variable name, raw record key)] in clause order.
        self.keys = keys
        self.usage = usage

    def partial_rows(self, context):
        """The RDD of partial rows, or None when the runtime gate or
        scan capability rules the kernel out (caller falls back to the
        reference path)."""
        from repro.jsoniq.runtime.base import _obs_of
        from repro.jsoniq.runtime.flwor.clauses import (
            USAGE_COUNT_ONLY,
        )
        from repro.jsoniq.runtime.flwor.tuples import CountedSequence

        cplan = self.cplan
        head = cplan.head
        if (
            not _columnar_on(context)
            or head.input_clause is not None
            or not hasattr(head.expression, "get_rdd_columnar")
        ):
            return None
        plan = cplan.plan
        rdd = head.expression.get_rdd_columnar(context, plan)
        recheck = _build_recheck(cplan.wheres, context)
        variable = plan.variable
        count_only = self.usage == USAGE_COUNT_ONLY
        key_specs = tuple(self.keys)
        obs = _obs_of(context)
        if obs is not None:
            obs.metrics.counter("rumble.columnar.group_kernel").inc()

        def partials(batches):
            from repro.jsoniq.jsonlines import _wrap_fast

            groups = {}  # native key tuple -> [key raw values, count]
            for masked in batches:
                batch = masked.batch
                escaped = batch.escaped
                columns = batch.columns
                readers = [
                    (name, key, columns.get(key)) for name, key in key_specs
                ]
                for row, status in enumerate(masked.statuses):
                    if status == PRUNED:
                        continue
                    if status != VERIFIED and recheck is not None:
                        item = batch.unshred_row(row)
                        if not recheck({variable: [item]}):
                            continue
                    native = []
                    raw_values = []
                    record = escaped.get(row, ABSENT)
                    if record is not ABSENT:
                        is_dict = type(record) is dict
                        for name, key, _column in readers:
                            value = (
                                record.get(key, ABSENT) if is_dict else ABSENT
                            )
                            raw_values.append(value)
                            native.extend(_raw_grouping_key(name, value))
                    else:
                        for name, _key, column in readers:
                            value = (
                                column.read(row) if column is not None
                                else ABSENT
                            )
                            raw_values.append(value)
                            native.extend(_raw_grouping_key(name, value))
                    entry = groups.get(tuple(native))
                    if entry is None:
                        groups[tuple(native)] = [raw_values, 1]
                    else:
                        entry[1] += 1
            # First-encounter order; the downstream ORDER BY on the
            # native columns makes the final order deterministic anyway.
            for native, (raw_values, count) in groups.items():
                out = {}
                position = 0
                for (name, _key), value in zip(key_specs, raw_values):
                    out[name] = (
                        [] if value is ABSENT else [_wrap_fast(value)]
                    )
                    out["#" + name + "#t"] = native[position]
                    out["#" + name + "#s"] = native[position + 1]
                    out["#" + name + "#n"] = native[position + 2]
                    position += 3
                if count_only:
                    out[variable] = CountedSequence(count)
                yield out

        return rdd.map_partitions(partials)


def _raw_grouping_key(name: str, value):
    """``repro.items.compare.grouping_key`` computed straight from a raw
    column value, with the group-by clause's atomicity errors."""
    if value is ABSENT:
        return (_CODE_EMPTY, "", 0.0)
    if value is None:
        return (_CODE_NULL, "", 0.0)
    if isinstance(value, bool):
        return (_CODE_TRUE if value else _CODE_FALSE, "", 0.0)
    if isinstance(value, str):
        return (_CODE_STRING, value, 0.0)
    if isinstance(value, (int, float)):
        return (_CODE_NUMBER, "", float(value))
    raise TypeException(
        "grouping variable ${} is not atomic ({})".format(
            name, "array" if isinstance(value, list) else "object"
        )
    )


def _build_recheck(wheres, context):
    """One row-predicate re-running the covered where conditions in
    clause order over ``{variable: [item]}`` rows — the reference
    semantics (errors included) for rows the masks could not decide.
    Returns None when there is nothing to re-check."""
    from repro.jsoniq.runtime.flwor.clauses import (
        _make_fast_predicate,
        _row_context,
    )

    if not wheres:
        return None
    checks = []
    for clause in wheres:
        fast = _make_fast_predicate(clause.condition)
        if fast is None:
            condition = clause.condition

            def fast(row, condition=condition):
                return condition.effective_boolean_value(
                    _row_context(context, row)
                )

        checks.append(fast)

    def recheck(row) -> bool:
        for check in checks:
            if not check(row):
                return False
        return True

    return recheck


def rdd_count(return_iterator, context) -> Optional[int]:
    """The count kernel: sum per-batch surviving-row counts.

    Verified rows are counted without boxing; retained rows box and
    re-check the covered wheres.  Returns None whenever any gate fails —
    the caller (``CountIterator``) falls back to the reference
    ``get_rdd().count()``.
    """
    from repro.jsoniq.runtime.base import _obs_of

    cplan = getattr(return_iterator, "columnar_plan", None)
    if cplan is None or not cplan.count_candidate:
        return None
    plan = cplan.plan
    if not plan.count_only:
        return None
    head = cplan.head
    if (
        not _columnar_on(context)
        or head.input_clause is not None
        or not hasattr(head.expression, "get_rdd_columnar")
        or return_iterator.topk is not None
    ):
        return None
    rdd = head.expression.get_rdd_columnar(context, plan)
    recheck = _build_recheck(cplan.wheres, context)
    variable = plan.variable
    obs = _obs_of(context)
    if obs is not None:
        obs.metrics.counter("rumble.columnar.count_kernel").inc()

    def count_partition(batches):
        total = 0
        for masked in batches:
            batch = masked.batch
            if recheck is None:
                total += masked.selected_count()
                continue
            for row, status in enumerate(masked.statuses):
                if status == PRUNED:
                    continue
                if status == VERIFIED:
                    total += 1
                    continue
                item = batch.unshred_row(row)
                if recheck({variable: [item]}):
                    total += 1
        yield total

    return sum(rdd.map_partitions(count_partition).collect())


def plan_columnar(head, return_iterator, plan) -> None:
    """Attach the columnar plan (and any kernel) to a compiled chain.

    Called by ``pushdown.annotate`` right after the covered wheres are
    tagged and *before* the top-k rewrite (the chain is still the plain
    clause list here).
    """
    from repro.jsoniq.runtime.flwor.clauses import (
        GroupByClauseIterator,
        USAGE_COUNT_ONLY,
        USAGE_MATERIALIZE,
        USAGE_UNUSED,
        WhereClauseIterator,
    )
    from repro.jsoniq.runtime.flwor.pushdown import _iterator_operand

    chain = []
    clause = return_iterator.input_clause
    while clause is not None and clause is not head:
        chain.append(clause)
        clause = getattr(clause, "input_clause", None)
    if clause is not head:
        return
    chain.reverse()

    # The covered-where prefix: exactly the clauses whose conditions the
    # scan's masks evaluate (everything after it sees boxed rows).
    wheres = []
    position = 0
    while (
        position < len(chain)
        and isinstance(chain[position], WhereClauseIterator)
        and chain[position].pushdown_plan is plan
    ):
        wheres.append(chain[position])
        position += 1
    rest = chain[position:]

    cplan = ColumnarPlan(plan, head, wheres)
    if not rest:
        # Bare `return $v` (or a projection thereof) directly after the
        # covered prefix: count-kernel candidate if the compiler later
        # proves the FLWOR is only counted.
        cplan.count_candidate = plan.bare_return
    elif isinstance(rest[0], GroupByClauseIterator):
        groupby = rest[0]
        keys = []
        eligible = True
        for name, expression in groupby.keys:
            spec = (
                _iterator_operand(expression, plan.variable)
                if expression is not None else None
            )
            if (
                spec is None
                or spec[0] != "key"
                or name == plan.variable
            ):
                eligible = False
                break
            keys.append((name, spec[1]))
        usage = groupby.variable_usage.get(
            plan.variable, USAGE_MATERIALIZE
        )
        if eligible and usage in (USAGE_COUNT_ONLY, USAGE_UNUSED):
            kernel = GroupByCountKernel(cplan, keys, usage)
            cplan.group_kernel = kernel
            groupby.columnar_kernel = kernel

    head.columnar_plan = cplan
    return_iterator.columnar_plan = cplan
