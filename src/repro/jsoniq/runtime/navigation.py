"""Navigation iterators: object lookup, array lookup/unboxing, predicates.

These are the expressions the paper parallelizes as flatMap
transformations (Section 4.1.2 and 5.6): applied to each item of an RDD,
non-matching items simply contribute nothing — navigation never errors on
the "wrong" kind of item, which is what makes heterogeneous collections
painless to query.
"""

from __future__ import annotations

from typing import Iterator

from repro.items import Item
from repro.jsoniq.errors import TypeException
from repro.jsoniq.runtime.base import RuntimeIterator, TransformingIterator
from repro.jsoniq.runtime.dynamic_context import DynamicContext


class ObjectLookupIterator(TransformingIterator):
    """``expr.key`` — value for objects holding the key, nothing otherwise."""

    def __init__(self, source: RuntimeIterator, key: RuntimeIterator):
        super().__init__(source, [key])
        self.key = key
        # Constant keys (the overwhelmingly common case, e.g. ``$o.country``)
        # are resolved once at compile time.
        from repro.jsoniq.runtime.primary import LiteralIterator

        self._constant_key = (
            key.item.value
            if isinstance(key, LiteralIterator) and key.item.is_string
            else None
        )

    def _transform(self, item: Item, context: DynamicContext):
        key = self._constant_key
        if key is None:
            key_item = self.key.evaluate_atomic(context, "object lookup key")
            if key_item is None:
                return
            key = (
                key_item.value if key_item.is_string else
                key_item.serialize().strip('"')
            )
        if item.is_object:
            value = item.get_item(key)
            if value is not None:
                yield value
            return
        yield from item.lookup(key)


class ArrayLookupIterator(TransformingIterator):
    """``expr[[i]]`` — the i-th member of each array item (1-based)."""

    def __init__(self, source: RuntimeIterator, index: RuntimeIterator):
        super().__init__(source, [index])
        self.index = index

    def _transform(self, item: Item, context: DynamicContext):
        index_item = self.index.evaluate_atomic(context, "array index")
        if index_item is None:
            return
        if not index_item.is_numeric:
            raise TypeException(
                "array index must be numeric, got " + index_item.type_name
            )
        yield from item.array_lookup(int(index_item.value))


class ArrayUnboxingIterator(TransformingIterator):
    """``expr[]`` — members of each array item, nothing for non-arrays."""

    def _transform(self, item: Item, context: DynamicContext):
        yield from item.unbox()


class PredicateIterator(RuntimeIterator):
    """``expr[condition]``.

    If the condition evaluates to a number it is positional (selecting the
    item at that 1-based position); otherwise its effective boolean value
    filters items, with ``$$`` bound to the current item.
    """

    def __init__(self, source: RuntimeIterator, condition: RuntimeIterator):
        super().__init__([source, condition])
        self.source = source
        self.condition = condition
        #: Conditions mentioning last() force the source to materialize
        #: so the sequence length is available to every evaluation.
        self.uses_last = _mentions_last(condition)

    def _decide(self, item: Item, position: int, context: DynamicContext,
                last=None):
        """Returns True/False for a filter, or the integer target position."""
        inner = context.with_context_item(item, position, last)
        values = self.condition.materialize_local(inner, limit=2)
        if len(values) == 1 and values[0].is_numeric:
            return int(values[0].value)
        if not values:
            return False
        if len(values) == 1:
            return values[0].effective_boolean_value()
        raise TypeException(
            "predicate must evaluate to a boolean or a number"
        )

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if self.uses_last:
            items = self.source.materialize(context)
            last = len(items)
            for position, item in enumerate(items, start=1):
                decision = self._decide(item, position, context, last)
                if decision is True or decision == position:
                    if decision is not False:
                        yield item
            return
        for position, item in enumerate(self.source.iterate(context), start=1):
            decision = self._decide(item, position, context)
            if decision is True or decision == position:
                if decision is not False:
                    yield item

    def is_rdd(self, context: DynamicContext) -> bool:
        # A last()-dependent predicate needs the whole sequence locally.
        return not self.uses_last and self.source.is_rdd(context)

    def get_rdd(self, context: DynamicContext):
        rdd = self.source.get_rdd(context)
        decide = self._decide

        def keep(pair) -> bool:
            item, index = pair
            decision = decide(item, index + 1, context)
            return decision is True or decision == index + 1

        return rdd.zip_with_index().filter(keep).map(lambda pair: pair[0])


def _mentions_last(iterator: RuntimeIterator) -> bool:
    from repro.jsoniq.functions.positional import LastIterator

    if isinstance(iterator, LastIterator):
        return True
    return any(_mentions_last(child) for child in iterator.children)


class SimpleMapIterator(TransformingIterator):
    """``expr ! mapper`` — evaluate the mapper once per item as ``$$``."""

    def __init__(self, source: RuntimeIterator, mapper: RuntimeIterator):
        super().__init__(source, [mapper])
        self.mapper = mapper

    def _transform(self, item: Item, context: DynamicContext):
        inner = context.with_context_item(item)
        yield from self.mapper.materialize_local(inner)
