"""Iterators for primary expressions: literals, variables, constructors."""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.items import (
    FALSE,
    NULL,
    TRUE,
    ArrayItem,
    DecimalItem,
    DoubleItem,
    IntegerItem,
    Item,
    ObjectItem,
    StringItem,
)
from repro.jsoniq.errors import TypeException
from repro.jsoniq.runtime.base import RuntimeIterator
from repro.jsoniq.runtime.dynamic_context import DynamicContext


class LiteralIterator(RuntimeIterator):
    """A constant atomic item."""

    def __init__(self, kind: str, value):
        super().__init__()
        if kind == "string":
            self.item: Item = StringItem(value)
        elif kind == "integer":
            self.item = IntegerItem(value)
        elif kind == "decimal":
            self.item = DecimalItem(value)
        elif kind == "double":
            self.item = DoubleItem(value)
        elif kind == "boolean":
            self.item = TRUE if value else FALSE
        elif kind == "null":
            self.item = NULL
        else:
            raise ValueError("unknown literal kind " + kind)

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        yield self.item


class FoldedConstantIterator(RuntimeIterator):
    """A constant computation evaluated once, at compile time.

    The compiler applies the linter's RBL003 observation ("constant
    subexpression could be computed once") to effect-free operator
    subtrees whose static arity is exactly one and whose evaluation
    succeeds; anything that raises stays unfolded so runtime errors
    like ``1 div 0`` surface exactly where the author wrote them.
    """

    def __init__(self, item: Item):
        super().__init__()
        self.item = item

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        yield self.item


class ParameterIterator(RuntimeIterator):
    """A literal lifted into a plan-cache parameter slot.

    The plan cache (``repro.server.plan_cache``) normalizes queries by
    replacing run-time-only literals with numbered slots, so one
    compiled plan serves every query of the same shape.  At run time the
    slot reads its value from the root dynamic context (bound under the
    reserved name ``#<slot>``, which no JSONiq variable can collide
    with); when no value is bound — e.g. the plan is run directly as a
    :class:`~repro.core.engine.CompiledQuery` — it falls back to the
    literal the plan was first compiled from, reproducing that query
    exactly.

    Deliberately *not* a :class:`LiteralIterator` subclass: compile-time
    machinery that specializes on literal values (constant lookup keys,
    pushdown predicates, top-k bounds) must never treat a slot as a
    constant.
    """

    def __init__(self, slot: int, kind: str, value):
        super().__init__()
        self.slot = slot
        self.kind = kind
        self._binding_name = "#{}".format(slot)
        #: The first-seen literal, used when no parameter is bound.
        self.item: Item = LiteralIterator(kind, value).item

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        frame = context
        while frame is not None:
            binding = frame._variables.get(self._binding_name)
            if binding is not None:
                yield binding[0]
                return
            frame = frame.parent
        yield self.item


class EmptySequenceIterator(RuntimeIterator):
    """The ``()`` expression."""

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        return iter(())


class VariableIterator(RuntimeIterator):
    """A variable reference; RDD-capable when the binding is an RDD."""

    def __init__(self, name: str):
        super().__init__()
        self.name = name

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        binding = context._raw(self.name)
        from repro.jsoniq.runtime.dynamic_context import _RddBinding

        if isinstance(binding, _RddBinding):
            return binding.rdd.to_local_iterator()
        return iter(binding)

    def is_rdd(self, context: DynamicContext) -> bool:
        return context.get_rdd(self.name) is not None

    def get_rdd(self, context: DynamicContext):
        return context.get_rdd(self.name)


class ContextItemIterator(RuntimeIterator):
    """The ``$$`` expression."""

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        yield context.context_item


class CommaIterator(RuntimeIterator):
    """Sequence concatenation ``e1, e2, ...`` — flat, per the JDM."""

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        for child in self.children:
            yield from child.iterate(context)

    def is_rdd(self, context: DynamicContext) -> bool:
        return all(child.is_rdd(context) for child in self.children)

    def get_rdd(self, context: DynamicContext):
        rdd = self.children[0].get_rdd(context)
        for child in self.children[1:]:
            rdd = rdd.union(child.get_rdd(context))
        return rdd


class ObjectConstructorIterator(RuntimeIterator):
    """``{ key : value, ... }`` with dynamic keys and values.

    Key expressions must produce exactly one atomic castable to string;
    value expressions are materialized — an empty sequence becomes ``null``
    and a longer sequence is boxed into an array, following Rumble.
    """

    def __init__(self, pairs: List[Tuple[RuntimeIterator, RuntimeIterator]]):
        super().__init__([node for pair in pairs for node in pair])
        self.pairs = pairs

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        members = {}
        for key_iterator, value_iterator in self.pairs:
            key_item = key_iterator.evaluate_atomic(context, "object key")
            if key_item is None:
                raise TypeException("object keys cannot be empty sequences")
            key = (
                key_item.value
                if key_item.is_string
                else key_item.serialize().strip('"')
            )
            values = value_iterator.materialize(context)
            if not values:
                members[key] = NULL
            elif len(values) == 1:
                members[key] = values[0]
            else:
                members[key] = ArrayItem(values)
        yield ObjectItem(members)


class ArrayConstructorIterator(RuntimeIterator):
    """``[ expr ]`` — boxes the content sequence into one array item."""

    def __init__(self, content: RuntimeIterator | None):
        super().__init__([content] if content else [])
        self.content = content

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if self.content is None:
            yield ArrayItem([])
        else:
            yield ArrayItem(self.content.materialize(context))
