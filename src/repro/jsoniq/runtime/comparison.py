"""Comparison and logic iterators.

JSONiq distinguishes *value comparisons* (``eq ne lt le gt ge`` — both
operands must be zero-or-one atomics, an empty operand yields the empty
sequence) from *general comparisons* (``= != < <= > >=`` — existentially
quantified over both operand sequences).  Logic is two-valued (JSONiq has
no NULL-logic: the effective boolean value decides).
"""

from __future__ import annotations

from typing import Iterator

from repro.items import FALSE, TRUE, Item, value_compare
from repro.jsoniq.errors import TypeException
from repro.jsoniq.runtime.base import RuntimeIterator
from repro.jsoniq.runtime.dynamic_context import DynamicContext

_VALUE_OPS = {"eq", "ne", "lt", "le", "gt", "ge"}
_GENERAL_TO_VALUE = {
    "=": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}


def _apply(op: str, left: Item, right: Item) -> bool:
    result = value_compare(left, right)
    if op == "eq":
        return result == 0
    if op == "ne":
        return result != 0
    if op == "lt":
        return result < 0
    if op == "le":
        return result <= 0
    if op == "gt":
        return result > 0
    if op == "ge":
        return result >= 0
    raise ValueError("unknown comparison " + op)


class ComparisonIterator(RuntimeIterator):
    """Both comparison families, selected by the operator's spelling."""

    def __init__(self, op: str, left: RuntimeIterator, right: RuntimeIterator,
                 static_atomic: bool = False):
        super().__init__([left, right])
        self.op = op
        self.left = left
        self.right = right
        #: Set by the compiler when static inference proved both operands
        #: are single comparable atomics — enables the checkless path.
        self.static_atomic = static_atomic

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if self.op in _VALUE_OPS:
            yield from self._value_comparison(context)
        else:
            yield from self._general_comparison(context)

    def _value_comparison(self, context: DynamicContext) -> Iterator[Item]:
        if self.static_atomic:
            left = self.left.evaluate_single(context)
            right = self.right.evaluate_single(context)
            if left is None or right is None:
                return
            yield TRUE if _apply(self.op, left, right) else FALSE
            return
        left = self.left.evaluate_atomic(context, "comparison operand")
        right = self.right.evaluate_atomic(context, "comparison operand")
        if left is None or right is None:
            return
        yield TRUE if _apply(self.op, left, right) else FALSE

    def _general_comparison(self, context: DynamicContext) -> Iterator[Item]:
        value_op = _GENERAL_TO_VALUE[self.op]
        left_items = self.left.materialize(context)
        right_items = self.right.materialize(context)
        for left in left_items:
            if not left.is_atomic:
                raise TypeException(
                    "cannot compare " + left.type_name
                )
            for right in right_items:
                if not right.is_atomic:
                    raise TypeException(
                        "cannot compare " + right.type_name
                    )
                if _apply(value_op, left, right):
                    yield TRUE
                    return
        yield FALSE


class AndIterator(RuntimeIterator):
    def __init__(self, left: RuntimeIterator, right: RuntimeIterator):
        super().__init__([left, right])
        self.left = left
        self.right = right

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if not self.left.effective_boolean_value(context):
            yield FALSE
            return
        yield TRUE if self.right.effective_boolean_value(context) else FALSE


class OrIterator(RuntimeIterator):
    def __init__(self, left: RuntimeIterator, right: RuntimeIterator):
        super().__init__([left, right])
        self.left = left
        self.right = right

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        if self.left.effective_boolean_value(context):
            yield TRUE
            return
        yield TRUE if self.right.effective_boolean_value(context) else FALSE


class NotIterator(RuntimeIterator):
    def __init__(self, operand: RuntimeIterator):
        super().__init__([operand])
        self.operand = operand

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        yield FALSE if self.operand.effective_boolean_value(context) else TRUE
