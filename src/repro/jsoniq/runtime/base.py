"""Base class of expression runtime iterators.

The local API follows the established pull pattern of the paper's Section
5.5 — ``open()``, ``has_next()``, ``next()``, ``reset()``, ``close()`` —
and the Spark API is the pair ``is_rdd()`` / ``get_rdd()`` of Section 5.6.
Subclasses implement ``_generate`` (a generator over items, which backs
the pull API) and optionally the RDD hooks.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, List, Optional

from repro.items import Item
from repro.jsoniq.errors import DynamicException, TypeException
from repro.jsoniq.runtime.dynamic_context import DynamicContext


def _obs_of(context: DynamicContext):
    """The enabled observability bundle of this run, or None.

    The guard is two attribute loads and a branch — the price every
    instrumented call site pays when profiling is off.
    """
    runtime = context.runtime
    if runtime is None:
        return None
    obs = getattr(runtime, "obs", None)
    if obs is None or not obs.enabled:
        return None
    return obs


def _cancel_of(context: DynamicContext):
    """The active request's cancel token, or None (library use).

    Same guard shape as :func:`_obs_of`: the un-cancellable path pays
    two attribute loads, so boundary checks stay free when no request
    lifecycle is attached.
    """
    runtime = context.runtime
    if runtime is None:
        return None
    return getattr(runtime, "cancel", None)


class RuntimeIterator:
    """An executable expression returning a sequence of items."""

    def __init__(self, children: Optional[List["RuntimeIterator"]] = None):
        self.children = children or []
        self._context: Optional[DynamicContext] = None
        self._generator: Optional[Iterator[Item]] = None
        self._lookahead: Optional[Item] = None
        self._exhausted = False
        self._is_open = False

    # -- Local API ---------------------------------------------------------------
    def open(self, context: DynamicContext) -> None:
        if self._is_open:
            raise DynamicException("iterator opened twice")
        self._is_open = True
        self._context = context
        self._generator = self._generate(context)
        self._lookahead = None
        self._exhausted = False

    def has_next(self) -> bool:
        self._require_open()
        if self._lookahead is not None:
            return True
        if self._exhausted:
            return False
        try:
            self._lookahead = next(self._generator)
            return True
        except StopIteration:
            self._exhausted = True
            return False

    def next(self) -> Item:
        if not self.has_next():
            raise DynamicException("next() called on exhausted iterator")
        item = self._lookahead
        self._lookahead = None
        return item

    def next_batch(self, max_items: Optional[int] = None) -> List[Item]:
        """Pull up to ``max_items`` items in one call (the batched pull
        API): one ``islice`` drain instead of a ``has_next()``/``next()``
        round-trip per item.  Returns a short (possibly empty) list when
        the iterator exhausts; ``None`` means drain everything.
        """
        self._require_open()
        batch: List[Item] = []
        if self._lookahead is not None:
            batch.append(self._lookahead)
            self._lookahead = None
        if self._exhausted:
            return batch
        if max_items is None:
            batch.extend(self._generator)
            self._exhausted = True
            return batch
        wanted = max_items - len(batch)
        if wanted > 0:
            batch.extend(islice(self._generator, wanted))
            if len(batch) < max_items:
                self._exhausted = True
        return batch

    def reset(self, context: DynamicContext) -> None:
        self._require_open()
        self._context = context
        self._generator = self._generate(context)
        self._lookahead = None
        self._exhausted = False

    def close(self) -> None:
        self._is_open = False
        self._generator = None
        self._lookahead = None

    def _require_open(self) -> None:
        if not self._is_open:
            raise DynamicException("iterator used before open()")

    # -- Convenience -----------------------------------------------------------------
    def iterate(self, context: DynamicContext) -> Iterator[Item]:
        """Stream the items of this expression in a fresh evaluation.

        When the engine runs under a profiler the stream is counted into
        the ``rumble.iterator.rows`` metric, labelled by iterator class;
        the disabled path is the plain generator (no allocation).
        """
        obs = _obs_of(context)
        if obs is not None:
            return self._counted_generate(context, obs)
        return self._generate(context)

    def _counted_generate(self, context: DynamicContext, obs) -> Iterator[Item]:
        counter = obs.metrics.counter(
            "rumble.iterator.rows", iterator=type(self).__name__
        )
        for item in self._generate(context):
            counter.inc()
            yield item

    def materialize(self, context: DynamicContext) -> List[Item]:
        """Fully evaluate into a list, preferring the RDD path if available
        (seamless switching, paper Section 5.5)."""
        if self.is_rdd(context):
            obs = _obs_of(context)
            if obs is not None:
                obs.metrics.counter(
                    "rumble.execution.switches", via="materialize"
                ).inc()
            return self.get_rdd(context).collect()
        return list(self._generate(context))

    def evaluate_atomic(self, context: DynamicContext, what: str) -> Optional[Item]:
        """Evaluate to zero-or-one atomic item (None for empty)."""
        items = self.materialize_local(context, limit=2)
        if not items:
            return None
        if len(items) > 1:
            raise TypeException(
                "{} must be a single item, got a longer sequence".format(what)
            )
        item = items[0]
        if not item.is_atomic:
            raise TypeException(
                "{} must be atomic, got {}".format(what, item.type_name)
            )
        return item

    def evaluate_single(self, context: DynamicContext) -> Optional[Item]:
        """The first item of this expression, or None for empty.

        Fast path for call sites where *static inference already proved*
        the result is a single atomic of the right kind — it skips the
        two-item materialization, the singleton check and the atomicity
        check of :meth:`evaluate_atomic`.
        """
        for item in self._generate(context):
            return item
        return None

    def materialize_local(
        self, context: DynamicContext, limit: Optional[int] = None
    ) -> List[Item]:
        """Evaluate via the local API only (no Spark job), optionally
        stopping after ``limit`` items.

        Drains through ``list()``/``islice`` in C rather than an
        append-per-item Python loop — this is the per-row hot path of
        every EVALUATE_EXPRESSION call in the DataFrame mapping.
        """
        if limit is None:
            return list(self._generate(context))
        return list(islice(self._generate(context), limit))

    def iterate_batches(
        self, context: DynamicContext, batch_size: Optional[int] = None
    ) -> Iterator[List[Item]]:
        """Stream the result in chunks of up to ``batch_size`` items.

        The chunked consumption pattern of the driver-side paths
        (:class:`repro.core.results.SequenceOfItems`): one generator
        resumption per batch instead of per item.  ``batch_size``
        defaults to the engine's ``RumbleConfig.batch_size``.
        """
        if batch_size is None:
            runtime = context.runtime
            config = getattr(runtime, "config", None) if runtime else None
            batch_size = getattr(config, "batch_size", 256) or 256
        cancel = _cancel_of(context)
        iterator = self.iterate(context)
        while True:
            if cancel is not None:
                # Driver-side consumption boundary: one check per batch
                # covers expressions that never cross a clause or
                # partition boundary (pure local pipelines).
                cancel.check()
            batch = list(islice(iterator, batch_size))
            if not batch:
                return
            yield batch

    def effective_boolean_value(self, context: DynamicContext) -> bool:
        """The EBV of this expression's result (empty = false; a first
        non-atomic item in a longer sequence is a type error)."""
        generator = self._generate(context)
        try:
            first = next(generator)
        except StopIteration:
            return False
        try:
            next(generator)
        except StopIteration:
            return first.effective_boolean_value()
        # Sequence of length > 1: EBV defined only if first item is a node
        # in XQuery; in JSONiq this is an error.
        raise TypeException(
            "effective boolean value of a sequence of more than one item"
        )

    # -- Generation hook -----------------------------------------------------------------
    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        """Yield the items of this expression under ``context``."""
        raise NotImplementedError

    # -- Spark API ------------------------------------------------------------------------
    def is_rdd(self, context: DynamicContext) -> bool:
        """Whether this expression can return its result as an RDD here."""
        return False

    def get_rdd(self, context: DynamicContext):
        """The result as an RDD of items; only valid when ``is_rdd``."""
        raise DynamicException(
            "{} cannot produce an RDD".format(type(self).__name__)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "{}({} children)".format(type(self).__name__, len(self.children))


class TransformingIterator(RuntimeIterator):
    """An iterator whose semantics is a per-item transformation of one
    source child — the family that parallelizes as a flatMap (paper,
    Section 4.1.2).

    Subclasses implement ``_transform(item, context)`` returning an
    iterable of output items for one input item.  The local API streams;
    the RDD API applies the same transformation as a flatMap.
    """

    def __init__(self, source: RuntimeIterator,
                 extra_children: Optional[List[RuntimeIterator]] = None):
        super().__init__([source] + list(extra_children or []))
        self.source = source

    def _transform(self, item: Item, context: DynamicContext):
        raise NotImplementedError

    def _generate(self, context: DynamicContext) -> Iterator[Item]:
        for item in self.source.iterate(context):
            yield from self._transform(item, context)

    def is_rdd(self, context: DynamicContext) -> bool:
        return self.source.is_rdd(context)

    def get_rdd(self, context: DynamicContext):
        rdd = self.source.get_rdd(context)
        transform = self._transform
        return rdd.flat_map(lambda item: list(transform(item, context)))
