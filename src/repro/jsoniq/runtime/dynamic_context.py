"""Dynamic contexts: run-time variable bindings.

A dynamic context binds sequences of items to variables in scope, plus the
context item ``$$`` and, during FLWOR evaluation, the current tuple's
bindings.  Contexts chain to their parent like static contexts do.

Variables are usually bound to materialized lists of items; a binding can
also be an RDD of items (e.g. a let on a ``json-file()`` source), which is
only materialized if a consumer needs the local API.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.items import Item
from repro.jsoniq.errors import DynamicException


class DynamicContext:
    """One frame of run-time bindings."""

    __slots__ = ("parent", "runtime", "_variables", "_context_item",
                 "_position", "_last")

    def __init__(self, runtime=None, parent: Optional["DynamicContext"] = None):
        self.parent = parent
        #: The engine runtime (Spark session, config); inherited from parent.
        self.runtime = runtime if runtime is not None else (
            parent.runtime if parent is not None else None
        )
        self._variables: Dict[str, object] = {}
        self._context_item: Optional[Item] = None
        self._position: Optional[int] = None
        self._last: Optional[int] = None

    def child(self) -> "DynamicContext":
        return DynamicContext(parent=self)

    # -- Variables ------------------------------------------------------------
    def bind(self, name: str, items: List[Item]) -> None:
        self._variables[name] = list(items)

    def bind_shared(self, name: str, items: List[Item]) -> None:
        """Bind without a defensive copy (hot path for FLWOR tuples; the
        caller must not mutate ``items`` afterwards)."""
        self._variables[name] = items

    def bind_rdd(self, name: str, rdd) -> None:
        self._variables[name] = _RddBinding(rdd)

    def bind_counted(self, name: str, counted) -> None:
        """Bind a count-only sequence (see
        :class:`repro.jsoniq.runtime.flwor.tuples.CountedSequence`)."""
        self._variables[name] = counted

    def get(self, name: str) -> List[Item]:
        binding = self._raw(name)
        if isinstance(binding, _RddBinding):
            return binding.materialize()
        return binding

    def get_rdd(self, name: str):
        """The RDD behind a binding, or None when bound locally."""
        binding = self._raw(name)
        if isinstance(binding, _RddBinding):
            return binding.rdd
        return None

    def has(self, name: str) -> bool:
        context: Optional[DynamicContext] = self
        while context is not None:
            if name in context._variables:
                return True
            context = context.parent
        return False

    def _raw(self, name: str):
        context: Optional[DynamicContext] = self
        while context is not None:
            if name in context._variables:
                return context._variables[name]
            context = context.parent
        raise DynamicException(
            "variable ${} is not bound".format(name), code="XPDY0002"
        )

    # -- Context item ------------------------------------------------------------
    def with_context_item(self, item: Item, position: Optional[int] = None,
                          last: Optional[int] = None) -> "DynamicContext":
        context = self.child()
        context._context_item = item
        context._position = position
        context._last = last
        return context

    @property
    def context_item(self) -> Item:
        context: Optional[DynamicContext] = self
        while context is not None:
            if context._context_item is not None:
                return context._context_item
            context = context.parent
        raise DynamicException(
            "the context item ($$) is not defined here", code="XPDY0002"
        )

    @property
    def position(self) -> Optional[int]:
        context: Optional[DynamicContext] = self
        while context is not None:
            if context._context_item is not None:
                return context._position
            context = context.parent
        return None

    @property
    def last(self) -> Optional[int]:
        """The size of the sequence being filtered, when known (only
        materializing predicates provide it — see ``last()``)."""
        context: Optional[DynamicContext] = self
        while context is not None:
            if context._context_item is not None:
                return context._last
            context = context.parent
        return None


class _RddBinding:
    """A variable bound to a distributed sequence of items."""

    __slots__ = ("rdd", "_materialized")

    def __init__(self, rdd):
        self.rdd = rdd
        self._materialized: Optional[List[Item]] = None

    def materialize(self) -> List[Item]:
        if self._materialized is None:
            self._materialized = self.rdd.collect()
        return self._materialized
