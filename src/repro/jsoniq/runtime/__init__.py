"""Runtime iterators: the executable form of JSONiq queries.

Two iterator families exist, mirroring the paper's Section 5.4:

* *expression* iterators (:class:`~repro.jsoniq.runtime.base.RuntimeIterator`)
  return sequences of items, via a pull-based local API or as an RDD;
* *clause* iterators (:mod:`repro.jsoniq.runtime.flwor`) return tuple
  streams, via a local API or as a DataFrame.
"""
