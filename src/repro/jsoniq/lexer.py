"""The JSONiq lexer.

Hand-written tokenizer for the JSONiq grammar subset Rumble supports
(the paper used an ANTLR-generated lexer; the token stream is the same).

A JSONiq-specific subtlety: hyphens are legal inside names, so
``json-file`` is one token while ``a - b`` is three.  Following XQuery
lexing, a ``-`` *directly* surrounded by name characters continues the
name; surrounded by spaces it is the minus operator.
"""

from __future__ import annotations

from typing import List, Optional

from repro.jsoniq.errors import ParseException

#: Keywords are contextual in real JSONiq; for the supported subset it is
#: safe to reserve this set (names like ``for`` can still appear as object
#: keys because the parser asks for "name-like" tokens there).
KEYWORDS = frozenset({
    "for", "let", "where", "group", "order", "by", "return", "count",
    "stable", "ascending", "descending", "empty", "greatest", "least",
    "in", "as", "at", "allowing",
    "tumbling", "sliding", "window", "start", "end", "when", "only",
    "previous", "next",
    "if", "then", "else", "switch", "case", "default", "typeswitch",
    "try", "catch",
    "some", "every", "satisfies",
    "and", "or", "not", "to",
    "eq", "ne", "lt", "le", "gt", "ge",
    "div", "idiv", "mod",
    "instance", "of", "treat", "cast", "castable",
    "true", "false", "null",
    "declare", "function", "variable", "external",
})

#: Namespace prefixes that may qualify a name (``local:fact``).  Limiting
#: the set keeps ``{a:b}`` lexing as three tokens instead of one name.
NAME_PREFIXES = frozenset({"local", "fn", "math", "jn", "an"})

#: Multi-character punctuation, longest first so the scanner is greedy.
_PUNCTUATION = [
    "[]", ":=", "!=", "<=", ">=", "||", "{", "}", "[", "]", "(", ")",
    ",", ":", ";", "$", ".", "!", "?", "=", "<", ">", "+", "-", "*", "/",
    "%", "#", "|",
]

_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
}


class Token:
    """One lexical token with its source position."""

    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind  # keyword | name | string | integer | decimal
        #                 # | double | punct | eof
        self.text = text
        self.line = line
        self.column = column

    def matches(self, kind: str, text: Optional[str] = None) -> bool:
        return self.kind == kind and (text is None or self.text == text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Token({}, {!r})".format(self.kind, self.text)


class Lexer:
    """Scans JSONiq query text into a token list."""

    def __init__(self, text: str):
        self._text = text
        self._position = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._position >= len(self._text):
                tokens.append(Token("eof", "", self._line, self._column))
                return tokens
            tokens.append(self._next_token())

    # -- Scanning helpers ----------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self._position + offset
        return self._text[index] if index < len(self._text) else ""

    def _take(self) -> str:
        char = self._text[self._position]
        self._position += 1
        if char == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return char

    def _error(self, message: str) -> ParseException:
        return ParseException(message, line=self._line, column=self._column)

    def _skip_whitespace_and_comments(self) -> None:
        while self._position < len(self._text):
            char = self._peek()
            if char in " \t\r\n":
                self._take()
            elif char == "(" and self._peek(1) == ":":
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        self._take()
        self._take()
        depth = 1
        while depth > 0:
            if self._position >= len(self._text):
                raise self._error("unterminated comment")
            if self._peek() == "(" and self._peek(1) == ":":
                self._take()
                self._take()
                depth += 1
            elif self._peek() == ":" and self._peek(1) == ")":
                self._take()
                self._take()
                depth -= 1
            else:
                self._take()

    # -- Token scanners --------------------------------------------------------
    def _next_token(self) -> Token:
        line, column = self._line, self._column
        char = self._peek()
        if char == '"':
            return Token("string", self._scan_string(), line, column)
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._scan_number(line, column)
        if char.isalpha() or char == "_":
            return self._scan_name(line, column)
        if char == "$" and self._peek(1) == "$":
            self._take()
            self._take()
            return Token("punct", "$$", line, column)
        for punct in _PUNCTUATION:
            if self._text.startswith(punct, self._position):
                for _ in punct:
                    self._take()
                return Token("punct", punct, line, column)
        raise self._error("unexpected character {!r}".format(char))

    def _scan_string(self) -> str:
        self._take()  # opening quote
        pieces: List[str] = []
        while True:
            if self._position >= len(self._text):
                raise self._error("unterminated string literal")
            char = self._take()
            if char == '"':
                return "".join(pieces)
            if char == "\\":
                escape = self._take()
                if escape == "u":
                    digits = "".join(self._take() for _ in range(4))
                    try:
                        code = int(digits, 16)
                    except ValueError:
                        raise self._error(
                            "bad unicode escape \\u" + digits
                        ) from None
                    if (
                        0xD800 <= code <= 0xDBFF
                        and self._peek() == "\\"
                        and self._peek(1) == "u"
                    ):
                        self._take()
                        self._take()
                        low_digits = "".join(
                            self._take() for _ in range(4)
                        )
                        try:
                            low = int(low_digits, 16)
                        except ValueError:
                            raise self._error(
                                "bad unicode escape \\u" + low_digits
                            ) from None
                        code = 0x10000 + ((code - 0xD800) << 10) + (
                            low - 0xDC00
                        )
                    pieces.append(chr(code))
                elif escape in _ESCAPES:
                    pieces.append(_ESCAPES[escape])
                else:
                    raise self._error("bad escape \\" + escape)
            else:
                pieces.append(char)

    def _scan_number(self, line: int, column: int) -> Token:
        digits: List[str] = []
        kind = "integer"
        while self._peek().isdigit():
            digits.append(self._take())
        if self._peek() == "." and self._peek(1).isdigit():
            kind = "decimal"
            digits.append(self._take())
            while self._peek().isdigit():
                digits.append(self._take())
        elif self._peek() == "." and not (
            self._peek(1).isalpha() or self._peek(1) == "_"
        ):
            # "1." is a decimal; "1.foo" is integer then object lookup.
            kind = "decimal"
            digits.append(self._take())
        if self._peek() in "eE":
            follower = self._peek(1)
            if follower.isdigit() or (
                follower in "+-" and self._peek(2).isdigit()
            ):
                kind = "double"
                digits.append(self._take())
                if self._peek() in "+-":
                    digits.append(self._take())
                while self._peek().isdigit():
                    digits.append(self._take())
        return Token(kind, "".join(digits), line, column)

    def _scan_name(self, line: int, column: int) -> Token:
        chars: List[str] = [self._take()]
        while True:
            char = self._peek()
            if char.isalnum() or char == "_":
                chars.append(self._take())
            elif char == "-" and (self._peek(1).isalnum() or self._peek(1) == "_"):
                chars.append(self._take())
            elif (
                char == ":"
                and (self._peek(1).isalpha() or self._peek(1) == "_")
                and "".join(chars) in NAME_PREFIXES
            ):
                # Namespace-qualified name such as local:fact.
                chars.append(self._take())
            else:
                break
        text = "".join(chars)
        kind = "keyword" if text in KEYWORDS else "name"
        return Token(kind, text, line, column)


def tokenize(text: str) -> List[Token]:
    """Tokenize JSONiq query text."""
    return Lexer(text).tokenize()
