"""Code generation: the expression/clause tree becomes runtime iterators.

This is the third compiler stage of the paper's Section 5.1.  The visitor
walks the analysed AST and builds the matching iterator for each node.
The FLWOR path also runs the *variable usage analysis* of Section 4.7:
non-grouping variables that are only counted downstream are aggregated
with COUNT() instead of being materialized, and unused ones are dropped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.jsoniq import ast
from repro.jsoniq.analysis.types import (
    SType,
    comparison_family,
    is_numeric_kind,
)
from repro.jsoniq.errors import StaticException
from repro.jsoniq.functions.registry import build_function_iterator, is_builtin
from repro.jsoniq.functions.udf import UdfCallIterator, UserFunction
from repro.jsoniq.runtime.arithmetic import (
    BinaryArithmeticIterator,
    UnarySignIterator,
)
from repro.jsoniq.runtime.base import RuntimeIterator
from repro.jsoniq.runtime.comparison import (
    AndIterator,
    ComparisonIterator,
    NotIterator,
    OrIterator,
)
from repro.jsoniq.runtime.control import (
    CastIterator,
    IfIterator,
    InstanceOfIterator,
    QuantifiedIterator,
    RangeIterator,
    StringConcatIterator,
    SwitchIterator,
    TreatIterator,
    TryCatchIterator,
)
from repro.jsoniq.runtime.flwor.clauses import (
    ClauseIterator,
    CountClauseIterator,
    ForClauseIterator,
    GroupByClauseIterator,
    LetClauseIterator,
    OrderByClauseIterator,
    ReturnClauseIterator,
    USAGE_COUNT_ONLY,
    USAGE_MATERIALIZE,
    USAGE_UNUSED,
    WhereClauseIterator,
    WindowClauseIterator,
)
from repro.jsoniq.runtime.navigation import (
    ArrayLookupIterator,
    ArrayUnboxingIterator,
    ObjectLookupIterator,
    PredicateIterator,
    SimpleMapIterator,
)
from repro.jsoniq.runtime.dynamic_context import DynamicContext
from repro.jsoniq.runtime.primary import (
    ArrayConstructorIterator,
    CommaIterator,
    ContextItemIterator,
    EmptySequenceIterator,
    FoldedConstantIterator,
    LiteralIterator,
    ObjectConstructorIterator,
    VariableIterator,
)


def _contains_parameter_slot(node: ast.AstNode) -> bool:
    """Whether any literal under ``node`` was lifted into a plan-cache
    parameter slot (its value changes per run — never foldable)."""
    stack: List[ast.AstNode] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Literal) \
                and getattr(current, "parameter_slot", None) is not None:
            return True
        stack.extend(current.children())
    return False


class Compiler:
    """Builds the runtime iterator tree for one main module."""

    def __init__(self) -> None:
        self._functions: Dict[Tuple[str, int], UserFunction] = {}
        self._function_decls: Dict[Tuple[str, int],
                                   ast.FunctionDeclaration] = {}
        #: How often each type-driven rewrite fired; surfaced by the
        #: profiler as ``rumble.static.fastpath`` counters.
        self.stats: Dict[str, int] = {
            "const_fold": 0,
            "count_fold": 0,
            "fast_arithmetic": 0,
            "fast_comparison": 0,
            "treat_wrapped": 0,
        }

    def compile_module(
        self, module: ast.MainModule
    ) -> Tuple[RuntimeIterator, List[Tuple[str, RuntimeIterator]]]:
        """Compile a module, returning the main iterator and the global
        variable initializers (name, iterator) in declaration order."""
        # Register user functions first so recursion resolves.
        for declaration in module.declarations:
            if isinstance(declaration, ast.FunctionDeclaration):
                key = (declaration.name, len(declaration.parameters))
                self._functions[key] = UserFunction(
                    declaration.name, declaration.parameters
                )
                self._function_decls[key] = declaration
        for declaration in module.declarations:
            if isinstance(declaration, ast.FunctionDeclaration):
                key = (declaration.name, len(declaration.parameters))
                body = self.compile(declaration.body)
                return_type = getattr(declaration, "return_type", None)
                if return_type is not None:
                    body = self._treat(body, return_type)
                self._functions[key].body = body
        globals_: List[Tuple[str, RuntimeIterator]] = []
        for declaration in module.declarations:
            if (
                isinstance(declaration, ast.VariableDeclaration)
                and declaration.expression is not None
            ):
                initializer = self.compile(declaration.expression)
                declared = getattr(declaration, "declared_type", None)
                if declared is not None:
                    initializer = self._treat(initializer, declared)
                globals_.append((declaration.name, initializer))
        return self.compile(module.expression), globals_

    def _treat(self, iterator: RuntimeIterator,
               sequence_type: ast.SequenceType) -> RuntimeIterator:
        """Enforce a declared type at run time.

        Static inference trusts declared types, so they must hold
        dynamically — a treat wrapper turns a lying annotation into the
        ``XPTY0004`` the annotation promised to rule out.
        """
        self.stats["treat_wrapped"] += 1
        return TreatIterator(iterator, sequence_type)

    # -- Expression dispatch ---------------------------------------------------
    def compile(self, node: ast.Expression) -> RuntimeIterator:
        method = getattr(
            self, "_compile_" + type(node).__name__, None
        )
        if method is None:
            raise StaticException(
                "no compilation rule for {}".format(type(node).__name__)
            )
        iterator = method(node)
        folded = self._maybe_fold(node, iterator)
        return iterator if folded is None else folded

    #: Operator nodes worth folding when constant: actual computations,
    #: mirroring the linter's RBL003 scope (literal sequences and
    #: ranges are data an author wrote down, not work to hoist).
    _FOLDABLE = (
        ast.BinaryExpression, ast.UnaryExpression,
        ast.ComparisonExpression, ast.StringConcatExpression,
    )

    def _maybe_fold(self, node: ast.Expression,
                    iterator: RuntimeIterator) -> Optional[RuntimeIterator]:
        """RBL003 applied: evaluate a constant computation at compile
        time and emit its single-item result as a constant.

        Strictly conservative: only effect-free operator subtrees the
        analyser proved constant, with a static arity of exactly one,
        containing no plan-cache parameter slot (the slot's value
        changes per run), and whose evaluation *succeeds* — a raising
        subtree stays unfolded so runtime errors like ``1 div 0``
        surface exactly where the author wrote them.
        """
        if not isinstance(node, self._FOLDABLE):
            return None
        if not getattr(node, "is_constant", False):
            return None
        static_type = getattr(node, "static_type", None)
        if not isinstance(static_type, SType) \
                or static_type.exact_count() != 1:
            return None
        if _contains_parameter_slot(node):
            return None
        try:
            items = iterator.materialize_local(DynamicContext(), limit=2)
        except Exception:
            return None
        if len(items) != 1:
            return None
        self.stats["const_fold"] += 1
        return FoldedConstantIterator(items[0])

    def _compile_Literal(self, node: ast.Literal) -> RuntimeIterator:
        slot = getattr(node, "parameter_slot", None)
        if slot is not None:
            # The plan cache marked this literal as a run-time parameter
            # (see repro.server.plan_cache): compile a slot reader, not a
            # constant, so the plan can be reused with other values.
            from repro.jsoniq.runtime.primary import ParameterIterator

            return ParameterIterator(slot, node.kind, node.value)
        return LiteralIterator(node.kind, node.value)

    def _compile_EmptySequence(self, node) -> RuntimeIterator:
        return EmptySequenceIterator()

    def _compile_VariableReference(self, node) -> RuntimeIterator:
        return VariableIterator(node.name)

    def _compile_ContextItem(self, node) -> RuntimeIterator:
        return ContextItemIterator()

    def _compile_CommaExpression(self, node) -> RuntimeIterator:
        return CommaIterator([self.compile(e) for e in node.expressions])

    def _compile_ObjectConstructor(self, node) -> RuntimeIterator:
        return ObjectConstructorIterator(
            [(self.compile(k), self.compile(v)) for k, v in node.pairs]
        )

    def _compile_ArrayConstructor(self, node) -> RuntimeIterator:
        return ArrayConstructorIterator(
            self.compile(node.content) if node.content else None
        )

    def _compile_BinaryExpression(self, node) -> RuntimeIterator:
        left = self.compile(node.left)
        right = self.compile(node.right)
        if node.op == "and":
            return AndIterator(left, right)
        if node.op == "or":
            return OrIterator(left, right)
        # Type-driven win #1: when inference proved both operands are
        # single numerics, the iterator skips the materialize/singleton/
        # atomicity checks on every evaluation.
        static_numeric = _is_single_numeric(node.left) and \
            _is_single_numeric(node.right)
        if static_numeric:
            self.stats["fast_arithmetic"] += 1
        return BinaryArithmeticIterator(
            node.op, left, right, static_numeric=static_numeric
        )

    def _compile_UnaryExpression(self, node) -> RuntimeIterator:
        operand = self.compile(node.operand)
        if node.op == "not":
            return NotIterator(operand)
        return UnarySignIterator(node.op, operand)

    def _compile_ComparisonExpression(self, node) -> RuntimeIterator:
        # Type-driven win #2: a value comparison between two provably
        # single comparable atomics skips the per-side checks.
        static_atomic = (
            node.op in ("eq", "ne", "lt", "le", "gt", "ge")
            and _is_single_comparable(node.left)
            and _is_single_comparable(node.right)
        )
        if static_atomic:
            self.stats["fast_comparison"] += 1
        return ComparisonIterator(
            node.op, self.compile(node.left), self.compile(node.right),
            static_atomic=static_atomic,
        )

    def _compile_RangeExpression(self, node) -> RuntimeIterator:
        return RangeIterator(self.compile(node.start), self.compile(node.end))

    def _compile_StringConcatExpression(self, node) -> RuntimeIterator:
        iterator = StringConcatIterator()
        iterator.children = [self.compile(part) for part in node.parts]
        return iterator

    def _compile_InstanceOfExpression(self, node) -> RuntimeIterator:
        return InstanceOfIterator(self.compile(node.operand), node.sequence_type)

    def _compile_TreatExpression(self, node) -> RuntimeIterator:
        return TreatIterator(self.compile(node.operand), node.sequence_type)

    def _compile_CastExpression(self, node) -> RuntimeIterator:
        return CastIterator(
            self.compile(node.operand),
            node.type_name,
            node.allows_empty,
            node.castable,
        )

    def _compile_ObjectLookup(self, node) -> RuntimeIterator:
        return ObjectLookupIterator(
            self.compile(node.source), self.compile(node.key)
        )

    def _compile_ArrayLookup(self, node) -> RuntimeIterator:
        return ArrayLookupIterator(
            self.compile(node.source), self.compile(node.index)
        )

    def _compile_ArrayUnboxing(self, node) -> RuntimeIterator:
        return ArrayUnboxingIterator(self.compile(node.source))

    def _compile_Predicate(self, node) -> RuntimeIterator:
        return PredicateIterator(
            self.compile(node.source), self.compile(node.condition)
        )

    def _compile_SimpleMap(self, node) -> RuntimeIterator:
        return SimpleMapIterator(
            self.compile(node.source), self.compile(node.mapper)
        )

    def _compile_IfExpression(self, node) -> RuntimeIterator:
        return IfIterator(
            self.compile(node.condition),
            self.compile(node.then_branch),
            self.compile(node.else_branch),
        )

    def _compile_SwitchExpression(self, node) -> RuntimeIterator:
        return SwitchIterator(
            self.compile(node.subject),
            [
                ([self.compile(test) for test in tests], self.compile(result))
                for tests, result in node.cases
            ],
            self.compile(node.default),
        )

    def _compile_TypeswitchExpression(self, node) -> RuntimeIterator:
        from repro.jsoniq.runtime.control import TypeswitchIterator

        return TypeswitchIterator(
            self.compile(node.subject),
            [
                (variable, sequence_type, self.compile(result))
                for variable, sequence_type, result in node.cases
            ],
            node.default_variable,
            self.compile(node.default),
        )

    def _compile_TryCatchExpression(self, node) -> RuntimeIterator:
        return TryCatchIterator(
            self.compile(node.try_expr),
            self.compile(node.catch_expr),
            node.codes,
        )

    def _compile_QuantifiedExpression(self, node) -> RuntimeIterator:
        return QuantifiedIterator(
            node.quantifier,
            [(name, self.compile(expr)) for name, expr in node.bindings],
            self.compile(node.condition),
        )

    def _compile_FunctionCall(self, node) -> RuntimeIterator:
        # Type-driven win #3: count() of a side-effect-free argument
        # whose length inference pinned exactly folds to a literal.
        folded = self._fold_count(node)
        if folded is not None:
            return folded
        arguments = [self.compile(argument) for argument in node.arguments]
        if node.name == "count" and len(arguments) == 1:
            # ``count(for ... return $v)``: the bare-variable return only
            # feeds a cardinality, so the scan may still project.
            plan = getattr(arguments[0], "pushdown_plan", None)
            if plan is not None and plan.bare_return:
                plan.count_only = True
        if is_builtin(node.name, len(arguments)):
            return build_function_iterator(node.name, arguments)
        key = (node.name, len(arguments))
        function = self._functions.get(key)
        if function is None:
            raise StaticException(
                "unknown function {}#{}".format(node.name, len(arguments)),
                code="XPST0017",
            )
        declaration = self._function_decls.get(key)
        parameter_types = (
            getattr(declaration, "parameter_types", None) or []
        ) if declaration is not None else []
        for index, parameter_type in enumerate(parameter_types):
            if parameter_type is not None and index < len(arguments):
                arguments[index] = self._treat(
                    arguments[index], parameter_type
                )
        return UdfCallIterator(function, arguments)

    def _fold_count(self, node: ast.FunctionCall
                    ) -> Optional[RuntimeIterator]:
        if node.name != "count" or len(node.arguments) != 1:
            return None
        argument = node.arguments[0]
        # Only nodes whose evaluation cannot fail or have effects — a
        # folded count must not hide its argument's runtime errors.
        if not isinstance(argument, (
            ast.VariableReference, ast.Literal, ast.EmptySequence,
            ast.ContextItem,
        )):
            return None
        static_type = getattr(argument, "static_type", None)
        if not isinstance(static_type, SType):
            return None
        exact = static_type.exact_count()
        if exact is None:
            return None
        self.stats["count_fold"] += 1
        return LiteralIterator("integer", exact)

    # -- FLWOR -------------------------------------------------------------------
    def _compile_FlworExpression(self, node: ast.FlworExpression
                                 ) -> RuntimeIterator:
        chain: Optional[ClauseIterator] = None
        bound_so_far: List[str] = []
        for index, clause in enumerate(node.clauses):
            if isinstance(clause, ast.ForClause):
                source = self.compile(clause.expression)
                declared = getattr(clause, "declared_type", None)
                if declared is not None:
                    # Every bound item must match the item type; the
                    # source as a whole may have any length.
                    source = self._treat(source, ast.SequenceType(
                        declared.item_type, "*"
                    ))
                chain = ForClauseIterator(
                    chain,
                    clause.variable,
                    source,
                    allowing_empty=clause.allowing_empty,
                    position_variable=clause.position_variable,
                )
                bound_so_far.append(clause.variable)
                if clause.position_variable:
                    bound_so_far.append(clause.position_variable)
            elif isinstance(clause, ast.WindowClause):
                chain = WindowClauseIterator(
                    chain,
                    clause.kind,
                    clause.variable,
                    self.compile(clause.expression),
                    clause.start.variables,
                    self.compile(clause.start.when),
                    end_vars=(
                        clause.end.variables if clause.end else None
                    ),
                    end_when=(
                        self.compile(clause.end.when) if clause.end else None
                    ),
                    end_only=(clause.end.only if clause.end else False),
                )
                bound_so_far.append(clause.variable)
                bound_so_far.extend(clause.start.variables.names())
                if clause.end is not None:
                    bound_so_far.extend(clause.end.variables.names())
            elif isinstance(clause, ast.LetClause):
                binding = self.compile(clause.expression)
                declared = getattr(clause, "declared_type", None)
                if declared is not None:
                    binding = self._treat(binding, declared)
                chain = LetClauseIterator(
                    chain, clause.variable, binding
                )
                bound_so_far.append(clause.variable)
            elif isinstance(clause, ast.WhereClause):
                chain = WhereClauseIterator(
                    chain, self.compile(clause.condition)
                )
            elif isinstance(clause, ast.GroupByClause):
                keys = [
                    (
                        key.variable,
                        self.compile(key.expression)
                        if key.expression else None,
                    )
                    for key in clause.keys
                ]
                key_names = {key.variable for key in clause.keys}
                usage = _analyse_group_usage(
                    node.clauses[index + 1:],
                    [name for name in bound_so_far if name not in key_names],
                )
                chain = GroupByClauseIterator(chain, keys, usage)
                bound_so_far = [
                    name for name in bound_so_far if name not in key_names
                ] + list(key_names)
            elif isinstance(clause, ast.OrderByClause):
                chain = OrderByClauseIterator(
                    chain,
                    [
                        (
                            self.compile(spec.expression),
                            spec.ascending,
                            spec.empty_greatest,
                        )
                        for spec in clause.specs
                    ],
                    stable=clause.stable,
                )
            elif isinstance(clause, ast.CountClause):
                chain = CountClauseIterator(chain, clause.variable)
                bound_so_far.append(clause.variable)
            elif isinstance(clause, ast.ReturnClause):
                result = ReturnClauseIterator(
                    chain, self.compile(clause.expression)
                )
                # Scan pushdown + top-k planning (dormant until a runtime
                # with config.pushdown enables them).
                from repro.jsoniq.runtime.flwor import pushdown

                pushdown.annotate(node, result)
                cgplan = getattr(result, "codegen_plan", None)
                if cgplan is not None and cgplan.supported:
                    # Surface the emitter's per-shape specialization
                    # tally next to the static-fastpath stats; the
                    # profiler splits the ``codegen_`` prefix back out
                    # as ``rumble.codegen.specialized`` counters.
                    for kind, fired in cgplan.stage.specializations.items():
                        key = "codegen_" + kind
                        self.stats[key] = self.stats.get(key, 0) + fired
                return result
        raise StaticException("FLWOR without return clause")


def _is_single_numeric(node: ast.AstNode) -> bool:
    static_type = getattr(node, "static_type", None)
    return (
        isinstance(static_type, SType)
        and static_type.is_one
        and is_numeric_kind(static_type.kind)
    )


def _is_single_comparable(node: ast.AstNode) -> bool:
    static_type = getattr(node, "static_type", None)
    return (
        isinstance(static_type, SType)
        and static_type.is_one
        and comparison_family(static_type.kind) is not None
    )


def _analyse_group_usage(
    downstream: List[ast.Clause], non_grouping: List[str]
) -> Dict[str, str]:
    """Classify each non-grouping variable's use after the group-by.

    ``count`` — every reference is the sole argument of ``count()``;
    ``unused`` — no reference at all; ``materialize`` — anything else.
    A later clause re-binding the variable ends its old life.
    """
    usage: Dict[str, str] = {name: USAGE_UNUSED for name in non_grouping}
    alive = set(non_grouping)

    def scan(node: ast.AstNode) -> None:
        if isinstance(node, ast.FunctionCall) and node.name == "count" and \
                len(node.arguments) == 1 and isinstance(
                    node.arguments[0], ast.VariableReference):
            name = node.arguments[0].name
            if name in alive:
                if usage[name] == USAGE_UNUSED:
                    usage[name] = USAGE_COUNT_ONLY
                return
        if isinstance(node, ast.VariableReference) and node.name in alive:
            usage[node.name] = USAGE_MATERIALIZE
            return
        for child in node.children():
            scan(child)

    for clause in downstream:
        for child in clause.children():
            scan(child)
        # Re-declarations shadow the grouped variable from here on.
        if isinstance(clause, (ast.ForClause, ast.LetClause)):
            alive.discard(clause.variable)
        elif isinstance(clause, ast.GroupByClause):
            for key in clause.keys:
                alive.discard(key.variable)
        elif isinstance(clause, ast.CountClause):
            alive.discard(clause.variable)
    return usage


def compile_main_module(module: ast.MainModule):
    """Convenience wrapper used by the engine."""
    return Compiler().compile_module(module)
