"""Render an analysed module as an annotated static plan.

Used by ``Rumble.explain(query)``: every line shows the node label plus
its inferred sequence type and planned execution mode, so a user can see
*before running anything* which part of the query stays on the driver
and which part the engine will push to the cluster.
"""

from __future__ import annotations

from typing import List

from repro.jsoniq import ast


def _label(node: ast.AstNode) -> str:
    name = type(node).__name__
    extra = ""
    if isinstance(node, ast.Literal):
        extra = " {!r}".format(node.value)
    elif isinstance(node, ast.VariableReference):
        extra = " ${}".format(node.name)
    elif isinstance(node, ast.FunctionCall):
        extra = " {}#{}".format(node.name, len(node.arguments))
    elif isinstance(node, (ast.BinaryExpression,
                           ast.ComparisonExpression,
                           ast.UnaryExpression)):
        extra = " {}".format(node.op)
    elif isinstance(node, (ast.ForClause, ast.LetClause,
                           ast.CountClause, ast.WindowClause)):
        extra = " ${}".format(node.variable)
    elif isinstance(node, ast.ObjectLookup):
        key = node.key
        if isinstance(key, ast.Literal):
            extra = " .{}".format(key.value)
    return name + extra


def _annotate(node: ast.AstNode) -> str:
    static_type = getattr(node, "static_type", None)
    mode = getattr(node, "execution_mode", None)
    return "{}  [type={}, mode={}]".format(
        _label(node), static_type if static_type else "item*",
        mode if mode else "local",
    )


def render_node(node: ast.AstNode, indent: int = 0,
                lines: List[str] = None) -> List[str]:
    if lines is None:
        lines = []
    lines.append("  " * indent + _annotate(node))
    for child in node.children():
        render_node(child, indent + 1, lines)
    return lines


def render_module(module: ast.MainModule) -> str:
    lines = ["Static plan"]
    for declaration in module.declarations:
        if isinstance(declaration, ast.FunctionDeclaration):
            lines.append("declare function {}#{}".format(
                declaration.name, len(declaration.parameters)
            ))
            render_node(declaration.body, 1, lines)
        elif isinstance(declaration, ast.VariableDeclaration):
            lines.append("declare variable ${}".format(declaration.name))
            if declaration.expression is not None:
                render_node(declaration.expression, 1, lines)
    render_node(module.expression, 0, lines)
    return "\n".join(lines)
