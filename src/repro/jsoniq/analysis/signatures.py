"""Static signatures for every builtin in the function registry.

Each entry gives the parameter types the runtime implementation will
accept and the (possibly argument-dependent) return type, plus the
execution mode the function *seeds* — ``rdd`` for the partitioned input
readers, ``dataframe`` for the structured read path.

Parameter types are deliberately no tighter than the runtime: the
analyzer raises a static error only when an argument type can *never*
match (``may_match`` is false), so a too-narrow parameter here would
reject queries that run fine.  ``tests/test_analysis_types.py`` asserts
that every registered builtin/arity pair has an explicit entry, so a new
builtin without a signature fails CI.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.jsoniq.analysis import modes
from repro.jsoniq.analysis.types import (
    ONE,
    OPTIONAL,
    PLUS,
    STAR,
    SType,
    is_numeric_kind,
)

ReturnRule = Union[SType, Callable[[List[SType]], SType]]


class Signature:
    """Parameter types, return rule and seeded mode of one builtin."""

    def __init__(self, params: List[SType], returns: ReturnRule,
                 mode: Optional[str] = None, variadic: bool = False):
        self.params = params
        self.returns = returns
        self.mode = mode
        self.variadic = variadic

    def param_at(self, index: int) -> SType:
        if index < len(self.params):
            return self.params[index]
        if self.variadic and self.params:
            return self.params[-1]
        return SType("item", STAR)

    def return_type(self, arg_types: List[SType]) -> SType:
        if callable(self.returns):
            return self.returns(arg_types)
        return self.returns


def _t(kind: str, arity: str = ONE) -> SType:
    return SType(kind, arity)


# -- argument-dependent return rules ----------------------------------------

def _prime(args: List[SType], arity: str) -> SType:
    """The first argument's item kind with a fixed occurrence."""
    kind = args[0].kind if args else "item"
    return SType(kind, arity)


def _prime_opt(args: List[SType]) -> SType:
    return _prime(args, OPTIONAL)


def _prime_star(args: List[SType]) -> SType:
    return _prime(args, STAR)


def _prime_plus(args: List[SType]) -> SType:
    return _prime(args, PLUS)


def _prime_one(args: List[SType]) -> SType:
    return _prime(args, ONE)


def _numeric(args: List[SType], arity: str) -> SType:
    """Numeric result preserving the argument's numeric kind."""
    kind = args[0].kind if args and is_numeric_kind(args[0].kind) else "number"
    return SType(kind, arity)


def _numeric_preserve(args: List[SType]) -> SType:
    arity = OPTIONAL if (not args or args[0].can_be_empty) else ONE
    return _numeric(args, arity)


#: (name, arity) -> Signature.  Shared param shorthands below.
_ITEMS = _t("item", STAR)
_ITEM_OPT = _t("item", OPTIONAL)
_ATOMICS = _t("atomic", STAR)
_ATOMIC_OPT = _t("atomic", OPTIONAL)
_STR = _t("string")
_STR_OPT = _t("string", OPTIONAL)
_NUM = _t("number")
_NUM_OPT = _t("number", OPTIONAL)
_NUMS = _t("number", STAR)
_INT = _t("integer")
_INT_OPT = _t("integer", OPTIONAL)
_BOOL = _t("boolean")
_DUR_OPT = _t("duration", OPTIONAL)
_DATE_OPT = _t("date", OPTIONAL)
_DATETIME_OPT = _t("dateTime", OPTIONAL)
_TIME_OPT = _t("time", OPTIONAL)

SIGNATURES: Dict[Tuple[str, int], Signature] = {}


def _sig(name: str, arities, params: List[SType], returns: ReturnRule,
         mode: Optional[str] = None, variadic: bool = False) -> None:
    for arity in arities:
        SIGNATURES[(name, arity)] = Signature(
            params, returns, mode=mode, variadic=variadic
        )


# -- sequences ---------------------------------------------------------------
_sig("count", [1], [_ITEMS], _INT)
_sig("empty", [1], [_ITEMS], _BOOL)
_sig("exists", [1], [_ITEMS], _BOOL)
_sig("head", [1], [_ITEMS], _prime_opt)
_sig("tail", [1], [_ITEMS], _prime_star)
_sig("last-item", [1], [_ITEMS], _prime_opt)
_sig("reverse", [1], [_ITEMS], _prime_star)
_sig("insert-before", [3], [_ITEMS, _INT, _ITEMS], _ITEMS)
_sig("remove", [2], [_ITEMS, _INT], _prime_star)
_sig("subsequence", [2, 3], [_ITEMS, _NUM, _NUM_OPT], _prime_star)
_sig("distinct-values", [1], [_ATOMICS], _prime_star)
_sig("index-of", [2], [_ATOMICS, _ATOMIC_OPT], _t("integer", STAR))
_sig("deep-equal", [2], [_ITEMS, _ITEMS], _BOOL)
_sig("exactly-one", [1], [_ITEMS], _prime_one)
_sig("one-or-more", [1], [_ITEMS], _prime_plus)
_sig("zero-or-one", [1], [_ITEMS], _prime_opt)
_sig("last", [0], [], _INT)
_sig("position", [0], [], _INT)
_sig("accumulate", [1], [_ITEMS], _ITEMS)
_sig("sliding-window", [2], [_ITEMS, _INT], _t("array", STAR))
_sig("tumbling-window", [2], [_ITEMS, _INT], _t("array", STAR))

# -- aggregates --------------------------------------------------------------
_sig("sum", [1], [_NUMS], _NUM)
_sig("sum", [2], [_NUMS, _ATOMIC_OPT], _t("number", OPTIONAL))
_sig("avg", [1], [_NUMS], _NUM_OPT)
_sig("min", [1], [_ATOMICS], _prime_opt)
_sig("max", [1], [_ATOMICS], _prime_opt)

# -- numerics ----------------------------------------------------------------
_sig("abs", [1], [_NUM_OPT], _numeric_preserve)
_sig("ceiling", [1], [_NUM_OPT], _numeric_preserve)
_sig("floor", [1], [_NUM_OPT], _numeric_preserve)
_sig("round", [1], [_NUM_OPT], _numeric_preserve)
_sig("round", [2], [_NUM_OPT, _INT], _numeric_preserve)
_sig("exp", [1], [_NUM_OPT], _t("double", OPTIONAL))
_sig("log", [1], [_NUM_OPT], _t("double", OPTIONAL))
_sig("sqrt", [1], [_NUM_OPT], _t("double", OPTIONAL))
_sig("pow", [2], [_NUM_OPT, _NUM], _t("number", OPTIONAL))
_sig("number", [1], [_ATOMIC_OPT], _t("double", OPTIONAL))

# -- strings -----------------------------------------------------------------
_sig("concat", [2, 3, 4, 5, 6, 7, 8], [_ATOMIC_OPT], _STR, variadic=True)
_sig("string", [1], [_ATOMIC_OPT], _STR)
_sig("string-join", [1], [_ATOMICS], _STR)
_sig("string-join", [2], [_ATOMICS, _STR], _STR)
_sig("string-length", [1], [_STR_OPT], _INT_OPT)
_sig("substring", [2, 3], [_STR_OPT, _NUM, _NUM_OPT], _STR_OPT)
_sig("substring-after", [2], [_STR_OPT, _STR_OPT], _STR_OPT)
_sig("substring-before", [2], [_STR_OPT, _STR_OPT], _STR_OPT)
_sig("upper-case", [1], [_STR_OPT], _STR_OPT)
_sig("lower-case", [1], [_STR_OPT], _STR_OPT)
_sig("normalize-space", [1], [_STR_OPT], _STR)
_sig("contains", [2], [_STR_OPT, _STR_OPT], _BOOL)
_sig("starts-with", [2], [_STR_OPT, _STR_OPT], _BOOL)
_sig("ends-with", [2], [_STR_OPT, _STR_OPT], _BOOL)
_sig("matches", [2], [_STR_OPT, _STR], _BOOL)
_sig("replace", [3], [_STR_OPT, _STR, _STR], _STR_OPT)
_sig("tokenize", [1, 2], [_STR_OPT, _STR], _t("string", STAR))
_sig("serialize", [1], [_ITEM_OPT], _STR)

# -- constructors and booleans ----------------------------------------------
_sig("boolean", [1], [_ITEMS], _BOOL)
_sig("null", [0], [], _t("null"))
_sig("integer", [1], [_ATOMIC_OPT], _INT_OPT)
_sig("decimal", [1], [_ATOMIC_OPT], _t("decimal", OPTIONAL))
_sig("double", [1], [_ATOMIC_OPT], _t("double", OPTIONAL))

# -- temporal ----------------------------------------------------------------
_sig("date", [1], [_ATOMIC_OPT], _DATE_OPT)
_sig("dateTime", [1], [_ATOMIC_OPT], _DATETIME_OPT)
_sig("time", [1], [_ATOMIC_OPT], _TIME_OPT)
_sig("duration", [1], [_ATOMIC_OPT], _DUR_OPT)
_sig("current-date", [0], [], _t("date"))
_sig("current-dateTime", [0], [], _t("dateTime"))
_sig("current-time", [0], [], _t("time"))
_sig("year-from-date", [1], [_DATE_OPT], _INT_OPT)
_sig("month-from-date", [1], [_DATE_OPT], _INT_OPT)
_sig("day-from-date", [1], [_DATE_OPT], _INT_OPT)
_sig("year-from-dateTime", [1], [_DATETIME_OPT], _INT_OPT)
_sig("month-from-dateTime", [1], [_DATETIME_OPT], _INT_OPT)
_sig("day-from-dateTime", [1], [_DATETIME_OPT], _INT_OPT)
_sig("hours-from-dateTime", [1], [_DATETIME_OPT], _INT_OPT)
_sig("minutes-from-dateTime", [1], [_DATETIME_OPT], _INT_OPT)
_sig("seconds-from-dateTime", [1], [_DATETIME_OPT],
     _t("decimal", OPTIONAL))
_sig("hours-from-time", [1], [_TIME_OPT], _INT_OPT)
_sig("minutes-from-time", [1], [_TIME_OPT], _INT_OPT)
_sig("seconds-from-time", [1], [_TIME_OPT], _t("decimal", OPTIONAL))
_sig("years-from-duration", [1], [_DUR_OPT], _INT_OPT)
_sig("months-from-duration", [1], [_DUR_OPT], _INT_OPT)
_sig("days-from-duration", [1], [_DUR_OPT], _INT_OPT)
_sig("hours-from-duration", [1], [_DUR_OPT], _INT_OPT)
_sig("minutes-from-duration", [1], [_DUR_OPT], _INT_OPT)
_sig("seconds-from-duration", [1], [_DUR_OPT], _t("decimal", OPTIONAL))

# -- objects and arrays ------------------------------------------------------
_sig("keys", [1], [_ITEMS], _t("string", STAR))
_sig("values", [1], [_ITEMS], _ITEMS)
_sig("members", [1], [_ITEMS], _ITEMS)
_sig("size", [1], [_t("array", OPTIONAL)], _INT_OPT)
_sig("flatten", [1], [_ITEMS], _ITEMS)
_sig("project", [2], [_ITEMS, _t("string", STAR)], _ITEMS)
_sig("remove-keys", [2], [_ITEMS, _t("string", STAR)], _ITEMS)
_sig("descendant-arrays", [1], [_ITEMS], _t("array", STAR))
_sig("descendant-objects", [1], [_ITEMS], _t("object", STAR))
_sig("annotate", [2], [_ITEMS, _t("object")], _ITEMS)
_sig("is-valid", [2], [_ITEMS, _ITEMS], _BOOL)
_sig("validate", [2], [_ITEMS, _ITEMS], _ITEMS)

# -- input sources (mode seeds, paper Section 5.7) ---------------------------
_sig("json-file", [1, 2], [_STR, _INT_OPT], _ITEMS, mode=modes.RDD)
_sig("json-lines", [1, 2], [_STR, _INT_OPT], _ITEMS, mode=modes.RDD)
_sig("structured-json-file", [1, 2], [_STR, _INT_OPT],
     _t("object", STAR), mode=modes.DATAFRAME)
_sig("text-file", [1, 2], [_STR, _INT_OPT], _t("string", STAR),
     mode=modes.RDD)
_sig("csv-file", [1, 2], [_STR, _INT_OPT], _t("object", STAR),
     mode=modes.RDD)
_sig("collection", [1], [_STR], _ITEMS, mode=modes.RDD)
_sig("parallelize", [1], [_ITEMS], _prime_star, mode=modes.RDD)
_sig("parallelize", [2], [_ITEMS, _INT], _prime_star, mode=modes.RDD)
_sig("json-doc", [1], [_STR_OPT], _ITEM_OPT)
_sig("parse-json", [1], [_STR_OPT], _ITEMS)


def signature_for(name: str, arity: int) -> Optional[Signature]:
    """The signature of a registered builtin, or None for UDF names."""
    return SIGNATURES.get((name, arity))
