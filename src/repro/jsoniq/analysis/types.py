"""The JSONiq sequence-type lattice used by static inference.

A static type is an *item kind* (a node in the kind tree below) plus an
*arity* — one of the JSONiq occurrence indicators ``()`` (empty), ``""``
(exactly one), ``?``, ``*`` and ``+``.  The lattice supports the three
operations inference needs:

* :func:`subtype` — is every instance of one type an instance of another;
* :func:`lub` — the least upper bound (for ``if``/``switch`` branches and
  comma expressions);
* :func:`may_match` — whether the instance sets of two types intersect at
  all, which is what turns "this argument can never satisfy the
  parameter" into a compile-time ``XPTY0004``.

The kind tree follows the JSONiq data model: ``item`` splits into
``atomic`` and ``json-item``; atomics split into strings, booleans,
nulls, numbers and the temporal kinds; numbers refine ``decimal`` into
``integer`` (the only multi-level chain, mirroring XML Schema).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: child kind -> parent kind; ``item`` is the root.
_PARENT: Dict[str, str] = {
    "atomic": "item",
    "json-item": "item",
    "object": "json-item",
    "array": "json-item",
    "string": "atomic",
    "boolean": "atomic",
    "null": "atomic",
    "number": "atomic",
    "decimal": "number",
    "double": "number",
    "integer": "decimal",
    "date": "atomic",
    "dateTime": "atomic",
    "time": "atomic",
    "duration": "atomic",
    "dayTimeDuration": "duration",
    "yearMonthDuration": "duration",
}

KINDS = frozenset(_PARENT) | {"item"}

#: occurrence indicator -> (minimum count, maximum count; None = unbounded)
_ARITY_RANGE: Dict[str, Tuple[int, Optional[int]]] = {
    "()": (0, 0),
    "": (1, 1),
    "?": (0, 1),
    "*": (0, None),
    "+": (1, None),
}

EMPTY = "()"
ONE = ""
OPTIONAL = "?"
STAR = "*"
PLUS = "+"


def kind_ancestors(kind: str) -> List[str]:
    """The kind itself followed by its ancestors up to ``item``."""
    chain = [kind]
    while kind in _PARENT:
        kind = _PARENT[kind]
        chain.append(kind)
    return chain


def kind_subsumes(sup: str, sub: str) -> bool:
    """True when every item of kind ``sub`` is also of kind ``sup``."""
    return sup in kind_ancestors(sub)


def kinds_intersect(a: str, b: str) -> bool:
    """In a tree, two kinds share instances iff one subsumes the other."""
    return kind_subsumes(a, b) or kind_subsumes(b, a)


def kind_lub(a: str, b: str) -> str:
    """The nearest common ancestor of two kinds."""
    ancestors = kind_ancestors(a)
    for candidate in kind_ancestors(b):
        if candidate in ancestors:
            return candidate
    return "item"


#: kind -> comparison family (types whose values order against each
#: other under value comparison).  Kinds absent here are ambiguous —
#: ``item``/``atomic``/``number``/``duration`` could still resolve to a
#: comparable pair at run time, so no family verdict is possible.
_FAMILY: Dict[str, str] = {
    "integer": "number",
    "decimal": "number",
    "double": "number",
    "string": "string",
    "boolean": "boolean",
    "date": "date",
    "dateTime": "dateTime",
    "time": "time",
    "dayTimeDuration": "dayTimeDuration",
    "yearMonthDuration": "yearMonthDuration",
}


def comparison_family(kind: str) -> Optional[str]:
    """The value-comparison family of a kind, or None when unknown.

    ``null`` compares against everything (nulls sort first), so it also
    reports None — it can never make a comparison fail statically.
    """
    return _FAMILY.get(kind)


def is_numeric_kind(kind: str) -> bool:
    return kind_subsumes("number", kind)


def is_structured_kind(kind: str) -> bool:
    """Objects and arrays — the kinds atomization always rejects."""
    return kind_subsumes("json-item", kind)


def is_temporal_kind(kind: str) -> bool:
    return any(
        kind_subsumes(base, kind)
        for base in ("date", "dateTime", "time", "duration")
    )


class SType:
    """One point of the lattice: an item kind plus an occurrence range."""

    __slots__ = ("kind", "arity")

    def __init__(self, kind: str, arity: str = ONE):
        if kind not in KINDS:
            raise ValueError("unknown item kind {!r}".format(kind))
        if arity not in _ARITY_RANGE:
            raise ValueError("unknown occurrence {!r}".format(arity))
        self.kind = kind
        self.arity = arity

    # -- arity accessors -----------------------------------------------------
    @property
    def min_count(self) -> int:
        return _ARITY_RANGE[self.arity][0]

    @property
    def max_count(self) -> Optional[int]:
        return _ARITY_RANGE[self.arity][1]

    @property
    def can_be_empty(self) -> bool:
        return self.min_count == 0

    @property
    def is_one(self) -> bool:
        return self.arity == ONE

    def exact_count(self) -> Optional[int]:
        """The statically-known length of every instance, or None."""
        low, high = _ARITY_RANGE[self.arity]
        return low if low == high else None

    # -- identity ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SType)
            and other.kind == self.kind
            and other.arity == self.arity
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.arity))

    def __str__(self) -> str:
        if self.arity == EMPTY:
            return "empty-sequence()"
        return self.kind + self.arity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SType({})".format(self)


ITEM_STAR = SType("item", STAR)


def arity_from_range(low: int, high: Optional[int]) -> str:
    """The tightest occurrence indicator covering a count range."""
    if high == 0:
        return EMPTY
    if low >= 1:
        return ONE if high == 1 else PLUS
    return OPTIONAL if high == 1 else STAR


def _range(arity: str) -> Tuple[int, Optional[int]]:
    return _ARITY_RANGE[arity]


def arity_concat(a: str, b: str) -> str:
    """The arity of concatenating two sequences (count addition)."""
    low_a, high_a = _range(a)
    low_b, high_b = _range(b)
    high = None if high_a is None or high_b is None else high_a + high_b
    return arity_from_range(low_a + low_b, high)


def arity_union(a: str, b: str) -> str:
    """The tightest arity covering instances of either operand."""
    low_a, high_a = _range(a)
    low_b, high_b = _range(b)
    high = None if high_a is None or high_b is None else max(high_a, high_b)
    return arity_from_range(min(low_a, low_b), high)


def arity_multiply(a: str, b: str) -> str:
    """The arity of producing a ``b``-sized sequence per item of an
    ``a``-sized stream (FLWOR multiplicity composition)."""
    low_a, high_a = _range(a)
    low_b, high_b = _range(b)
    if high_a == 0 or high_b == 0:
        high = 0  # zero of anything is zero, even of an unbounded count
    elif high_a is None or high_b is None:
        high = None
    else:
        high = high_a * high_b
    return arity_from_range(low_a * low_b, high)


def subtype(sub: SType, sup: SType) -> bool:
    """Every instance of ``sub`` is an instance of ``sup``."""
    low_sub, high_sub = _range(sub.arity)
    low_sup, high_sup = _range(sup.arity)
    if low_sub < low_sup:
        return False
    if high_sup is not None and (high_sub is None or high_sub > high_sup):
        return False
    if high_sub == 0:
        return True  # only the empty sequence; kind is irrelevant
    return kind_subsumes(sup.kind, sub.kind)


def lub(a: SType, b: SType) -> SType:
    """The least upper bound of two static types."""
    if a.arity == EMPTY:
        kind = b.kind
    elif b.arity == EMPTY:
        kind = a.kind
    else:
        kind = kind_lub(a.kind, b.kind)
    return SType(kind, arity_union(a.arity, b.arity))


def sequence_lub(types: List[SType]) -> SType:
    """lub of several types; empty input is the empty sequence."""
    if not types:
        return SType("item", EMPTY)
    result = types[0]
    for other in types[1:]:
        result = lub(result, other)
    return result


def may_match(actual: SType, expected: SType) -> bool:
    """Could *some* instance of ``actual`` match ``expected``?

    False means the match is guaranteed to fail at run time — the static
    analyzer's licence to raise ``XPTY0004`` at compile time.
    """
    low_a, high_a = _range(actual.arity)
    low_e, high_e = _range(expected.arity)
    low = max(low_a, low_e)
    highs = [h for h in (high_a, high_e) if h is not None]
    high = min(highs) if highs else None
    if high is not None and low > high:
        return False  # no shared sequence length at all
    if low == 0:
        return True  # the empty sequence satisfies both
    return kinds_intersect(actual.kind, expected.kind)


def from_sequence_type(sequence_type) -> SType:
    """Convert a parsed :class:`repro.jsoniq.ast.SequenceType`."""
    kind = sequence_type.item_type
    if kind not in KINDS:
        kind = "item"
    return SType(kind, sequence_type.occurrence)
