"""The multi-pass static analyzer: types, modes, diagnostics.

Pass 1 (*infer*) walks the AST exactly once, doing four jobs at every
node:

* chain static contexts and resolve variables/functions (the paper's
  Section 5.3 scope analysis, previously the whole static phase);
* infer a :class:`~repro.jsoniq.analysis.types.SType` and store it on
  ``node.static_type``;
* plan the execution mode (``local``/``rdd``/``dataframe``) and store it
  on ``node.execution_mode``;
* report diagnostics into the sink — and raise
  :class:`~repro.jsoniq.errors.StaticTypeException` for operations that
  are *guaranteed* to fail at run time (unless analysing for the linter,
  which collects instead of raising, or inside a ``try`` block, whose
  errors are catchable by design and therefore only warned about).

Pass 2 (*verify*) sweeps the tree and backfills conservative defaults
(``item*`` / ``local``) on any node an exotic construction path skipped,
so downstream consumers can rely on the annotations unconditionally.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Tuple

from repro.jsoniq import ast
from repro.jsoniq.analysis import modes
from repro.jsoniq.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    ERROR,
    WARNING,
)
from repro.jsoniq.analysis.signatures import signature_for
from repro.jsoniq.analysis.types import (
    EMPTY,
    ITEM_STAR,
    ONE,
    OPTIONAL,
    PLUS,
    STAR,
    SType,
    arity_concat,
    arity_from_range,
    arity_multiply,
    arity_union,
    comparison_family,
    from_sequence_type,
    is_numeric_kind,
    is_structured_kind,
    is_temporal_kind,
    kind_lub,
    may_match,
    sequence_lub,
)
from repro.jsoniq.errors import (
    StaticCastException,
    StaticException,
    StaticTypeException,
)
from repro.jsoniq.static_context import StaticContext


class Binding:
    """What a variable name resolves to during analysis.

    ``declared`` is the prolog/clause type annotation (enforced at run
    time by the compiler's treat wrappers), ``inferred`` the analyzer's
    estimate; the declared type wins when present.  ``origin`` chains
    re-bindings — after a group-by, a non-grouping variable gets a fresh
    Binding whose origin is the pre-group one, so usage counting
    (`touch`) credits the original binding too.
    """

    __slots__ = ("name", "kind", "declared", "inferred", "mode",
                 "line", "column", "references", "origin")

    def __init__(self, name: str, kind: str = "let",
                 declared: Optional[SType] = None,
                 inferred: Optional[SType] = None,
                 mode: str = modes.LOCAL,
                 line: int = 0, column: int = 0,
                 origin: Optional["Binding"] = None):
        self.name = name
        self.kind = kind  # let|for|window|position|count|group-key|param|...
        self.declared = declared
        self.inferred = inferred
        self.mode = mode
        self.line = line
        self.column = column
        self.references = 0
        self.origin = origin

    @property
    def type(self) -> SType:
        return self.declared or self.inferred or ITEM_STAR

    def touch(self) -> None:
        binding: Optional[Binding] = self
        while binding is not None:
            binding.references += 1
            binding = binding.origin


class AnalysisResult:
    """Summary attached to the module as ``module.analysis``."""

    def __init__(self, sink: DiagnosticSink, node_count: int,
                 binding_count: int):
        self.sink = sink
        self.node_count = node_count
        self.binding_count = binding_count

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return self.sink.sorted()


#: Binding kinds the unused-variable lint reports on.  Parameters and
#: globals are excluded (both are legitimate as part of an interface),
#: as are grouping keys — the GroupByClause itself consumes the key even
#: when the return expression never mentions it.
LINTABLE_BINDINGS = frozenset(
    {"let", "for", "window", "position", "count"}
)


class Analyzer:
    """One analysis run over one main module (or expression)."""

    def __init__(self, sink: Optional[DiagnosticSink] = None,
                 collect_type_errors: bool = False):
        self.sink = sink if sink is not None else DiagnosticSink()
        #: Linter mode: collect guaranteed type errors as diagnostics and
        #: keep going, instead of raising on the first one.
        self.collect_type_errors = collect_type_errors
        self.bindings: List[Binding] = []
        self._try_depth = 0
        self._context_item_types: List[SType] = []

    # -- entry points --------------------------------------------------------
    def analyse_module(self, module: ast.MainModule, external=(),
                       obs=None) -> StaticContext:
        tracer = obs.tracer if obs is not None and obs.enabled else None
        span = tracer.span("static.infer") if tracer else nullcontext()
        with span:
            root = self._infer_module(module, external)
        span = tracer.span("static.verify") if tracer else nullcontext()
        with span:
            node_count = self._verify(module)
        module.analysis = AnalysisResult(
            self.sink, node_count, len(self.bindings)
        )
        if obs is not None and obs.enabled:
            metrics = obs.metrics
            metrics.counter("rumble.static.nodes").inc(node_count)
            metrics.counter("rumble.static.bindings").inc(len(self.bindings))
            for severity, count in self.sink.severity_counts().items():
                metrics.counter(
                    "rumble.static.diagnostics", severity=severity
                ).inc(count)
        return root

    def _infer_module(self, module: ast.MainModule,
                      external) -> StaticContext:
        root = StaticContext()
        for declaration in module.declarations:
            if isinstance(declaration, ast.FunctionDeclaration):
                root.declare_function(
                    declaration.name, len(declaration.parameters), declaration
                )
        context: StaticContext = root
        for name in external:
            context = self._bind(
                context, Binding(name, kind="external"), shadow_check=False
            )
        for declaration in module.declarations:
            if isinstance(declaration, ast.FunctionDeclaration):
                self._analyse_function(declaration, context)
            elif isinstance(declaration, ast.VariableDeclaration):
                declared = _declared_stype(declaration)
                mode = modes.LOCAL
                if declaration.expression is not None:
                    inferred = self.visit(declaration.expression, context)
                    self._check_declared(
                        declared, inferred, declaration,
                        "global variable ${}".format(declaration.name),
                    )
                    mode = declaration.expression.execution_mode
                else:
                    inferred = None
                context = self._bind(context, Binding(
                    declaration.name, kind="global", declared=declared,
                    inferred=inferred, mode=mode,
                    line=declaration.line, column=declaration.column,
                ))
            declaration.static_context = context
        self.visit(module.expression, context)
        module.static_context = context
        module.static_type = module.expression.static_type
        module.execution_mode = module.expression.execution_mode
        return root

    def _analyse_function(self, declaration: ast.FunctionDeclaration,
                          context: StaticContext) -> None:
        parameter_types = getattr(declaration, "parameter_types", None) or []
        body_context = context
        for index, parameter in enumerate(declaration.parameters):
            declared = None
            if index < len(parameter_types) and parameter_types[index]:
                declared = from_sequence_type(parameter_types[index])
            body_context = self._bind(body_context, Binding(
                parameter, kind="param", declared=declared,
                line=declaration.line, column=declaration.column,
            ), shadow_check=False)
        inferred = self.visit(declaration.body, body_context)
        return_type = getattr(declaration, "return_type", None)
        declared_return = (
            from_sequence_type(return_type) if return_type else None
        )
        self._check_declared(
            declared_return, inferred, declaration,
            "body of function {}".format(declaration.name),
        )
        declaration.inferred_return = declared_return or inferred
        declaration.static_type = declaration.inferred_return
        declaration.execution_mode = declaration.body.execution_mode

    # -- dispatch ------------------------------------------------------------
    def visit(self, node: ast.AstNode, context: StaticContext) -> SType:
        node.static_context = context
        method = getattr(self, "_visit_" + type(node).__name__, None)
        if method is None:
            result = self._visit_generic(node, context)
        else:
            result = method(node, context)
        node.static_type = result
        if node.execution_mode is None:
            node.execution_mode = modes.LOCAL
        return result

    def _visit_generic(self, node: ast.AstNode,
                       context: StaticContext) -> SType:
        child_modes = []
        for child in node.children():
            self.visit(child, context)
            child_modes.append(child.execution_mode)
        node.execution_mode = modes.combine(child_modes)
        return ITEM_STAR

    # -- helpers -------------------------------------------------------------
    def _bind(self, context: StaticContext, binding: Binding,
              shadow_check: bool = True) -> StaticContext:
        self.bindings.append(binding)
        if (
            shadow_check
            and binding.origin is None
            and context.lookup_variable(binding.name) is not None
        ):
            self.sink.report(
                "RBL002", WARNING,
                "binding of ${} shadows an earlier binding".format(
                    binding.name
                ),
                line=binding.line, column=binding.column,
            )
        return context.bind_variable(binding.name, binding)

    def _type_error(self, message: str, node: ast.AstNode,
                    code: str = "XPTY0004", exc=StaticTypeException) -> None:
        """A guaranteed runtime failure, reported at compile time.

        Inside a ``try`` block the error stays a warning: the query
        author may be relying on catching it.
        """
        severity = WARNING if self._try_depth > 0 else ERROR
        self.sink.report(code, severity, message, node=node)
        if severity == ERROR and not self.collect_type_errors:
            raise exc(
                message, code=code, line=node.line, column=node.column
            )

    def _check_declared(self, declared: Optional[SType],
                        inferred: Optional[SType], node: ast.AstNode,
                        what: str) -> None:
        if declared is None or inferred is None:
            return
        if not may_match(inferred, declared):
            self._type_error(
                "{} can never match its declared type {} "
                "(inferred {})".format(what, declared, inferred),
                node,
            )

    def _check_atomizable(self, operand_type: SType, node: ast.AstNode,
                          what: str) -> None:
        """Objects and arrays never atomize — a guaranteed XPTY0004
        when the operand is provably non-empty."""
        if (
            is_structured_kind(operand_type.kind)
            and operand_type.min_count >= 1
        ):
            self._type_error(
                "{} must be atomic, got {}".format(what, operand_type), node
            )

    def _binding_of(self, context: StaticContext,
                    name: str) -> Optional[Binding]:
        value = context.lookup_variable(name)
        return value if isinstance(value, Binding) else None

    # -- literals and primaries ---------------------------------------------
    def _visit_Literal(self, node: ast.Literal,
                       context: StaticContext) -> SType:
        node.is_constant = True
        return SType(node.kind, ONE)

    def _visit_EmptySequence(self, node, context) -> SType:
        node.is_constant = True
        return SType("item", EMPTY)

    def _visit_VariableReference(self, node: ast.VariableReference,
                                 context: StaticContext) -> SType:
        context.require_variable(node.name, node.line, node.column)
        binding = self._binding_of(context, node.name)
        if binding is None:
            return ITEM_STAR
        binding.touch()
        node.execution_mode = binding.mode
        return binding.type

    def _visit_ContextItem(self, node, context) -> SType:
        if self._context_item_types:
            return self._context_item_types[-1]
        return SType("item", ONE)

    def _visit_CommaExpression(self, node: ast.CommaExpression,
                               context: StaticContext) -> SType:
        types = [self.visit(child, context) for child in node.expressions]
        node.execution_mode = modes.combine(
            child.execution_mode for child in node.expressions
        )
        node.is_constant = all(
            getattr(child, "is_constant", False)
            for child in node.expressions
        )
        result = types[0]
        for other in types[1:]:
            kind = (
                other.kind if result.arity == EMPTY
                else result.kind if other.arity == EMPTY
                else kind_lub(result.kind, other.kind)
            )
            result = SType(kind, arity_concat(result.arity, other.arity))
        return result

    def _visit_ObjectConstructor(self, node: ast.ObjectConstructor,
                                 context: StaticContext) -> SType:
        for key, value in node.pairs:
            self.visit(key, context)
            self.visit(value, context)
        return SType("object", ONE)

    def _visit_ArrayConstructor(self, node: ast.ArrayConstructor,
                                context: StaticContext) -> SType:
        if node.content is not None:
            self.visit(node.content, context)
        return SType("array", ONE)

    # -- operators -----------------------------------------------------------
    def _visit_BinaryExpression(self, node: ast.BinaryExpression,
                                context: StaticContext) -> SType:
        left = self.visit(node.left, context)
        right = self.visit(node.right, context)
        node.is_constant = (
            getattr(node.left, "is_constant", False)
            and getattr(node.right, "is_constant", False)
        )
        if node.op in ("and", "or"):
            return SType("boolean", ONE)
        return self._arithmetic_type(node, left, right)

    def _arithmetic_type(self, node: ast.BinaryExpression, left: SType,
                         right: SType) -> SType:
        for operand in (left, right):
            self._check_atomizable(
                operand, node, "operand of {}".format(node.op)
            )
            family = comparison_family(operand.kind)
            if (
                family is not None
                and family != "number"
                and not is_temporal_kind(operand.kind)
                and operand.min_count >= 1
            ):
                self._type_error(
                    "operand of {} must be numeric, got {}".format(
                        node.op, operand
                    ),
                    node,
                )
        arity = (
            ONE if left.is_one and right.is_one
            else EMPTY if (left.arity == EMPTY or right.arity == EMPTY)
            else OPTIONAL
        )
        if arity == EMPTY:
            return SType("item", EMPTY)
        if is_numeric_kind(left.kind) and is_numeric_kind(right.kind):
            return SType(_promote(node.op, left.kind, right.kind), arity)
        if is_temporal_kind(left.kind) or is_temporal_kind(right.kind):
            return SType("atomic", arity)
        return SType("atomic", arity)

    def _visit_UnaryExpression(self, node: ast.UnaryExpression,
                               context: StaticContext) -> SType:
        operand = self.visit(node.operand, context)
        node.execution_mode = modes.LOCAL
        node.is_constant = getattr(node.operand, "is_constant", False)
        if node.op == "not":
            return SType("boolean", ONE)
        self._check_atomizable(
            operand, node, "operand of unary {}".format(node.op)
        )
        family = comparison_family(operand.kind)
        if family is not None and family != "number" \
                and operand.min_count >= 1:
            self._type_error(
                "operand of unary {} must be numeric, got {}".format(
                    node.op, operand
                ),
                node,
            )
        kind = operand.kind if is_numeric_kind(operand.kind) else "number"
        return SType(kind, ONE if operand.is_one else OPTIONAL)

    def _visit_ComparisonExpression(self, node: ast.ComparisonExpression,
                                    context: StaticContext) -> SType:
        left = self.visit(node.left, context)
        right = self.visit(node.right, context)
        node.is_constant = (
            getattr(node.left, "is_constant", False)
            and getattr(node.right, "is_constant", False)
        )
        value_comparison = node.op in (
            "eq", "ne", "lt", "le", "gt", "ge"
        )
        for operand in (left, right):
            self._check_atomizable(operand, node, "comparison operand")
        left_family = comparison_family(left.kind)
        right_family = comparison_family(right.kind)
        if (
            left_family is not None
            and right_family is not None
            and left_family != right_family
            and "null" not in (left.kind, right.kind)
        ):
            if left.min_count >= 1 and right.min_count >= 1:
                self._type_error(
                    "cannot compare {} with {}".format(left, right), node
                )
            else:
                self.sink.report(
                    "RBL004", WARNING,
                    "comparison of {} with {} can never be true".format(
                        left, right
                    ),
                    node=node,
                )
        if value_comparison:
            arity = ONE if left.is_one and right.is_one else OPTIONAL
            return SType("boolean", arity)
        return SType("boolean", ONE)

    def _visit_RangeExpression(self, node: ast.RangeExpression,
                               context: StaticContext) -> SType:
        for child in (node.start, node.end):
            operand = self.visit(child, context)
            self._check_atomizable(operand, node, "range operand")
            family = comparison_family(operand.kind)
            if family is not None and family != "number" \
                    and operand.min_count >= 1:
                self._type_error(
                    "range operand must be numeric, got {}".format(operand),
                    node,
                )
        node.is_constant = (
            getattr(node.start, "is_constant", False)
            and getattr(node.end, "is_constant", False)
        )
        return SType("integer", STAR)

    def _visit_StringConcatExpression(self, node: ast.StringConcatExpression,
                                      context: StaticContext) -> SType:
        for part in node.parts:
            operand = self.visit(part, context)
            self._check_atomizable(operand, part, "operand of ||")
        node.is_constant = all(
            getattr(part, "is_constant", False) for part in node.parts
        )
        return SType("string", ONE)

    def _visit_InstanceOfExpression(self, node: ast.InstanceOfExpression,
                                    context: StaticContext) -> SType:
        self.visit(node.operand, context)
        node.is_constant = getattr(node.operand, "is_constant", False)
        return SType("boolean", ONE)

    def _visit_TreatExpression(self, node: ast.TreatExpression,
                               context: StaticContext) -> SType:
        operand = self.visit(node.operand, context)
        target = from_sequence_type(node.sequence_type)
        if not may_match(operand, target):
            self._type_error(
                "treat as {} can never succeed on {}".format(
                    node.sequence_type, operand
                ),
                node,
                code="XPDY0050",
            )
        node.execution_mode = node.operand.execution_mode
        return target

    def _visit_CastExpression(self, node: ast.CastExpression,
                              context: StaticContext) -> SType:
        operand = self.visit(node.operand, context)
        if node.castable:
            return SType("boolean", ONE)
        self._check_atomizable(operand, node, "cast operand")
        if operand.arity == EMPTY and not node.allows_empty:
            # The runtime reports this as a cast failure (FORG0001), so
            # the compile-time version must be catchable as one too.
            self._type_error(
                "cannot cast the empty sequence to {}".format(
                    node.type_name
                ),
                node,
                code="FORG0001",
                exc=StaticCastException,
            )
        kind = node.type_name if node.type_name in _CAST_KINDS else "atomic"
        arity = (
            OPTIONAL if (operand.can_be_empty and node.allows_empty)
            else ONE
        )
        return SType(kind, arity)

    # -- navigation ----------------------------------------------------------
    def _visit_ObjectLookup(self, node: ast.ObjectLookup,
                            context: StaticContext) -> SType:
        source = self.visit(node.source, context)
        self.visit(node.key, context)
        node.execution_mode = node.source.execution_mode
        return SType("item", arity_from_range(0, source.max_count))

    def _visit_ArrayLookup(self, node: ast.ArrayLookup,
                           context: StaticContext) -> SType:
        source = self.visit(node.source, context)
        index = self.visit(node.index, context)
        family = comparison_family(index.kind)
        if family is not None and family != "number" \
                and index.min_count >= 1:
            self._type_error(
                "array index must be numeric, got {}".format(index), node
            )
        node.execution_mode = node.source.execution_mode
        return SType("item", arity_from_range(0, source.max_count))

    def _visit_ArrayUnboxing(self, node: ast.ArrayUnboxing,
                             context: StaticContext) -> SType:
        self.visit(node.source, context)
        node.execution_mode = node.source.execution_mode
        return ITEM_STAR

    def _visit_Predicate(self, node: ast.Predicate,
                         context: StaticContext) -> SType:
        source = self.visit(node.source, context)
        self._context_item_types.append(SType(source.kind, ONE))
        try:
            self.visit(node.condition, context)
        finally:
            self._context_item_types.pop()
        node.execution_mode = node.source.execution_mode
        return SType(source.kind, arity_from_range(0, source.max_count))

    def _visit_SimpleMap(self, node: ast.SimpleMap,
                         context: StaticContext) -> SType:
        source = self.visit(node.source, context)
        self._context_item_types.append(SType(source.kind, ONE))
        try:
            mapper = self.visit(node.mapper, context)
        finally:
            self._context_item_types.pop()
        node.execution_mode = node.source.execution_mode
        return SType(
            mapper.kind, arity_multiply(source.arity, mapper.arity)
        )

    # -- control flow --------------------------------------------------------
    def _visit_IfExpression(self, node: ast.IfExpression,
                            context: StaticContext) -> SType:
        self.visit(node.condition, context)
        then_type = self.visit(node.then_branch, context)
        else_type = self.visit(node.else_branch, context)
        node.execution_mode = modes.combine(
            (node.then_branch.execution_mode, node.else_branch.execution_mode)
        )
        return sequence_lub([then_type, else_type])

    def _visit_SwitchExpression(self, node: ast.SwitchExpression,
                                context: StaticContext) -> SType:
        self.visit(node.subject, context)
        results = []
        for tests, result in node.cases:
            for test in tests:
                self.visit(test, context)
            results.append(self.visit(result, context))
        results.append(self.visit(node.default, context))
        return sequence_lub(results)

    def _visit_TryCatchExpression(self, node: ast.TryCatchExpression,
                                  context: StaticContext) -> SType:
        self._try_depth += 1
        try:
            try_type = self.visit(node.try_expr, context)
        finally:
            self._try_depth -= 1
        catch_type = self.visit(node.catch_expr, context)
        node.execution_mode = modes.combine(
            (node.try_expr.execution_mode, node.catch_expr.execution_mode)
        )
        return sequence_lub([try_type, catch_type])

    def _visit_TypeswitchExpression(self, node: ast.TypeswitchExpression,
                                    context: StaticContext) -> SType:
        self.visit(node.subject, context)
        results = []
        for variable, sequence_type, result in node.cases:
            branch = context
            if variable:
                branch = self._bind(branch, Binding(
                    variable, kind="case",
                    declared=from_sequence_type(sequence_type),
                    line=node.line, column=node.column,
                ), shadow_check=False)
            results.append(self.visit(result, branch))
        branch = context
        if node.default_variable:
            branch = self._bind(branch, Binding(
                node.default_variable, kind="case",
                inferred=node.subject.static_type,
                line=node.line, column=node.column,
            ), shadow_check=False)
        results.append(self.visit(node.default, branch))
        return sequence_lub(results)

    def _visit_QuantifiedExpression(self, node: ast.QuantifiedExpression,
                                    context: StaticContext) -> SType:
        binding_types = getattr(node, "binding_types", None) or []
        inner = context
        for index, (variable, expression) in enumerate(node.bindings):
            source = self.visit(expression, inner)
            declared = None
            if index < len(binding_types) and binding_types[index]:
                declared = from_sequence_type(binding_types[index])
            inner = self._bind(inner, Binding(
                variable, kind="quantifier", declared=declared,
                inferred=SType(source.kind, ONE),
                line=node.line, column=node.column,
            ))
        self.visit(node.condition, inner)
        return SType("boolean", ONE)

    # -- function calls ------------------------------------------------------
    def _visit_FunctionCall(self, node: ast.FunctionCall,
                            context: StaticContext) -> SType:
        from repro.jsoniq.functions.registry import is_builtin

        argument_types = [
            self.visit(argument, context) for argument in node.arguments
        ]
        argument_modes = [
            argument.execution_mode for argument in node.arguments
        ]
        if is_builtin(node.name, len(node.arguments)):
            signature = signature_for(node.name, len(node.arguments))
            if signature is None:
                node.execution_mode = modes.combine(argument_modes)
                return ITEM_STAR
            for index, argument_type in enumerate(argument_types):
                expected = signature.param_at(index)
                if not may_match(argument_type, expected):
                    self._type_error(
                        "argument {} of {}() can never match {} "
                        "(got {})".format(
                            index + 1, node.name, expected, argument_type
                        ),
                        node.arguments[index],
                    )
            node.execution_mode = signature.mode or modes.LOCAL
            return signature.return_type(argument_types)
        declaration = context.lookup_function(
            node.name, len(node.arguments)
        )
        if declaration is None:
            raise StaticException(
                "unknown function {}#{}".format(
                    node.name, len(node.arguments)
                ),
                code="XPST0017",
                line=node.line,
                column=node.column,
            )
        parameter_types = getattr(declaration, "parameter_types", None) or []
        for index, argument_type in enumerate(argument_types):
            if index < len(parameter_types) and parameter_types[index]:
                expected = from_sequence_type(parameter_types[index])
                if not may_match(argument_type, expected):
                    self._type_error(
                        "argument {} of {}() can never match its declared "
                        "type {} (got {})".format(
                            index + 1, node.name, expected, argument_type
                        ),
                        node.arguments[index],
                    )
        node.execution_mode = modes.LOCAL
        return getattr(declaration, "inferred_return", None) or ITEM_STAR

    # -- FLWOR ---------------------------------------------------------------
    def _visit_FlworExpression(self, node: ast.FlworExpression,
                               context: StaticContext) -> SType:
        if (
            not node.clauses
            or not isinstance(node.clauses[-1], ast.ReturnClause)
        ):
            raise StaticException(
                "FLWOR expression must end with return",
                code="XPST0003", line=node.line, column=node.column,
            )
        if not isinstance(
            node.clauses[0],
            (ast.ForClause, ast.LetClause, ast.WindowClause),
        ):
            raise StaticException(
                "FLWOR expression must start with for or let",
                code="XPST0003", line=node.line, column=node.column,
            )
        current = context
        stream_mode = modes.LOCAL
        #: how many tuples the stream may carry, as an occurrence range
        multiplicity = ONE
        flwor_bindings: Dict[str, Binding] = {}
        return_type = ITEM_STAR
        for clause in node.clauses:
            clause.static_context = current
            if isinstance(clause, ast.ForClause):
                current, multiplicity, stream_mode = self._for_clause(
                    clause, current, multiplicity, stream_mode,
                    flwor_bindings,
                )
            elif isinstance(clause, ast.LetClause):
                current = self._let_clause(clause, current, flwor_bindings)
            elif isinstance(clause, ast.WindowClause):
                current, multiplicity, stream_mode = self._window_clause(
                    clause, current, stream_mode, flwor_bindings
                )
            elif isinstance(clause, ast.WhereClause):
                self.visit(clause.condition, current)
                multiplicity = arity_from_range(
                    0, _range_high(multiplicity)
                )
            elif isinstance(clause, ast.GroupByClause):
                current, multiplicity = self._group_by_clause(
                    clause, current, multiplicity, flwor_bindings
                )
            elif isinstance(clause, ast.OrderByClause):
                for spec in clause.specs:
                    key_type = self.visit(spec.expression, current)
                    self._check_atomizable(
                        key_type, spec.expression, "order by key"
                    )
            elif isinstance(clause, ast.CountClause):
                binding = Binding(
                    clause.variable, kind="count",
                    inferred=SType("integer", ONE),
                    line=clause.line, column=clause.column,
                )
                current = self._bind(current, binding)
                flwor_bindings[clause.variable] = binding
            elif isinstance(clause, ast.ReturnClause):
                return_type = self.visit(clause.expression, current)
                clause.execution_mode = modes.combine(
                    (stream_mode, clause.expression.execution_mode)
                )
            if clause.execution_mode is None:
                clause.execution_mode = stream_mode
            if clause.static_type is None:
                clause.static_type = ITEM_STAR
        node.execution_mode = modes.combine(
            (stream_mode, node.clauses[-1].execution_mode)
        )
        result_arity = arity_multiply(multiplicity, return_type.arity)
        return SType(return_type.kind, result_arity)

    def _for_clause(self, clause: ast.ForClause, context: StaticContext,
                    multiplicity: str, stream_mode: str,
                    flwor_bindings: Dict[str, Binding]):
        source = self.visit(clause.expression, context)
        declared = _declared_stype(clause)
        item_arity = ONE
        source_arity = source.arity
        if clause.allowing_empty:
            item_arity = OPTIONAL if source.can_be_empty else ONE
            source_arity = arity_from_range(
                1, max(_range_high_or(source.arity, 1), 1)
            )
        inferred = SType(source.kind, item_arity)
        if declared is not None:
            self._check_declared(
                declared, SType(source.kind, ONE), clause,
                "for variable ${}".format(clause.variable),
            )
        binding = Binding(
            clause.variable, kind="for", declared=declared,
            inferred=inferred,
            line=clause.line, column=clause.column,
        )
        context = self._bind(context, binding)
        flwor_bindings[clause.variable] = binding
        if clause.position_variable:
            position_binding = Binding(
                clause.position_variable, kind="position",
                inferred=SType("integer", ONE),
                line=clause.line, column=clause.column,
            )
            context = self._bind(context, position_binding)
            flwor_bindings[clause.position_variable] = position_binding
        stream_mode = modes.combine(
            (stream_mode, clause.expression.execution_mode)
        )
        clause.execution_mode = stream_mode
        return (
            context, arity_multiply(multiplicity, source_arity), stream_mode
        )

    def _let_clause(self, clause: ast.LetClause, context: StaticContext,
                    flwor_bindings: Dict[str, Binding]) -> StaticContext:
        inferred = self.visit(clause.expression, context)
        declared = _declared_stype(clause)
        self._check_declared(
            declared, inferred, clause,
            "let variable ${}".format(clause.variable),
        )
        binding = Binding(
            clause.variable, kind="let", declared=declared,
            inferred=inferred, mode=clause.expression.execution_mode,
            line=clause.line, column=clause.column,
        )
        flwor_bindings[clause.variable] = binding
        return self._bind(context, binding)

    def _window_clause(self, clause: ast.WindowClause,
                       context: StaticContext, stream_mode: str,
                       flwor_bindings: Dict[str, Binding]):
        source = self.visit(clause.expression, context)
        item_type = SType(source.kind, ONE)

        def bind_condition_vars(variables: ast.WindowVars,
                                scope: StaticContext):
            created = []
            specs = (
                (variables.current, item_type),
                (variables.position, SType("integer", ONE)),
                (variables.previous, SType(source.kind, OPTIONAL)),
                (variables.next, SType(source.kind, OPTIONAL)),
            )
            for name, stype in specs:
                if name:
                    boundary = Binding(
                        name, kind="window-var", inferred=stype,
                        line=clause.line, column=clause.column,
                    )
                    scope = self._bind(scope, boundary, shadow_check=False)
                    created.append(boundary)
            return scope, created

        start_scope, start_bindings = bind_condition_vars(
            clause.start.variables, context
        )
        self.visit(clause.start.when, start_scope)
        end_bindings = []
        if clause.end is not None:
            end_scope, end_bindings = bind_condition_vars(
                clause.end.variables, start_scope
            )
            self.visit(clause.end.when, end_scope)
        declared = _declared_stype(clause)
        window_binding = Binding(
            clause.variable, kind="window", declared=declared,
            inferred=SType(source.kind, PLUS),
            line=clause.line, column=clause.column,
        )
        context = self._bind(context, window_binding)
        flwor_bindings[clause.variable] = window_binding
        for boundary in start_bindings + end_bindings:
            context = self._bind(
                context,
                Binding(
                    boundary.name, kind="window-var",
                    inferred=boundary.inferred, origin=boundary,
                    line=clause.line, column=clause.column,
                ),
                shadow_check=False,
            )
        stream_mode = modes.combine(
            (stream_mode, clause.expression.execution_mode)
        )
        clause.execution_mode = stream_mode
        return context, STAR, stream_mode

    def _group_by_clause(self, clause: ast.GroupByClause,
                         context: StaticContext, multiplicity: str,
                         flwor_bindings: Dict[str, Binding]):
        key_names = set()
        for key in clause.keys:
            key_names.add(key.variable)
            if key.expression is not None:
                key_type = self.visit(key.expression, context)
                self._check_atomizable(
                    key_type, key.expression, "group by key"
                )
                binding = Binding(
                    key.variable, kind="group-key",
                    inferred=SType(key_type.kind, ONE),
                    mode=modes.LOCAL,
                    line=clause.line, column=clause.column,
                    origin=flwor_bindings.get(key.variable),
                )
                context = self._bind(context, binding, shadow_check=False)
                flwor_bindings[key.variable] = binding
            else:
                context.require_variable(
                    key.variable, clause.line, clause.column
                )
                old = self._binding_of(context, key.variable)
                key_kind = old.type.kind if old else "atomic"
                binding = Binding(
                    key.variable, kind="group-key",
                    inferred=SType(key_kind, ONE), mode=modes.LOCAL,
                    line=clause.line, column=clause.column, origin=old,
                )
                context = self._bind(context, binding, shadow_check=False)
                flwor_bindings[key.variable] = binding
        # Satellite fix: non-grouping variables are re-bound after the
        # group-by — each now holds the *sequence* of its per-tuple
        # values within one group, so its static type widens to a
        # sequence of the pre-group item kind.
        for name, old in list(flwor_bindings.items()):
            if name in key_names or old.kind in ("position", "count"):
                if old.kind in ("position", "count") and name not in key_names:
                    pass  # fall through to re-bind below
                else:
                    continue
            pre_group = old.type
            grouped_arity = (
                PLUS if pre_group.min_count >= 1 else STAR
            )
            regrouped = Binding(
                name, kind="grouped",
                inferred=SType(pre_group.kind, grouped_arity),
                mode=old.mode,
                line=clause.line, column=clause.column, origin=old,
            )
            context = self._bind(context, regrouped, shadow_check=False)
            flwor_bindings[name] = regrouped
        # At least one group exists iff at least one tuple did; at most
        # one group per tuple.
        return context, arity_from_range(
            min(1, _range_low(multiplicity)), _range_high(multiplicity)
        )

    # -- the verify pass -----------------------------------------------------
    def _verify(self, module: ast.MainModule) -> int:
        count = 0
        stack: List[ast.AstNode] = [module]
        while stack:
            node = stack.pop()
            count += 1
            if getattr(node, "static_type", None) is None:
                node.static_type = ITEM_STAR
            if getattr(node, "execution_mode", None) is None:
                node.execution_mode = modes.LOCAL
            stack.extend(node.children())
        return count


_CAST_KINDS = frozenset({
    "string", "integer", "decimal", "double", "boolean", "null",
    "date", "dateTime", "time", "duration",
    "dayTimeDuration", "yearMonthDuration",
})


def _promote(op: str, left_kind: str, right_kind: str) -> str:
    """JSONiq numeric promotion for a statically-numeric operator."""
    if op == "idiv":
        return "integer"
    kinds = {left_kind, right_kind}
    if "number" in kinds:
        return "number"
    if "double" in kinds:
        return "double"
    if op == "div":
        return "decimal"
    if "decimal" in kinds:
        return "decimal"
    return "integer"


def _declared_stype(node) -> Optional[SType]:
    declared = getattr(node, "declared_type", None)
    return from_sequence_type(declared) if declared else None


def _range_low(arity: str) -> int:
    return SType("item", arity).min_count


def _range_high(arity: str) -> Optional[int]:
    return SType("item", arity).max_count


def _range_high_or(arity: str, default: int) -> int:
    high = _range_high(arity)
    return default if high is None else high
