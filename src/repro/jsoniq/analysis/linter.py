"""The query linter behind ``--lint`` and the shell's ``:lint``.

Runs the full static analyzer in *collecting* mode (guaranteed type
errors become error diagnostics instead of exceptions) and layers the
style rules on top: unused variables (RBL001), shadowing (RBL002,
reported by the analyzer itself at bind time), foldable constants
(RBL003), suspicious comparisons (RBL004, also analyzer-reported) and
the ``count($x) eq 0`` antipattern (RBL005).
"""

from __future__ import annotations

from typing import List, Optional

from repro.jsoniq import ast
from repro.jsoniq.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    ERROR,
    INFO,
    WARNING,
)
from repro.jsoniq.analysis.inference import (
    Analyzer,
    LINTABLE_BINDINGS,
)
from repro.jsoniq.errors import StaticException
from repro.jsoniq.parser import parse


def lint_query(text: str) -> List[Diagnostic]:
    """Lint one query text; never raises for query-author mistakes."""
    sink = DiagnosticSink()
    try:
        module = parse(text)
    except StaticException as exc:  # includes ParseException
        sink.report(
            exc.code or "XPST0003", ERROR, exc.message,
            line=exc.line or 0, column=exc.column or 0,
        )
        return sink.sorted()
    analyzer = Analyzer(sink=sink, collect_type_errors=True)
    try:
        analyzer.analyse_module(module)
    except StaticException as exc:
        # Scope/function-resolution errors still raise even in
        # collecting mode; fold them into the report.
        sink.report(
            exc.code or "XPST0008", ERROR, exc.message,
            line=exc.line or 0, column=exc.column or 0,
        )
        return sink.sorted()
    _report_unused(analyzer, sink)
    if not sink.has_errors():
        # Don't suggest folding subtrees that already carry type errors.
        _report_foldable(module, sink)
    _walk_antipatterns(module, sink)
    return sink.sorted()


def _report_unused(analyzer: Analyzer, sink: DiagnosticSink) -> None:
    for binding in analyzer.bindings:
        if binding.kind not in LINTABLE_BINDINGS:
            continue
        if binding.origin is not None:
            continue  # re-bindings are accounted to the original
        if binding.references == 0:
            sink.report(
                "RBL001", WARNING,
                "variable ${} is bound but never used".format(binding.name),
                line=binding.line, column=binding.column,
            )


def _report_foldable(module: ast.MainModule, sink: DiagnosticSink) -> None:
    """Topmost constant subtrees that aren't already literals.

    The subtree is *reported*, never evaluated: folding ``1 div 0`` at
    compile time would hide the runtime ``FOAR0001`` the author may be
    testing for.  Plain literal sequences like ``(1, 2)`` are data, not
    computation, so only subtrees that actually *do* something (an
    operator or a range) are worth flagging.
    """
    stack: List[ast.AstNode] = [module.expression]
    for declaration in module.declarations:
        if isinstance(declaration, ast.FunctionDeclaration):
            stack.append(declaration.body)
        elif (
            isinstance(declaration, ast.VariableDeclaration)
            and declaration.expression is not None
        ):
            stack.append(declaration.expression)
    while stack:
        node = stack.pop()
        if getattr(node, "is_constant", False) and not _is_literal_like(node):
            sink.report(
                "RBL003", INFO,
                "constant subexpression could be computed once",
                node=node,
            )
            continue  # topmost only — don't descend into it
        stack.extend(node.children())


def _is_literal_like(node: ast.AstNode) -> bool:
    """Already in simplest form: a literal, a sequence of literals, or a
    literal range like ``1 to 10`` — data an author wrote down, not a
    computation worth hoisting."""
    if isinstance(node, (ast.Literal, ast.EmptySequence)):
        return True
    if isinstance(node, ast.CommaExpression):
        return all(_is_literal_like(child) for child in node.expressions)
    if isinstance(node, ast.RangeExpression):
        return all(
            isinstance(child, ast.Literal) for child in node.children()
        )
    if isinstance(node, ast.UnaryExpression):
        # ``-3.0`` is a negative literal, not a computation.
        return isinstance(node.operand, ast.Literal)
    return False


#: count($x) <op> <literal> rewrites, keyed by (op, literal value).
_COUNT_REWRITES = {
    ("eq", 0): "empty($x)",
    ("le", 0): "empty($x)",
    ("lt", 1): "empty($x)",
    ("ne", 0): "exists($x)",
    ("gt", 0): "exists($x)",
    ("ge", 1): "exists($x)",
}


def _walk_antipatterns(module: ast.MainModule,
                       sink: DiagnosticSink) -> None:
    stack: List[ast.AstNode] = [module]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.ComparisonExpression):
            _check_count_antipattern(node, sink)
        stack.extend(node.children())


def _check_count_antipattern(node: ast.ComparisonExpression,
                             sink: DiagnosticSink) -> None:
    for call, literal in (
        (node.left, node.right), (node.right, node.left)
    ):
        if not (
            isinstance(call, ast.FunctionCall)
            and call.name == "count"
            and len(call.arguments) == 1
        ):
            continue
        if not (
            isinstance(literal, ast.Literal)
            and literal.kind == "integer"
        ):
            continue
        op = node.op
        if call is node.right:
            op = _flip(op)
        suggestion = _COUNT_REWRITES.get((op, literal.value))
        if suggestion is not None:
            sink.report(
                "RBL005", WARNING,
                "count() compared with {} — prefer {} (no full "
                "materialization)".format(literal.value, suggestion),
                node=node,
            )
        return


def _flip(op: str) -> str:
    return {
        "lt": "gt", "gt": "lt", "le": "ge", "ge": "le",
    }.get(op, op)
