"""Diagnostics: the sink the analyzer and linter report into.

A :class:`Diagnostic` is one finding — a W3C error code or an ``RBL``
lint code, a severity, a source position and a message.  The sink
collects them during analysis; the CLI (``--lint``), the shell
(``:lint``) and the CI lint job render them as text or JSON.

Lint codes (see docs/static_typing.md for the full table):

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
RBL001    warning   variable is bound but never referenced
RBL002    warning   binding shadows an earlier binding of the same name
RBL003    info      constant subexpression could be folded
RBL004    warning   comparison of incompatible types (false/empty always)
RBL005    warning   ``count($x) eq 0`` antipattern — use empty()/exists()
========  ========  =====================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}


class Diagnostic:
    """One finding of the static analyzer or the linter."""

    __slots__ = ("code", "severity", "line", "column", "message")

    def __init__(self, code: str, severity: str, message: str,
                 line: int = 0, column: int = 0):
        self.code = code
        self.severity = severity
        self.message = message
        self.line = line or 0
        self.column = column or 0

    def render(self) -> str:
        return "{}:{} {} [{}] {}".format(
            self.line, self.column, self.severity, self.code, self.message
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Diagnostic({})".format(self.render())


class DiagnosticSink:
    """Collects diagnostics during one analysis run."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def report(self, code: str, severity: str, message: str,
               node=None, line: int = 0, column: int = 0) -> Diagnostic:
        if node is not None:
            line = getattr(node, "line", 0) or line
            column = getattr(node, "column", 0) or column
        return self.add(Diagnostic(code, severity, message, line, column))

    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def severity_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] = counts.get(
                diagnostic.severity, 0
            ) + 1
        return counts

    def sorted(self) -> List[Diagnostic]:
        """Position order, errors first within one position."""
        return sorted(
            self.diagnostics,
            key=lambda d: (
                d.line, d.column, _SEVERITY_RANK.get(d.severity, 3), d.code
            ),
        )


def render_text(diagnostics: List[Diagnostic],
                header: Optional[str] = None) -> str:
    lines = [header] if header else []
    lines.extend(d.render() for d in diagnostics)
    return "\n".join(lines)
