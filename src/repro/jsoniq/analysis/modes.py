"""Static execution-mode planning (paper, Section 4).

Every expression and FLWOR clause is annotated with one of three modes:

* ``local`` — evaluated on the driver through the pull API;
* ``rdd`` — backed by an RDD of items (``json-file``, ``parallelize``,
  ``collection``, ``text-file``, ``csv-file`` and everything their tuple
  streams flow through);
* ``dataframe`` — backed by the structured read path
  (``structured-json-file``), where a schema is known.

Modes propagate upward: a FLWOR whose ``for`` clause ranges over an RDD
source keeps the distributed mode through clause composition until an
aggregating operator (``count``, ``sum`` …) collapses it back to local.
``combine`` implements the join of the three-point mode lattice
(local < dataframe < rdd): a dataframe falls back to rdd when mixed with
one, and anything mixed with local keeps the distributed mode.
"""

from __future__ import annotations

from typing import Iterable

LOCAL = "local"
RDD = "rdd"
DATAFRAME = "dataframe"

MODES = (LOCAL, RDD, DATAFRAME)


def combine(modes: Iterable[str]) -> str:
    """The mode of an expression composed from sub-expression modes."""
    result = LOCAL
    for mode in modes:
        if mode == RDD:
            return RDD
        if mode == DATAFRAME:
            result = DATAFRAME
    return result


def is_distributed(mode: str) -> bool:
    return mode in (RDD, DATAFRAME)
