"""Static analysis: type inference, mode planning and linting.

The package splits into:

* :mod:`~repro.jsoniq.analysis.types` — the sequence-type lattice;
* :mod:`~repro.jsoniq.analysis.modes` — the execution-mode lattice;
* :mod:`~repro.jsoniq.analysis.signatures` — builtin type signatures;
* :mod:`~repro.jsoniq.analysis.diagnostics` — the diagnostic sink;
* :mod:`~repro.jsoniq.analysis.inference` — the analyzer itself;
* :mod:`~repro.jsoniq.analysis.linter` — ``--lint`` rule layer;
* :mod:`~repro.jsoniq.analysis.explain` — the annotated plan renderer.
"""

from repro.jsoniq.analysis.diagnostics import (  # noqa: F401
    Diagnostic,
    DiagnosticSink,
    ERROR,
    INFO,
    WARNING,
    render_text,
)
from repro.jsoniq.analysis.explain import render_module  # noqa: F401
from repro.jsoniq.analysis.inference import (  # noqa: F401
    AnalysisResult,
    Analyzer,
    Binding,
)
from repro.jsoniq.analysis.linter import lint_query  # noqa: F401
from repro.jsoniq.analysis.modes import (  # noqa: F401
    DATAFRAME,
    LOCAL,
    RDD,
    combine,
    is_distributed,
)
from repro.jsoniq.analysis.types import (  # noqa: F401
    ITEM_STAR,
    SType,
    from_sequence_type,
    lub,
    may_match,
    subtype,
)
