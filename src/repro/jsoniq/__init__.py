"""The JSONiq language stack: lexer, parser, static analysis, runtime."""

from repro.jsoniq.errors import (
    CastException,
    DynamicException,
    JsoniqException,
    OutOfMemorySimulated,
    ParseException,
    StaticException,
    TypeException,
)
from repro.jsoniq.parser import parse, parse_expression

__all__ = [
    "parse",
    "parse_expression",
    "JsoniqException",
    "ParseException",
    "StaticException",
    "DynamicException",
    "TypeException",
    "CastException",
    "OutOfMemorySimulated",
]
