"""Static analysis: scope checking and function resolution.

Walks the AST recursively, chaining static contexts (paper, Section 5.3):
every variable reference must resolve, every function call must name a
builtin or a prolog-declared function with the right arity.  Each node's
``static_context`` attribute is populated for later phases.
"""

from __future__ import annotations

from repro.jsoniq import ast
from repro.jsoniq.errors import StaticException
from repro.jsoniq.static_context import StaticContext


def analyse(module: ast.MainModule, external=()) -> StaticContext:
    """Analyse a main module in place, returning the root context.

    ``external`` names variables that the host application will bind at
    run time (the engine passes the binding keys here), in addition to
    any ``declare variable $x external;`` declarations.
    """
    root = StaticContext()
    # First pass over the prolog: register functions so that mutual
    # recursion works, then analyse bodies and global variables in order.
    for declaration in module.declarations:
        if isinstance(declaration, ast.FunctionDeclaration):
            root.declare_function(
                declaration.name, len(declaration.parameters), declaration
            )
    context: StaticContext = root
    for name in external:
        context = context.bind_variable(name)
    for declaration in module.declarations:
        if isinstance(declaration, ast.FunctionDeclaration):
            body_context = context
            for parameter in declaration.parameters:
                body_context = body_context.bind_variable(parameter)
            _analyse_expression(declaration.body, body_context)
        elif isinstance(declaration, ast.VariableDeclaration):
            if declaration.expression is not None:
                _analyse_expression(declaration.expression, context)
            context = context.bind_variable(declaration.name)
        declaration.static_context = context
    _analyse_expression(module.expression, context)
    module.static_context = context
    return root


def _analyse_expression(node: ast.Expression, context: StaticContext) -> None:
    node.static_context = context
    if isinstance(node, ast.VariableReference):
        context.require_variable(node.name, node.line, node.column)
        return
    if isinstance(node, ast.FunctionCall):
        _check_function(node, context)
        for argument in node.arguments:
            _analyse_expression(argument, context)
        return
    if isinstance(node, ast.FlworExpression):
        _analyse_flwor(node, context)
        return
    if isinstance(node, ast.TypeswitchExpression):
        _analyse_expression(node.subject, context)
        for variable, _, result in node.cases:
            branch = context.bind_variable(variable) if variable else context
            _analyse_expression(result, branch)
        branch = (
            context.bind_variable(node.default_variable)
            if node.default_variable else context
        )
        _analyse_expression(node.default, branch)
        return
    if isinstance(node, ast.QuantifiedExpression):
        inner = context
        for variable, expression in node.bindings:
            _analyse_expression(expression, inner)
            inner = inner.bind_variable(variable)
        _analyse_expression(node.condition, inner)
        return
    if isinstance(node, (ast.Predicate, ast.SimpleMap)):
        _analyse_expression(node.children()[0], context)
        # The context item ($$) is implicitly in scope on the right side.
        _analyse_expression(node.children()[1], context)
        return
    for child in node.children():
        _analyse_expression(child, context)


def _analyse_flwor(node: ast.FlworExpression, context: StaticContext) -> None:
    if not node.clauses or not isinstance(node.clauses[-1], ast.ReturnClause):
        raise StaticException("FLWOR expression must end with return")
    if not isinstance(
        node.clauses[0], (ast.ForClause, ast.LetClause, ast.WindowClause)
    ):
        raise StaticException("FLWOR expression must start with for or let")
    current = context
    for clause in node.clauses:
        clause.static_context = current
        if isinstance(clause, ast.WindowClause):
            _analyse_expression(clause.expression, current)
            start_scope = current
            for name in clause.start.variables.names():
                start_scope = start_scope.bind_variable(name)
            _analyse_expression(clause.start.when, start_scope)
            if clause.end is not None:
                end_scope = start_scope
                for name in clause.end.variables.names():
                    end_scope = end_scope.bind_variable(name)
                _analyse_expression(clause.end.when, end_scope)
            # Downstream clauses see the window variable plus every
            # boundary variable.
            current = current.bind_variable(clause.variable)
            for name in clause.start.variables.names():
                current = current.bind_variable(name)
            if clause.end is not None:
                for name in clause.end.variables.names():
                    current = current.bind_variable(name)
        elif isinstance(clause, ast.ForClause):
            _analyse_expression(clause.expression, current)
            current = current.bind_variable(clause.variable)
            if clause.position_variable:
                current = current.bind_variable(clause.position_variable)
        elif isinstance(clause, ast.LetClause):
            _analyse_expression(clause.expression, current)
            current = current.bind_variable(clause.variable)
        elif isinstance(clause, ast.WhereClause):
            _analyse_expression(clause.condition, current)
        elif isinstance(clause, ast.GroupByClause):
            for key in clause.keys:
                if key.expression is not None:
                    _analyse_expression(key.expression, current)
                    current = current.bind_variable(key.variable)
                else:
                    current.require_variable(
                        key.variable, clause.line, clause.column
                    )
        elif isinstance(clause, ast.OrderByClause):
            for spec in clause.specs:
                _analyse_expression(spec.expression, current)
        elif isinstance(clause, ast.CountClause):
            current = current.bind_variable(clause.variable)
        elif isinstance(clause, ast.ReturnClause):
            _analyse_expression(clause.expression, current)
    node.static_context = context


def _check_function(node: ast.FunctionCall, context: StaticContext) -> None:
    from repro.jsoniq.functions.registry import is_builtin

    if is_builtin(node.name, len(node.arguments)):
        return
    declaration = context.lookup_function(node.name, len(node.arguments))
    if declaration is None:
        raise StaticException(
            "unknown function {}#{}".format(node.name, len(node.arguments)),
            code="XPST0017",
            line=node.line,
            column=node.column,
        )
