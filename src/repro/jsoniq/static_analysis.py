"""Static analysis entry point: scoping, typing, mode planning.

Historically this module only chained static contexts (paper, Section
5.3).  The actual work now lives in :mod:`repro.jsoniq.analysis.inference`,
which additionally infers a static sequence type and plans an execution
mode for every node, and reports diagnostics; this module keeps the
stable ``analyse`` entry point (plus the legacy ``_analyse_expression`` /
``_analyse_flwor`` helpers some callers import directly).
"""

from __future__ import annotations

from repro.jsoniq import ast
from repro.jsoniq.analysis.inference import Analyzer
from repro.jsoniq.static_context import StaticContext


def analyse(module: ast.MainModule, external=(), sink=None,
            collect_type_errors: bool = False, obs=None) -> StaticContext:
    """Analyse a main module in place, returning the root context.

    ``external`` names variables that the host application will bind at
    run time (the engine passes the binding keys here), in addition to
    any ``declare variable $x external;`` declarations.  ``sink``
    optionally collects diagnostics (a fresh one is created otherwise);
    with ``collect_type_errors`` guaranteed type failures become error
    diagnostics instead of raised exceptions (linter mode).  ``obs`` is
    an optional :class:`repro.obs.Observability` bundle — when given,
    the analysis emits ``static.infer``/``static.verify`` spans and
    ``rumble.static.*`` metrics.
    """
    analyzer = Analyzer(sink=sink, collect_type_errors=collect_type_errors)
    return analyzer.analyse_module(module, external=external, obs=obs)


def _analyse_expression(node: ast.Expression,
                        context: StaticContext) -> None:
    """Legacy helper: analyse one expression in a given context."""
    Analyzer().visit(node, context)


def _analyse_flwor(node: ast.FlworExpression,
                   context: StaticContext) -> None:
    """Legacy helper: analyse one FLWOR expression in a given context."""
    analyzer = Analyzer()
    analyzer.visit(node, context)
