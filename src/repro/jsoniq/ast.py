"""Abstract syntax tree of JSONiq expressions and FLWOR clauses.

The parser produces these nodes; static analysis decorates them with
static contexts; the compiler (:mod:`repro.jsoniq.compiler`) turns them
into runtime iterators.  Each node exposes ``children()`` so visitors can
walk the tree generically.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple


class AstNode:
    """Base class: position info plus the static context attached later."""

    def __init__(self, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        self.static_context = None  # filled in by static analysis
        self.static_type = None  # analysis.types.SType, filled by inference
        self.execution_mode = None  # "local" | "rdd" | "dataframe"
        self.is_constant = False  # no variable/function/data dependence

    def children(self) -> List["AstNode"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def describe(self, indent: int = 0) -> str:
        lines = [" " * indent + self.label()]
        for child in self.children():
            lines.append(child.describe(indent + 2))
        return "\n".join(lines)


class Expression(AstNode):
    """Any JSONiq expression (returns a sequence of items)."""


# -- Literals and primaries --------------------------------------------------

class Literal(Expression):
    def __init__(self, kind: str, value: Any, **pos):
        super().__init__(**pos)
        self.kind = kind  # string | integer | decimal | double | boolean | null
        self.value = value

    def label(self) -> str:
        return "Literal({}:{!r})".format(self.kind, self.value)


class VariableReference(Expression):
    def __init__(self, name: str, **pos):
        super().__init__(**pos)
        self.name = name

    def label(self) -> str:
        return "Var(${})".format(self.name)


class ContextItem(Expression):
    """The ``$$`` expression."""


class CommaExpression(Expression):
    """Sequence concatenation: ``e1, e2, ...``."""

    def __init__(self, expressions: List[Expression], **pos):
        super().__init__(**pos)
        self.expressions = expressions

    def children(self) -> List[AstNode]:
        return list(self.expressions)


class EmptySequence(Expression):
    """The ``()`` expression."""


class ObjectConstructor(Expression):
    def __init__(self, pairs: List[Tuple[Expression, Expression]], **pos):
        super().__init__(**pos)
        self.pairs = pairs

    def children(self) -> List[AstNode]:
        return [node for pair in self.pairs for node in pair]


class ArrayConstructor(Expression):
    def __init__(self, content: Optional[Expression], **pos):
        super().__init__(**pos)
        self.content = content

    def children(self) -> List[AstNode]:
        return [self.content] if self.content else []


class FunctionCall(Expression):
    def __init__(self, name: str, arguments: List[Expression], **pos):
        super().__init__(**pos)
        self.name = name
        self.arguments = arguments

    def children(self) -> List[AstNode]:
        return list(self.arguments)

    def label(self) -> str:
        return "FunctionCall({}#{})".format(self.name, len(self.arguments))


# -- Operators -----------------------------------------------------------------

class BinaryExpression(Expression):
    def __init__(self, op: str, left: Expression, right: Expression, **pos):
        super().__init__(**pos)
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> List[AstNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return "Binary({})".format(self.op)


class UnaryExpression(Expression):
    def __init__(self, op: str, operand: Expression, **pos):
        super().__init__(**pos)
        self.op = op  # "-" | "+" | "not"
        self.operand = operand

    def children(self) -> List[AstNode]:
        return [self.operand]

    def label(self) -> str:
        return "Unary({})".format(self.op)


class ComparisonExpression(Expression):
    def __init__(self, op: str, left: Expression, right: Expression, **pos):
        super().__init__(**pos)
        self.op = op  # eq ne lt le gt ge = != < <= > >=
        self.left = left
        self.right = right

    def children(self) -> List[AstNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return "Comparison({})".format(self.op)


class RangeExpression(Expression):
    def __init__(self, start: Expression, end: Expression, **pos):
        super().__init__(**pos)
        self.start = start
        self.end = end

    def children(self) -> List[AstNode]:
        return [self.start, self.end]


class StringConcatExpression(Expression):
    def __init__(self, parts: List[Expression], **pos):
        super().__init__(**pos)
        self.parts = parts

    def children(self) -> List[AstNode]:
        return list(self.parts)


class InstanceOfExpression(Expression):
    def __init__(self, operand: Expression, sequence_type: "SequenceType", **pos):
        super().__init__(**pos)
        self.operand = operand
        self.sequence_type = sequence_type

    def children(self) -> List[AstNode]:
        return [self.operand]

    def label(self) -> str:
        return "InstanceOf({})".format(self.sequence_type)


class TreatExpression(Expression):
    def __init__(self, operand: Expression, sequence_type: "SequenceType", **pos):
        super().__init__(**pos)
        self.operand = operand
        self.sequence_type = sequence_type

    def children(self) -> List[AstNode]:
        return [self.operand]


class CastExpression(Expression):
    def __init__(self, operand: Expression, type_name: str, allows_empty: bool,
                 castable: bool, **pos):
        super().__init__(**pos)
        self.operand = operand
        self.type_name = type_name
        self.allows_empty = allows_empty
        self.castable = castable  # True for "castable as"

    def children(self) -> List[AstNode]:
        return [self.operand]


# -- Navigation ------------------------------------------------------------------

class ObjectLookup(Expression):
    def __init__(self, source: Expression, key: Expression, **pos):
        super().__init__(**pos)
        self.source = source
        self.key = key

    def children(self) -> List[AstNode]:
        return [self.source, self.key]


class ArrayLookup(Expression):
    def __init__(self, source: Expression, index: Expression, **pos):
        super().__init__(**pos)
        self.source = source
        self.index = index

    def children(self) -> List[AstNode]:
        return [self.source, self.index]


class ArrayUnboxing(Expression):
    def __init__(self, source: Expression, **pos):
        super().__init__(**pos)
        self.source = source

    def children(self) -> List[AstNode]:
        return [self.source]


class Predicate(Expression):
    def __init__(self, source: Expression, condition: Expression, **pos):
        super().__init__(**pos)
        self.source = source
        self.condition = condition

    def children(self) -> List[AstNode]:
        return [self.source, self.condition]


class SimpleMap(Expression):
    """The ``!`` operator: evaluate rhs once per lhs item as ``$$``."""

    def __init__(self, source: Expression, mapper: Expression, **pos):
        super().__init__(**pos)
        self.source = source
        self.mapper = mapper

    def children(self) -> List[AstNode]:
        return [self.source, self.mapper]


# -- Control flow -------------------------------------------------------------------

class IfExpression(Expression):
    def __init__(self, condition: Expression, then_branch: Expression,
                 else_branch: Expression, **pos):
        super().__init__(**pos)
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch

    def children(self) -> List[AstNode]:
        return [self.condition, self.then_branch, self.else_branch]


class SwitchExpression(Expression):
    def __init__(self, subject: Expression,
                 cases: List[Tuple[List[Expression], Expression]],
                 default: Expression, **pos):
        super().__init__(**pos)
        self.subject = subject
        self.cases = cases
        self.default = default

    def children(self) -> List[AstNode]:
        nodes: List[AstNode] = [self.subject]
        for tests, result in self.cases:
            nodes.extend(tests)
            nodes.append(result)
        nodes.append(self.default)
        return nodes


class TryCatchExpression(Expression):
    def __init__(self, try_expr: Expression, catch_expr: Expression,
                 codes: Optional[List[str]], **pos):
        super().__init__(**pos)
        self.try_expr = try_expr
        self.catch_expr = catch_expr
        self.codes = codes  # None means catch-all ("*")

    def children(self) -> List[AstNode]:
        return [self.try_expr, self.catch_expr]


class TypeswitchExpression(Expression):
    """``typeswitch (expr) case <type> return ... default return ...``;
    cases may bind a variable: ``case $v as integer return ...``."""

    def __init__(self, subject: Expression,
                 cases: List[Tuple[Optional[str], "SequenceType", Expression]],
                 default_variable: Optional[str],
                 default: Expression, **pos):
        super().__init__(**pos)
        self.subject = subject
        self.cases = cases
        self.default_variable = default_variable
        self.default = default

    def children(self) -> List[AstNode]:
        nodes: List[AstNode] = [self.subject]
        nodes.extend(result for _, _, result in self.cases)
        nodes.append(self.default)
        return nodes


class QuantifiedExpression(Expression):
    def __init__(self, quantifier: str,
                 bindings: List[Tuple[str, Expression]],
                 condition: Expression,
                 binding_types: Optional[List[Optional["SequenceType"]]] = None,
                 **pos):
        super().__init__(**pos)
        self.quantifier = quantifier  # "some" | "every"
        self.bindings = bindings
        self.condition = condition
        self.binding_types = binding_types  # parallel to bindings, or None

    def children(self) -> List[AstNode]:
        return [expr for _, expr in self.bindings] + [self.condition]

    def label(self) -> str:
        return "Quantified({})".format(self.quantifier)


# -- FLWOR ---------------------------------------------------------------------------

class Clause(AstNode):
    """A FLWOR clause (returns a tuple stream)."""


class ForClause(Clause):
    def __init__(self, variable: str, expression: Expression,
                 allowing_empty: bool = False,
                 position_variable: Optional[str] = None,
                 declared_type: Optional["SequenceType"] = None, **pos):
        super().__init__(**pos)
        self.variable = variable
        self.expression = expression
        self.allowing_empty = allowing_empty
        self.position_variable = position_variable
        self.declared_type = declared_type  # "for $x as integer in ..."

    def children(self) -> List[AstNode]:
        return [self.expression]

    def label(self) -> str:
        return "ForClause(${})".format(self.variable)


class WindowVars:
    """The optional variables a window boundary condition may bind:
    the current item, its position, and the previous/next items."""

    def __init__(self, current: Optional[str] = None,
                 position: Optional[str] = None,
                 previous: Optional[str] = None,
                 next_: Optional[str] = None):
        self.current = current
        self.position = position
        self.previous = previous
        self.next = next_

    def names(self) -> List[str]:
        return [name for name in
                (self.current, self.position, self.previous, self.next)
                if name]


class WindowCondition:
    """``start|end <vars> when <expr>`` of a window clause."""

    def __init__(self, variables: WindowVars, when: Expression,
                 only: bool = False):
        self.variables = variables
        self.when = when
        self.only = only  # "only end": discard windows without an end


class WindowClause(Clause):
    """``for tumbling|sliding window $w in expr start ... end ...``
    (XQuery 3.0 window clauses — the paper's future-work item)."""

    def __init__(self, kind: str, variable: str, expression: Expression,
                 start: WindowCondition,
                 end: Optional[WindowCondition],
                 declared_type: Optional["SequenceType"] = None, **pos):
        super().__init__(**pos)
        self.kind = kind  # "tumbling" | "sliding"
        self.variable = variable
        self.expression = expression
        self.start = start
        self.end = end
        self.declared_type = declared_type

    def children(self) -> List[AstNode]:
        nodes: List[AstNode] = [self.expression, self.start.when]
        if self.end is not None:
            nodes.append(self.end.when)
        return nodes

    def label(self) -> str:
        return "WindowClause({} ${})".format(self.kind, self.variable)


class LetClause(Clause):
    def __init__(self, variable: str, expression: Expression,
                 declared_type: Optional["SequenceType"] = None, **pos):
        super().__init__(**pos)
        self.variable = variable
        self.expression = expression
        self.declared_type = declared_type  # "let $x as string? := ..."

    def children(self) -> List[AstNode]:
        return [self.expression]

    def label(self) -> str:
        return "LetClause(${})".format(self.variable)


class WhereClause(Clause):
    def __init__(self, condition: Expression, **pos):
        super().__init__(**pos)
        self.condition = condition

    def children(self) -> List[AstNode]:
        return [self.condition]


class GroupByKey:
    """One grouping variable, optionally freshly bound (``$k := expr``)."""

    def __init__(self, variable: str, expression: Optional[Expression]):
        self.variable = variable
        self.expression = expression


class GroupByClause(Clause):
    def __init__(self, keys: List[GroupByKey], **pos):
        super().__init__(**pos)
        self.keys = keys

    def children(self) -> List[AstNode]:
        return [key.expression for key in self.keys if key.expression]

    def label(self) -> str:
        return "GroupByClause({})".format(
            ", ".join("$" + key.variable for key in self.keys)
        )


class OrderSpec:
    """One ordering key with its modifiers."""

    def __init__(self, expression: Expression, ascending: bool = True,
                 empty_greatest: bool = False):
        self.expression = expression
        self.ascending = ascending
        self.empty_greatest = empty_greatest


class OrderByClause(Clause):
    def __init__(self, specs: List[OrderSpec], stable: bool = False, **pos):
        super().__init__(**pos)
        self.specs = specs
        self.stable = stable

    def children(self) -> List[AstNode]:
        return [spec.expression for spec in self.specs]


class CountClause(Clause):
    def __init__(self, variable: str, **pos):
        super().__init__(**pos)
        self.variable = variable

    def label(self) -> str:
        return "CountClause(${})".format(self.variable)


class ReturnClause(Clause):
    def __init__(self, expression: Expression, **pos):
        super().__init__(**pos)
        self.expression = expression

    def children(self) -> List[AstNode]:
        return [self.expression]


class FlworExpression(Expression):
    def __init__(self, clauses: List[Clause], **pos):
        super().__init__(**pos)
        self.clauses = clauses  # final clause is always a ReturnClause

    def children(self) -> List[AstNode]:
        return list(self.clauses)


# -- Types -----------------------------------------------------------------------------

class SequenceType:
    """An item type plus an occurrence indicator."""

    def __init__(self, item_type: str, occurrence: str = ""):
        self.item_type = item_type  # item | atomic | object | array | string...
        self.occurrence = occurrence  # "" | "?" | "*" | "+" | "()" for empty

    def __str__(self) -> str:
        if self.occurrence == "()":
            return "empty-sequence()"
        return self.item_type + self.occurrence

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SequenceType)
            and other.item_type == self.item_type
            and other.occurrence == self.occurrence
        )


# -- Prolog / module --------------------------------------------------------------------

class FunctionDeclaration(AstNode):
    def __init__(self, name: str, parameters: List[str], body: Expression,
                 parameter_types: Optional[List[Optional["SequenceType"]]] = None,
                 return_type: Optional["SequenceType"] = None, **pos):
        super().__init__(**pos)
        self.name = name
        self.parameters = parameters
        self.body = body
        self.parameter_types = parameter_types  # parallel to parameters
        self.return_type = return_type
        self.inferred_return = None  # filled by static inference

    def children(self) -> List[AstNode]:
        return [self.body]

    def label(self) -> str:
        return "FunctionDeclaration({}#{})".format(
            self.name, len(self.parameters)
        )


class VariableDeclaration(AstNode):
    """``declare variable $x := expr;`` or ``declare variable $x
    external;`` (expression is None for external variables, which the
    caller binds at run time)."""

    def __init__(self, name: str, expression: Optional[Expression],
                 declared_type: Optional["SequenceType"] = None, **pos):
        super().__init__(**pos)
        self.name = name
        self.expression = expression
        self.declared_type = declared_type

    @property
    def external(self) -> bool:
        return self.expression is None

    def children(self) -> List[AstNode]:
        return [self.expression] if self.expression is not None else []


class MainModule(AstNode):
    """A whole query: prolog declarations plus the main expression."""

    def __init__(self, declarations: List[AstNode], expression: Expression, **pos):
        super().__init__(**pos)
        self.declarations = declarations
        self.expression = expression
        self.analysis = None  # analysis.inference.AnalysisResult

    def children(self) -> List[AstNode]:
        return list(self.declarations) + [self.expression]
