"""Streaming JSON-Lines decoding straight into items.

The paper's Section 5.7 uses the JSONiter streaming parser to build items
directly, skipping an intermediate generic-JSON representation.  This
module plays that role: a small recursive-descent JSON parser whose
terminal productions construct :mod:`repro.items` instances directly.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.items import (
    FALSE,
    NULL,
    TRUE,
    ArrayItem,
    DoubleItem,
    IntegerItem,
    Item,
    ObjectItem,
    StringItem,
)
from repro.jsoniq.errors import DynamicException

_WHITESPACE = " \t\r\n"
_ESCAPES = {
    '"': '"', "\\": "\\", "/": "/", "b": "\b", "f": "\f",
    "n": "\n", "r": "\r", "t": "\t",
}


class JsonSyntaxError(DynamicException):
    default_code = "SENR0002"


def parse_json_line_pure(text: str) -> Item:
    """Parse one JSON value into an item with the pure streaming parser,
    requiring full consumption.  This is the faithful port of the
    JSONiter design; :func:`parse_json_line` is the production fast path."""
    item, position = _parse_value(text, _skip_ws(text, 0))
    position = _skip_ws(text, position)
    if position != len(text):
        raise JsonSyntaxError(
            "trailing characters after JSON value at offset {}".format(position)
        )
    return item


def parse_json_line(text: str) -> Item:
    """Parse one JSON value into an item.

    CPython inverts the paper's JSONiter trade-off: the C-accelerated
    ``json`` decoder plus a single wrapping walk is far faster than any
    pure-Python streaming parser, so that is the production path.  The
    streaming decoder above stays as the reference implementation; the
    test suite checks both produce identical items.
    """
    import json

    try:
        return _wrap_fast(json.loads(text))
    except ValueError as error:
        raise JsonSyntaxError(str(error)) from error


_new_string = StringItem.__new__
_new_integer = IntegerItem.__new__
_new_double = DoubleItem.__new__
_new_array = ArrayItem.__new__

_ABSENT = object()


class LazyObjectItem(ObjectItem):
    """An object item whose values wrap on first access.

    The C JSON decoder hands back a plain dict, and most records are
    only ever probed for a handful of keys (a where predicate, a
    grouping key, a sort key) before being counted or discarded —
    wrapping every value eagerly is the single biggest allocation cost
    of a scan.  Single-key probes (``lookup``/``get_item``) wrap just
    the requested value; any structural access through ``pairs``
    materializes the full mapping once and caches it.
    """

    #: ``pushdown_verified`` is set (to True) by the pushed scan only on
    #: records every pushed predicate proved definitively true, letting
    #: the retained where clause skip re-evaluation; it stays *unset*
    #: otherwise, so readers must use ``getattr(..., False)``.
    __slots__ = ("_raw", "pushdown_verified")
    #: The parent's slot descriptor, kept reachable after the property
    #: below shadows its name.
    _pairs_slot = ObjectItem.pairs

    def __init__(self, raw):
        self._raw = raw

    @property
    def pairs(self):
        slot = LazyObjectItem._pairs_slot
        try:
            return slot.__get__(self, LazyObjectItem)
        except AttributeError:
            pairs = {
                key: _wrap_fast(value)
                for key, value in self._raw.items()
            }
            slot.__set__(self, pairs)
            return pairs

    def keys(self):
        return list(self._raw.keys())

    def get_item(self, key):
        value = self._raw.get(key, _ABSENT)
        if value is _ABSENT:
            return None
        return _wrap_fast(value)

    def lookup(self, key):
        value = self._raw.get(key, _ABSENT)
        if value is not _ABSENT:
            yield _wrap_fast(value)

    def __reduce__(self):
        # The default slot-based pickling would setattr ``pairs`` on
        # load, which the property above has no setter for; rebuild from
        # the raw dict instead (the wrapped values re-derive lazily).
        # Needed by the memory manager's disk tier, which round-trips
        # spilled partitions through pickle.
        verified = getattr(self, "pushdown_verified", _ABSENT)
        if verified is _ABSENT:
            return (LazyObjectItem, (self._raw,))
        return (_restore_lazy_object, (self._raw, verified))


def _restore_lazy_object(raw, verified) -> "LazyObjectItem":
    item = LazyObjectItem(raw)
    item.pushdown_verified = verified
    return item


def _wrap_fast(value) -> Item:
    """Wrap a decoded JSON value, minimal dispatch (hot path).

    Items are built through ``__new__`` with direct slot assignment —
    the values coming out of the C JSON decoder are already of the right
    Python types, so the constructors' normalization is skipped.
    Objects wrap lazily (:class:`LazyObjectItem`).
    """
    kind = type(value)
    if kind is str:
        item = _new_string(StringItem)
        item.value = value
        return item
    if kind is bool:
        return TRUE if value else FALSE
    if kind is int:
        item = _new_integer(IntegerItem)
        item.value = value
        return item
    if kind is dict:
        return LazyObjectItem(value)
    if kind is list:
        wrapped = _new_array(ArrayItem)
        wrapped.members = [_wrap_fast(v) for v in value]
        return wrapped
    if kind is float:
        item = _new_double(DoubleItem)
        item.value = value
        return item
    if value is None:
        return NULL
    raise JsonSyntaxError("unsupported JSON value {!r}".format(value))


#: Spark-style parse modes for messy JSON-Lines input.
PARSE_MODES = ("failfast", "permissive", "dropmalformed")

#: The field a ``permissive`` read stores an unparseable line under,
#: mirroring Spark's ``columnNameOfCorruptRecord``.
CORRUPT_RECORD_FIELD = "_corrupt_record"


def iter_json_lines(
    lines,
    mode: str = "failfast",
    corrupt_field: str = CORRUPT_RECORD_FIELD,
    on_malformed=None,
) -> Iterator[Item]:
    """Decode an iterable of JSON-Lines text lines into items.

    ``mode`` decides what one malformed line does to the read (the
    paper's premise is *messy* data sets, so this must be a choice, not
    a crash):

    * ``failfast`` — raise :class:`JsonSyntaxError` (the default);
    * ``permissive`` — yield an object holding the raw line under
      ``corrupt_field`` instead, so downstream queries can inspect it;
    * ``dropmalformed`` — skip the line.

    ``on_malformed(line, error)`` is called for every tolerated bad line
    (the hook the fault ledger uses to count dropped/captured records).
    """
    if mode not in PARSE_MODES:
        raise ValueError(
            "unknown parse mode {!r} (expected one of {})".format(
                mode, ", ".join(PARSE_MODES)
            )
        )
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        try:
            yield parse_json_line(stripped)
        except JsonSyntaxError as error:
            if mode == "failfast":
                raise
            if on_malformed is not None:
                on_malformed(stripped, error)
            if mode == "permissive":
                yield ObjectItem({corrupt_field: StringItem(stripped)})


def iter_json_lines_pushed(
    lines,
    predicates=(),
    mode: str = "failfast",
    corrupt_field: str = CORRUPT_RECORD_FIELD,
    on_malformed=None,
    on_pruned=None,
) -> Iterator[Item]:
    """Decode JSON lines with scan-level predicate pushdown applied.

    ``predicates`` are three-valued callables over the *decoded* dict
    (see :mod:`repro.jsoniq.runtime.flwor.pushdown`): a definite
    ``False`` prunes the record before any item is built; ``True`` and
    ``None`` (unknown) keep it for the retained where clause.  Pruning
    only ever *skips work* the reference path proves redundant —
    outcomes are identical with it off.  (Key projection needs no scan
    support: :class:`LazyObjectItem` already defers value wrapping to
    the keys a query actually touches.)

    Non-object records have no top-level keys, so any pushed predicate
    rejects them definitively (an object lookup on them is the empty
    sequence); with no predicates they pass through unchanged.
    ``on_pruned()`` is called once per record skipped here.
    """
    import json

    if mode not in PARSE_MODES:
        raise ValueError(
            "unknown parse mode {!r} (expected one of {})".format(
                mode, ", ".join(PARSE_MODES)
            )
        )
    loads = json.loads
    predicates = tuple(predicates)
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = loads(stripped)
        except ValueError as error:
            wrapped = JsonSyntaxError(str(error))
            if mode == "failfast":
                raise wrapped from error
            if on_malformed is not None:
                on_malformed(stripped, wrapped)
            if mode == "permissive":
                # A corrupt record has only the corrupt field: every
                # pushed predicate reads a missing key — definite False.
                if predicates:
                    if on_pruned is not None:
                        on_pruned()
                    continue
                yield ObjectItem({corrupt_field: StringItem(stripped)})
            continue
        if type(record) is dict:
            if predicates:
                keep = True
                verified = True
                for predicate in predicates:
                    verdict = predicate(record)
                    if verdict is False:
                        keep = False
                        break
                    if verdict is not True:
                        verified = False
                if not keep:
                    if on_pruned is not None:
                        on_pruned()
                    continue
                item = LazyObjectItem(record)
                if verified:
                    # Every pushed predicate returned a definite True:
                    # the retained where clauses they came from cannot
                    # reject (or error on) this record, so they may
                    # skip re-evaluating it.
                    item.pushdown_verified = True
                yield item
                continue
        elif predicates:
            # Object lookups on a non-object yield the empty sequence:
            # the where clause is guaranteed to reject this record.
            if on_pruned is not None:
                on_pruned()
            continue
        yield _wrap_fast(record)


def shred_json_lines(
    lines,
    mode: str = "failfast",
    corrupt_field: str = CORRUPT_RECORD_FIELD,
    on_malformed=None,
):
    """Decode JSON lines and shred them into one ``ColumnBatch``.

    The columnar twin of :func:`iter_json_lines_pushed` up to (but not
    including) predicate evaluation: lines decode through the same C
    ``json`` path with the same parse-mode semantics — failfast raises,
    permissive replaces a bad line with a corrupt-record placeholder
    (its row index lands in ``batch.corrupt_rows`` so a pushed scan can
    prune it unconditionally, exactly like the row path), dropmalformed
    skips it, and ``on_malformed`` fires for every tolerated bad line.
    Predicate masks are applied later, per query, over the shared batch.
    """
    import json

    from repro.items.columnar import shred_records

    if mode not in PARSE_MODES:
        raise ValueError(
            "unknown parse mode {!r} (expected one of {})".format(
                mode, ", ".join(PARSE_MODES)
            )
        )
    loads = json.loads
    records = []
    corrupt_rows = set()
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = loads(stripped)
        except ValueError as error:
            wrapped = JsonSyntaxError(str(error))
            if mode == "failfast":
                raise wrapped from error
            if on_malformed is not None:
                on_malformed(stripped, wrapped)
            if mode == "permissive":
                corrupt_rows.add(len(records))
                records.append({corrupt_field: stripped})
            continue
        records.append(record)
    batch = shred_records(records)
    if corrupt_rows:
        batch.corrupt_rows = frozenset(corrupt_rows)
    return batch


def _skip_ws(text: str, position: int) -> int:
    while position < len(text) and text[position] in _WHITESPACE:
        position += 1
    return position


def _parse_value(text: str, position: int) -> Tuple[Item, int]:
    if position >= len(text):
        raise JsonSyntaxError("unexpected end of JSON input")
    char = text[position]
    if char == "{":
        return _parse_object(text, position)
    if char == "[":
        return _parse_array(text, position)
    if char == '"':
        value, position = _parse_string(text, position)
        return StringItem(value), position
    if char == "t":
        if text.startswith("true", position):
            return TRUE, position + 4
    elif char == "f":
        if text.startswith("false", position):
            return FALSE, position + 5
    elif char == "n":
        if text.startswith("null", position):
            return NULL, position + 4
    elif char == "-" or char.isdigit():
        return _parse_number(text, position)
    raise JsonSyntaxError(
        "unexpected character {!r} at offset {}".format(char, position)
    )


def _parse_object(text: str, position: int) -> Tuple[Item, int]:
    position = _skip_ws(text, position + 1)
    pairs = {}
    if position < len(text) and text[position] == "}":
        return ObjectItem(pairs), position + 1
    while True:
        if position >= len(text) or text[position] != '"':
            raise JsonSyntaxError(
                "expected an object key at offset {}".format(position)
            )
        key, position = _parse_string(text, position)
        position = _skip_ws(text, position)
        if position >= len(text) or text[position] != ":":
            raise JsonSyntaxError(
                "expected ':' at offset {}".format(position)
            )
        value, position = _parse_value(text, _skip_ws(text, position + 1))
        pairs[key] = value
        position = _skip_ws(text, position)
        if position < len(text) and text[position] == ",":
            position = _skip_ws(text, position + 1)
            continue
        if position < len(text) and text[position] == "}":
            return ObjectItem(pairs), position + 1
        raise JsonSyntaxError(
            "expected ',' or '}}' at offset {}".format(position)
        )


def _parse_array(text: str, position: int) -> Tuple[Item, int]:
    position = _skip_ws(text, position + 1)
    members = []
    if position < len(text) and text[position] == "]":
        return ArrayItem(members), position + 1
    while True:
        value, position = _parse_value(text, position)
        members.append(value)
        position = _skip_ws(text, position)
        if position < len(text) and text[position] == ",":
            position = _skip_ws(text, position + 1)
            continue
        if position < len(text) and text[position] == "]":
            return ArrayItem(members), position + 1
        raise JsonSyntaxError(
            "expected ',' or ']' at offset {}".format(position)
        )


def _parse_string(text: str, position: int) -> Tuple[str, int]:
    position += 1  # opening quote
    pieces = []
    plain_start = position
    while position < len(text):
        char = text[position]
        if char == '"':
            pieces.append(text[plain_start:position])
            return "".join(pieces), position + 1
        if char == "\\":
            pieces.append(text[plain_start:position])
            escape = text[position + 1] if position + 1 < len(text) else ""
            if escape == "u":
                digits = text[position + 2:position + 6]
                try:
                    code = int(digits, 16)
                except ValueError:
                    raise JsonSyntaxError(
                        "bad unicode escape at offset {}".format(position)
                    ) from None
                position += 6
                if 0xD800 <= code <= 0xDBFF and text.startswith(
                    "\\u", position
                ):
                    # Combine a UTF-16 surrogate pair into one code point.
                    low_digits = text[position + 2:position + 6]
                    try:
                        low = int(low_digits, 16)
                    except ValueError:
                        low = -1
                    if 0xDC00 <= low <= 0xDFFF:
                        code = 0x10000 + ((code - 0xD800) << 10) + (
                            low - 0xDC00
                        )
                        position += 6
                pieces.append(chr(code))
            elif escape in _ESCAPES:
                pieces.append(_ESCAPES[escape])
                position += 2
            else:
                raise JsonSyntaxError(
                    "bad escape at offset {}".format(position)
                )
            plain_start = position
        else:
            position += 1
    raise JsonSyntaxError("unterminated string")


def _parse_number(text: str, position: int) -> Tuple[Item, int]:
    start = position
    if text[position] == "-":
        position += 1
    while position < len(text) and text[position].isdigit():
        position += 1
    is_double = False
    if position < len(text) and text[position] == ".":
        is_double = True
        position += 1
        while position < len(text) and text[position].isdigit():
            position += 1
    if position < len(text) and text[position] in "eE":
        is_double = True
        position += 1
        if position < len(text) and text[position] in "+-":
            position += 1
        while position < len(text) and text[position].isdigit():
            position += 1
    literal = text[start:position]
    if not literal or literal == "-":
        raise JsonSyntaxError("bad number at offset {}".format(start))
    if is_double:
        return DoubleItem(float(literal)), position
    return IntegerItem(int(literal)), position
