"""Whole-stage Python code generation for fused + columnar pipelines.

The interpreter pays per-item virtual dispatch on every operator hop —
the overhead Flare removes from Spark by collapsing a plan into one
generated loop, and that HyPer-style produce/consume compilation shows
compounds with a columnar substrate.  This package compiles an eligible
FLWOR chain (leading ``json-file`` scan + covered where prefix + return
expression) into **one generated Python function**: textual emission →
``compile()`` → closure, replacing the closure-chained per-partition
pipeline (unbox → bind → predicate → EVALUATE_EXPRESSION) with a single
flat, mask-aware loop straight over :class:`~repro.items.columnar.
ColumnBatch` vectors, boxing items only at the yield boundary.

Layering mirrors :mod:`repro.jsoniq.runtime.flwor.columnar`:

* :func:`plan_codegen` runs at compile time (from ``pushdown.annotate``)
  and attaches a :class:`CodegenPlan` — the decision record plus, when
  the chain is supported, the generated source — to the head for-clause
  and the return clause;
* :func:`stage_rdd` is the runtime consumer ``ReturnClauseIterator.
  get_rdd`` asks first; it returns the generated stage's RDD, or None
  whenever a gate fails (``RumbleConfig.codegen`` / ``RUMBLE_CODEGEN``,
  which also requires pushdown + columnar) so the interpreter stays the
  untouched reference path.

Specialization is type-driven (PR 3): when static inference proved both
operands single-numeric (``BinaryArithmeticIterator.static_numeric``)
the emitter writes ``a + b`` with **no** atomization/singleton/
cardinality checks at all; unproven operands get one inlined raw-type
guard whose failure routes that row to the reference evaluator, so
errors and edge cases stay byte-identical by construction.
"""

from repro.jsoniq.codegen.emitter import Unsupported, emit_source
from repro.jsoniq.codegen.plan import (
    CodegenPlan,
    plan_codegen,
    stage_rdd,
)

__all__ = [
    "CodegenPlan",
    "Unsupported",
    "emit_source",
    "plan_codegen",
    "stage_rdd",
]
