"""Codegen planning and the generated stage's runtime entry point.

``plan_codegen`` is the compile-time half: called from
``pushdown.annotate`` right after ``plan_columnar``, it decides whether
the chain fits the whole-stage shape, runs the emitter, and attaches
the :class:`CodegenPlan` decision record to the head for-clause and the
return clause (explain() reads it from either end).

``stage_rdd`` is the runtime half: ``ReturnClauseIterator.get_rdd``
offers it the chain first; when every gate passes it compiles the
emitted source (once per plan — the server PlanCache keeps the compiled
function warm across executions) and maps it over the masked batch RDD.
Any gate failure returns None and the interpreter runs unchanged.
"""

from __future__ import annotations

from typing import List, Optional

from repro.jsoniq.codegen.emitter import EmittedStage, Unsupported, emit_source


class _RuntimeBundle:
    """Everything the generated loop borrows from the interpreter."""

    __slots__ = (
        "wrap", "ref_emit", "recheck", "fallback_rows", "params",
        "absent", "list_column",
    )

    def __init__(self, wrap, ref_emit, recheck, fallback_rows, params,
                 absent, list_column):
        self.wrap = wrap
        self.ref_emit = ref_emit
        self.recheck = recheck
        self.fallback_rows = fallback_rows
        self.params = params
        self.absent = absent
        self.list_column = list_column


class CodegenPlan:
    """The compile-time codegen decision record for one FLWOR chain.

    Like :class:`~repro.jsoniq.runtime.flwor.columnar.ColumnarPlan`,
    decisions depending on post-``annotate`` state (``plan.count_only``
    flips after us) are taken lazily in :meth:`describe`.  The compiled
    function is memoized on the plan — under the server PlanCache the
    plan object itself is what gets reused, so a warm query shape skips
    emission *and* ``compile()``.
    """

    def __init__(self, plan, head, wheres: List[object],
                 reason: Optional[str] = None,
                 stage: Optional[EmittedStage] = None):
        #: The underlying :class:`PushdownPlan`.
        self.plan = plan
        #: The leading for-clause iterator (scans the file).
        self.head = head
        #: The covered where-clause prefix (already pushed into masks).
        self.wheres = wheres
        #: Why emission was declined, or None when supported.
        self.reason = reason
        #: The emitter's product when supported.
        self.stage = stage
        self._function = None

    @property
    def supported(self) -> bool:
        return self.reason is None

    @property
    def source(self) -> Optional[str]:
        return self.stage.source if self.stage is not None else None

    def function(self, obs=None):
        """The compiled stage function (memoized on the plan)."""
        if self._function is None:
            namespace = {}
            code = compile(
                self.stage.source,
                "<codegen:${}>".format(self.plan.variable),
                "exec",
            )
            exec(code, namespace)
            self._function = namespace["_codegen_stage"]
            if obs is not None:
                obs.metrics.counter("rumble.codegen.compiled").inc()
        elif obs is not None:
            obs.metrics.counter("rumble.codegen.cache_hits").inc()
        return self._function

    def describe(self) -> List[str]:
        """Explain lines (lazy — see class docstring)."""
        if self.reason is not None:
            return ["codegen: declined ({})".format(self.reason)]
        if self.plan.count_only:
            return ["codegen: idle (count kernel serves this consumer)"]
        return [
            "codegen: whole-stage loop ({} where mask{}; {})".format(
                len(self.wheres),
                "" if len(self.wheres) == 1 else "s",
                self.stage.summary,
            )
        ]


def plan_codegen(head, return_iterator, plan) -> None:
    """Attach the codegen plan to a compiled chain.

    Called by ``pushdown.annotate`` right after ``plan_columnar`` and
    before the top-k rewrite, so the chain is still the plain clause
    list.  Always attaches a plan — declined ones carry the reason for
    explain().
    """
    from repro.jsoniq.runtime.flwor.clauses import WhereClauseIterator

    chain = []
    clause = return_iterator.input_clause
    while clause is not None and clause is not head:
        chain.append(clause)
        clause = getattr(clause, "input_clause", None)
    if clause is not head:
        return
    chain.reverse()

    wheres = []
    position = 0
    while (
        position < len(chain)
        and isinstance(chain[position], WhereClauseIterator)
        and chain[position].pushdown_plan is plan
    ):
        wheres.append(chain[position])
        position += 1
    rest = chain[position:]

    reason = None
    stage = None
    if head.position_variable is not None:
        reason = "positional for-variable"
    elif head.allowing_empty:
        reason = "allowing empty"
    elif not hasattr(head.expression, "get_rdd_columnar"):
        reason = "scan source has no columnar reader"
    elif rest:
        reason = "{} between scan and return".format(
            type(rest[0]).__name__
        )
    else:
        try:
            stage = emit_source(
                plan.variable, wheres, return_iterator.expression
            )
        except Unsupported as unsupported:
            reason = str(unsupported)

    cgplan = CodegenPlan(plan, head, wheres, reason, stage)
    head.codegen_plan = cgplan
    return_iterator.codegen_plan = cgplan


def _codegen_on(context) -> bool:
    """The runtime gate: codegen rides the columnar batch scan, so both
    switches must be on for the generated loop to run."""
    from repro.core.config import codegen_enabled, columnar_enabled

    runtime = context.runtime
    if runtime is None:
        return False
    return codegen_enabled(runtime.config) and columnar_enabled(
        runtime.config
    )


def stage_rdd(return_iterator, context):
    """The generated stage's RDD, or None to run the interpreter.

    Mirrors the count kernel's gating: compile-time support recorded on
    the plan, runtime switches, a single-scan head and no top-k rewrite
    (top-k replaces the return clause's input, breaking the chain the
    source was emitted for).
    """
    from repro.items.columnar import ABSENT, ListColumn
    from repro.jsoniq.jsonlines import _wrap_fast
    from repro.jsoniq.runtime.base import _obs_of
    from repro.jsoniq.runtime.flwor.clauses import _row_context
    from repro.jsoniq.runtime.flwor.columnar import _build_recheck

    cgplan = getattr(return_iterator, "codegen_plan", None)
    if cgplan is None or not cgplan.supported:
        return None
    head = cgplan.head
    if (
        not _codegen_on(context)
        or head.input_clause is not None
        or return_iterator.topk is not None
    ):
        return None
    plan = cgplan.plan
    variable = plan.variable
    expression = return_iterator.expression
    obs = _obs_of(context)
    function = cgplan.function(obs)
    if obs is not None:
        obs.metrics.counter("rumble.codegen.taken").inc()
        fallback_rows = obs.metrics.counter("rumble.codegen.fallback_rows")
    else:
        fallback_rows = None

    def ref_emit(item):
        return expression.materialize_local(
            _row_context(context, {variable: [item]})
        )

    bundle = _RuntimeBundle(
        wrap=_wrap_fast,
        ref_emit=ref_emit,
        recheck=_build_recheck(cgplan.wheres, context),
        fallback_rows=fallback_rows,
        params=tuple(
            node.materialize_local(context)[0].to_python()
            for node in cgplan.stage.params
        ),
        absent=ABSENT,
        list_column=ListColumn,
    )
    batches = head.expression.get_rdd_columnar(context, plan)

    def run(parts):
        return function(parts, bundle)

    run._columnar_label = "codegen[${}]".format(variable)
    return batches.map_partitions(run)
