"""Textual emission of the whole-stage loop.

The emitter walks the return expression (and only the return
expression — the scan and the covered where prefix are handled by the
surrounding loop protocol) and compiles each sub-expression into a
*fragment*: a Python expression string plus what is statically known
about it.  Fragments compute **raw** Python values (str/int/float/bool/
None, or the ``ABSENT`` sentinel for the empty sequence) — items are
built exactly once, at the yield boundary, with the same
``_wrap_fast`` the lazy row path uses, so results are identical by
construction.

Two invariants keep the generated code equivalent to the interpreter:

* **Fragments never raise and never yield.**  Whatever the reference
  evaluator would reject (non-numeric operand, cross-type comparison,
  heterogeneous value) is caught by an inlined raw-type guard whose
  failure branch re-evaluates the *whole row* through the reference
  expression — so error classes, messages and ordering stay exact.
* **Specialization only widens the fast lane.**  When PR 3's static
  inference proved a subtree (``static_numeric`` on arithmetic,
  literal operands on comparisons), the guard is omitted entirely and
  the emitted line is the bare Python operator; unproven subtrees keep
  the guard.  Either way the slow path is the interpreter itself.

Anything outside the supported shape raises :class:`Unsupported` at
planning time; the plan records the reason and the pipeline stays on
the interpreted (fused/columnar) path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Value-comparison spelling -> Python operator.  General comparisons
#: map onto the same operators through ``_GENERAL_TO_VALUE`` but differ
#: on empty operands (empty sequence compares FALSE instead of empty).
_VALUE_OPS = {
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
}
_GENERAL_TO_VALUE = {
    "=": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}


class Unsupported(Exception):
    """The chain contains a shape the emitter does not specialize.

    Raised (and caught) at planning time only — the reason becomes the
    plan's ``declined`` note in explain(), never a user-visible error.
    """


class Fragment:
    """A compiled sub-expression: Python source computing a raw value.

    ``kind`` is the statically proven family of the raw value —
    ``"number"``/``"string"``/``"boolean"`` or None for unknown (guards
    required).  ``maybe_absent`` marks fragments that can evaluate to
    the ``ABSENT`` sentinel (the empty sequence), which every consumer
    must short-circuit on before touching the value.
    """

    __slots__ = ("expr", "kind", "maybe_absent")

    def __init__(self, expr: str, kind: Optional[str] = None,
                 maybe_absent: bool = False):
        self.expr = expr
        self.kind = kind
        self.maybe_absent = maybe_absent


def _is_num(expr: str) -> str:
    # type(x) is int deliberately excludes bool (type(True) is bool):
    # booleans are not numbers in JSONiq arithmetic.
    return "(type({0}) is int or type({0}) is float)".format(expr)


class _Emitter:
    """Stateful single-pass emitter for one pipeline's return expression."""

    def __init__(self, variable: str):
        self.variable = variable
        #: key -> (flags_name, vals_name), in first-use order; drives the
        #: per-batch column preludes.
        self.columns: Dict[str, Tuple[str, str]] = {}
        #: ParameterIterator nodes in slot order (plan-cache parameters
        #: are runtime inputs, never baked into the source).
        self.params: List[object] = []
        self.specializations: Dict[str, int] = {}
        self._temp = 0
        self._summary: List[str] = []

    # -- bookkeeping ----------------------------------------------------

    def temp(self) -> str:
        name = "_t{}".format(self._temp)
        self._temp += 1
        return name

    def count(self, kind: str) -> None:
        self.specializations[kind] = self.specializations.get(kind, 0) + 1

    def note(self, text: str) -> None:
        if text not in self._summary:
            self._summary.append(text)

    def fallback(self, body: List[str], indent: int) -> None:
        """Route this row through the reference evaluator and move on."""
        pad = " " * indent
        body.append(pad + "if _fb is not None:")
        body.append(pad + "    _fb.inc()")
        body.append(pad + "yield from _ref_emit(_unshred(_row, _st == 2))")
        body.append(pad + "continue")

    # -- fragment compilation -------------------------------------------

    def value(self, node, body: List[str], indent: int) -> Fragment:
        """Compile ``node`` into a fragment, appending statements to body."""
        from repro.jsoniq.runtime.arithmetic import BinaryArithmeticIterator
        from repro.jsoniq.runtime.comparison import ComparisonIterator
        from repro.jsoniq.runtime.navigation import ObjectLookupIterator
        from repro.jsoniq.runtime.primary import (
            FoldedConstantIterator,
            LiteralIterator,
            ParameterIterator,
        )

        if isinstance(node, LiteralIterator):
            return self._constant(node.item)
        if isinstance(node, FoldedConstantIterator):
            return self._constant(node.item)
        if isinstance(node, ParameterIterator):
            return self._parameter(node)
        if isinstance(node, ObjectLookupIterator):
            return self._column_read(node, body, indent)
        if isinstance(node, BinaryArithmeticIterator):
            return self._arithmetic(node, body, indent)
        if isinstance(node, ComparisonIterator):
            return self._comparison(node, body, indent)
        raise Unsupported(
            "expression " + type(node).__name__ + " stays interpreted"
        )

    def _constant(self, item) -> Fragment:
        from repro.items.atomics import (
            BooleanItem,
            DoubleItem,
            IntegerItem,
            NullItem,
            StringItem,
        )

        if type(item) is StringItem:
            return Fragment(repr(item.value), "string")
        if type(item) is IntegerItem:
            return Fragment(repr(item.value), "number")
        if type(item) is DoubleItem:
            return Fragment(repr(item.value), "number")
        if type(item) is BooleanItem:
            return Fragment("True" if item.value else "False", "boolean")
        if type(item) is NullItem:
            # Raw None: consumers guard on type, so null routes to the
            # reference evaluator (decimal/temporal literals likewise).
            return Fragment("None", None)
        raise Unsupported(
            item.type_name + " literals stay interpreted"
        )

    def _parameter(self, node) -> Fragment:
        # Plan-cache parameter: the value is bound per execution, so it
        # is read from the runtime bundle, never inlined into the
        # source.  The slot's token kind is part of the plan shape, so
        # the family proof holds across re-executions.
        kind = {
            "integer": "number", "double": "number",
            "string": "string", "boolean": "boolean",
        }.get(node.kind)
        if kind is None and node.kind != "null":
            raise Unsupported(
                node.kind + " parameters stay interpreted"
            )
        name = "_p{}".format(len(self.params))
        self.params.append(node)
        self.count("parameter")
        return Fragment(name, kind)

    def _column_read(self, node, body: List[str], indent: int) -> Fragment:
        from repro.jsoniq.runtime.primary import VariableIterator

        source = node.source
        if not (isinstance(source, VariableIterator)
                and source.name == self.variable):
            raise Unsupported(
                "lookup source is not the scan variable"
            )
        key = node._constant_key
        if key is None:
            raise Unsupported("computed object-lookup key")
        if key not in self.columns:
            index = len(self.columns)
            self.columns[key] = (
                "_flags{}".format(index), "_vals{}".format(index)
            )
        flags, vals = self.columns[key]
        var = self.temp()
        pad = " " * indent
        # PRESENT=0 -> the shredded value, NULL=1 -> raw None,
        # MISSING=2 (or key outside the batch schema) -> empty sequence.
        body.append(pad + "if {} is None:".format(flags))
        body.append(pad + "    {} = ABSENT".format(var))
        body.append(pad + "else:")
        body.append(pad + "    _f = {}[_row]".format(flags))
        body.append(
            pad + "    {} = {}[_row] if _f == 0 else"
            " (None if _f == 1 else ABSENT)".format(var, vals)
        )
        self.count("column_read")
        self.note("${}.{} read straight off the column".format(
            self.variable, key))
        return Fragment(var, None, True)

    def _arithmetic(self, node, body: List[str], indent: int) -> Fragment:
        if node.op not in ("+", "-", "*"):
            raise Unsupported(
                "operator " + node.op + " stays interpreted"
                " (decimal-typed result)"
            )
        left = self.value(node.left, body, indent)
        right = self.value(node.right, body, indent)
        for operand in (left, right):
            if operand.kind not in (None, "number"):
                raise Unsupported(
                    "statically non-numeric operand of " + node.op
                )
        pad = " " * indent
        var = self.temp()
        compute = "{} = {} {} {}".format(var, left.expr, node.op, right.expr)
        absent = [f.expr for f in (left, right) if f.maybe_absent]
        if node.static_numeric:
            # PR 3 proved both operands single-numeric at compile time:
            # no atomization, no singleton check, no type guard — the
            # emitted line IS the operator.
            self.count("static_arith")
            self.note("arithmetic specialized on static types")
            if absent:
                body.append(pad + "if {}:".format(" or ".join(
                    "{} is ABSENT".format(e) for e in absent)))
                body.append(pad + "    {} = ABSENT".format(var))
                body.append(pad + "else:")
                body.append(pad + "    " + compute)
            else:
                body.append(pad + compute)
            return Fragment(var, "number", bool(absent))
        guards = [f.expr for f in (left, right) if f.kind != "number"]
        self.count("static_arith" if not guards else "guarded_arith")
        if guards:
            self.note("arithmetic guarded on raw types")
            # The reference atomizes both operands before its empty
            # check, so a non-atomic (list) operand errors even when
            # the other side is empty — keep that ordering.
            body.append(pad + "if {}:".format(" or ".join(
                "type({}) is list".format(e) for e in guards)))
            self.fallback(body, indent + 4)
        prefix = "if"
        if absent:
            body.append(pad + "if {}:".format(" or ".join(
                "{} is ABSENT".format(e) for e in absent)))
            body.append(pad + "    {} = ABSENT".format(var))
            prefix = "elif"
        if guards:
            body.append(pad + "{} {}:".format(prefix, " and ".join(
                _is_num(e) for e in guards)))
            body.append(pad + "    " + compute)
            body.append(pad + "else:")
            self.fallback(body, indent + 4)
        elif absent:
            body.append(pad + "else:")
            body.append(pad + "    " + compute)
        else:
            body.append(pad + compute)
        return Fragment(var, "number", bool(absent))

    def _comparison(self, node, body: List[str], indent: int) -> Fragment:
        general = node.op in _GENERAL_TO_VALUE
        value_op = _GENERAL_TO_VALUE.get(node.op, node.op)
        if value_op not in _VALUE_OPS:
            raise Unsupported("operator " + node.op + " stays interpreted")
        pyop = _VALUE_OPS[value_op]
        left = self.value(node.left, body, indent)
        right = self.value(node.right, body, indent)
        if "boolean" in (left.kind, right.kind):
            raise Unsupported("boolean comparison stays interpreted")
        if (left.kind and right.kind and left.kind != right.kind):
            raise Unsupported("cross-type comparison stays interpreted")
        pad = " " * indent
        var = self.temp()
        compute = "{} = {} {} {}".format(var, left.expr, pyop, right.expr)
        absent = [f.expr for f in (left, right) if f.maybe_absent]
        unknown = [f for f in (left, right) if f.kind is None]
        result = Fragment(var, "boolean", bool(absent) and not general)
        proven = left.kind or right.kind
        if proven == "number":
            branches = [" and ".join(_is_num(f.expr) for f in unknown)]
        elif proven == "string":
            branches = [" and ".join(
                "type({}) is str".format(f.expr) for f in unknown)]
        else:
            # Both sides unknown: dispatch on the two orderable raw
            # families; anything else (bool/null/nested/mixed) falls
            # back so the interpreter raises or compares as specified.
            branches = [
                "{} and {}".format(_is_num(left.expr), _is_num(right.expr)),
                "type({}) is str and type({}) is str".format(
                    left.expr, right.expr),
            ]
        if not unknown:
            # Both families proven: a guard could never fire, so the
            # emitted comparison is the bare Python operator.
            self.count("static_compare")
            self.note("comparison specialized on static types")
            if absent:
                # A value comparison over an empty operand is empty; a
                # general comparison quantifies existentially, so an
                # empty side is False.
                body.append(pad + "if {}:".format(" or ".join(
                    "{} is ABSENT".format(e) for e in absent)))
                body.append(pad + "    {} = {}".format(
                    var, "False" if general else "ABSENT"))
                body.append(pad + "else:")
                body.append(pad + "    " + compute)
            else:
                body.append(pad + compute)
            return result
        self.count("guarded_compare")
        self.note("comparison guarded on raw types")
        if not general:
            # Value comparison: the reference atomizes both operands
            # before its empty check, so a non-atomic (list) operand
            # errors even when the other side is empty.
            body.append(pad + "if {}:".format(" or ".join(
                "type({}) is list".format(f.expr) for f in unknown)))
            self.fallback(body, indent + 4)
            prefix = "if"
            if absent:
                body.append(pad + "if {}:".format(" or ".join(
                    "{} is ABSENT".format(e) for e in absent)))
                body.append(pad + "    {} = ABSENT".format(var))
                prefix = "elif"
            for branch in branches:
                body.append(pad + "{} {}:".format(prefix, branch))
                body.append(pad + "    " + compute)
                prefix = "elif"
            body.append(pad + "else:")
            self.fallback(body, indent + 4)
            return result
        # General comparison materializes lazily left-to-right: an empty
        # LEFT side is False before the right side is ever inspected,
        # but a present non-atomic on either side raises.
        prefix = "if"
        if left.maybe_absent:
            body.append(pad + "if {} is ABSENT:".format(left.expr))
            body.append(pad + "    {} = False".format(var))
            prefix = "elif"
        list_checks = [
            "type({}) is list".format(f.expr) for f in unknown
        ]
        body.append(pad + "{} {}:".format(prefix, " or ".join(list_checks)))
        self.fallback(body, indent + 4)
        prefix = "elif"
        if right.maybe_absent:
            body.append(pad + "{} {} is ABSENT:".format(prefix, right.expr))
            body.append(pad + "    {} = False".format(var))
        for branch in branches:
            body.append(pad + "{} {}:".format(prefix, branch))
            body.append(pad + "    " + compute)
        body.append(pad + "else:")
        self.fallback(body, indent + 4)
        return result

    # -- return-expression shapes ---------------------------------------

    def emit_return(self, expression, body: List[str], indent: int) -> None:
        """Append the per-row emission statements for the return clause."""
        from repro.jsoniq.runtime.primary import (
            LiteralIterator,
            ObjectConstructorIterator,
            VariableIterator,
        )

        pad = " " * indent
        if (isinstance(expression, VariableIterator)
                and expression.name == self.variable):
            # Bare ``return $v``: the one shape that must box the full
            # record — reuse the batch's lazy unshredder (it tags
            # pushdown-verified rows exactly like the masked row path).
            self.count("boxed_return")
            self.note("bare return boxes via the batch unshredder")
            body.append(pad + "yield _unshred(_row, _st == 2)")
            return
        if isinstance(expression, ObjectConstructorIterator):
            parts = []
            for key_iterator, value_iterator in expression.pairs:
                if not (isinstance(key_iterator, LiteralIterator)
                        and key_iterator.item.is_string):
                    raise Unsupported("computed object-constructor key")
                fragment = self.value(value_iterator, body, indent)
                value = fragment.expr
                if fragment.maybe_absent:
                    # The reference constructor turns an empty value
                    # sequence into null — exactly what raw None wraps to.
                    var = self.temp()
                    body.append(pad + "{} = None if {} is ABSENT else {}"
                                .format(var, value, value))
                    value = var
                parts.append("{!r}: {}".format(
                    key_iterator.item.value, value))
            self.count("object_construct")
            self.note("object built as a dict, wrapped once")
            body.append(pad + "yield _wrap({{{}}})".format(", ".join(parts)))
            return
        # Scalar return: 0-or-1 raw values wrapped at the boundary.
        fragment = self.value(expression, body, indent)
        if fragment.maybe_absent:
            body.append(pad + "if {} is not ABSENT:".format(fragment.expr))
            body.append(pad + "    yield _wrap({})".format(fragment.expr))
        else:
            body.append(pad + "yield _wrap({})".format(fragment.expr))


class EmittedStage:
    """The emitter's product: source text plus what the plan reports."""

    __slots__ = ("source", "summary", "keys", "specializations", "params")

    def __init__(self, source, summary, keys, specializations, params):
        self.source = source
        self.summary = summary
        self.keys = keys
        self.specializations = specializations
        self.params = params


def emit_source(variable: str, wheres, expression) -> EmittedStage:
    """Emit the full ``_codegen_stage`` source for one pipeline.

    ``wheres`` is the covered where prefix (already pushed into the
    scan's predicate masks); non-empty means surviving RETAINED rows
    still need the exact recheck the masked row path applies.  Raises
    :class:`Unsupported` when any piece of the chain falls outside the
    specialized shapes.
    """
    emitter = _Emitter(variable)
    rows: List[str] = []
    emitter.emit_return(expression, rows, 12)

    lines = ["def _codegen_stage(_batches, _rt):"]
    lines.append("    _wrap = _rt.wrap")
    lines.append("    _ref_emit = _rt.ref_emit")
    lines.append("    _fb = _rt.fallback_rows")
    lines.append("    ABSENT = _rt.absent")
    recheck = bool(wheres)
    if recheck:
        lines.append("    _recheck = _rt.recheck")
    if emitter.columns:
        lines.append("    _ListColumn = _rt.list_column")
    for index, node in enumerate(emitter.params):
        lines.append("    _p{0} = _rt.params[{0}]".format(index))
    lines.append("    for _masked in _batches:")
    lines.append("        _batch = _masked.batch")
    lines.append("        _statuses = _masked.statuses")
    lines.append("        _escaped = _batch.escaped")
    lines.append("        _unshred = _batch.unshred_row")
    if emitter.columns:
        lines.append("        _cols = _batch.columns")
        for key, (flags, vals) in emitter.columns.items():
            lines.append("        _col = _cols.get({!r})".format(key))
            lines.append("        if _col is None:")
            lines.append("            {} = {} = None".format(flags, vals))
            lines.append("        elif type(_col) is _ListColumn:")
            # List columns store their data in offset/flat arrays, not
            # ``values`` — pre-materialize so the row loop stays flat.
            lines.append("            {} = _col.validity".format(flags))
            lines.append(
                "            {} = [_col.value_at(_i) if {}[_i] == 0"
                " else None for _i in range(_batch.row_count)]"
                .format(vals, flags)
            )
            lines.append("        else:")
            lines.append("            {} = _col.validity".format(flags))
            lines.append("            {} = _col.values".format(vals))
    lines.append("        for _row in range(_batch.row_count):")
    lines.append("            _st = _statuses[_row]")
    lines.append("            if _st == 0:")
    lines.append("                continue")
    lines.append("            if _row in _escaped:")
    lines.append("                _item = _unshred(_row, _st == 2)")
    if recheck:
        lines.append(
            "                if _st != 2 and not _recheck({{{!r}: [_item]}}):"
            .format(variable)
        )
        lines.append("                    continue")
    lines.append("                yield from _ref_emit(_item)")
    lines.append("                continue")
    if recheck:
        lines.append(
            "            if _st != 2 and not _recheck"
            "({{{!r}: [_unshred(_row)]}}):".format(variable)
        )
        lines.append("                continue")
    lines.extend(rows)
    source = "\n".join(lines) + "\n"
    summary = "; ".join(emitter._summary) or "straight-through loop"
    return EmittedStage(
        source=source,
        summary=summary,
        keys=list(emitter.columns),
        specializations=dict(emitter.specializations),
        params=list(emitter.params),
    )
