"""Command-line interface: run JSONiq queries like the Rumble jar does.

Usage::

    python -m repro 'for $x in 1 to 3 return $x * $x'
    python -m repro --query-file query.jq --output out-dir
    python -m repro --shell
    echo 'count(json-file("data.json"));' | python -m repro --shell
    python -m repro serve --port 8090 --max-concurrent 8
"""

from __future__ import annotations

import argparse
import sys

from repro.core import Rumble, RumbleConfig
from repro.core.shell import RumbleShell
from repro.jsoniq.errors import JsoniqException


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run JSONiq queries on the Rumble reproduction engine.",
    )
    parser.add_argument(
        "query", nargs="?", help="JSONiq query text to execute"
    )
    parser.add_argument(
        "--query", "-q", dest="query_option", metavar="QUERY",
        help="JSONiq query text to execute (alternative to the "
             "positional argument)",
    )
    parser.add_argument(
        "--query-file", "-f", help="read the query from a file"
    )
    parser.add_argument(
        "--output", "-o",
        help="write results as JSON Lines to this directory "
             "(parallel part files) instead of printing",
    )
    parser.add_argument(
        "--cap", type=int, default=200,
        help="maximum number of items to print (default 200)",
    )
    parser.add_argument(
        "--mount", action="append", default=[], metavar="SCHEME=DIR",
        help="serve scheme:// URIs from a local directory "
             "(e.g. --mount hdfs=/data)",
    )
    parser.add_argument(
        "--shell", action="store_true",
        help="start the interactive shell (reads stdin)",
    )
    parser.add_argument(
        "--parse-mode", choices=("failfast", "permissive", "dropmalformed"),
        default="failfast",
        help="how json-file()/structured-json-file() treat malformed "
             "lines: failfast raises, permissive captures the raw line "
             "under _corrupt_record, dropmalformed skips it",
    )
    parser.add_argument(
        "--chaos-seed", type=int, metavar="SEED",
        help="run under the deterministic chaos harness with this seed "
             "(injects task crashes, executor deaths, shuffle-fetch "
             "failures and stragglers; recovery is reported on stderr)",
    )
    parser.add_argument(
        "--chaos-crash-rate", type=float, default=0.1, metavar="RATE",
        help="with --chaos-seed, per-attempt task crash probability "
             "(default 0.1)",
    )
    parser.add_argument(
        "--chaos-fetch-rate", type=float, default=0.05, metavar="RATE",
        help="with --chaos-seed, shuffle-fetch failure probability "
             "(default 0.05)",
    )
    parser.add_argument(
        "--chaos-slow-rate", type=float, default=0.05, metavar="RATE",
        help="with --chaos-seed, straggler-task probability "
             "(default 0.05)",
    )
    parser.add_argument(
        "--adaptive", dest="adaptive", action="store_true", default=None,
        help="force adaptive query execution on (runtime partition "
             "coalescing, skew splitting, join re-planning; the default "
             "follows spark.adaptive.enabled / RUMBLE_ADAPTIVE)",
    )
    parser.add_argument(
        "--no-adaptive", dest="adaptive", action="store_false",
        help="force adaptive query execution off",
    )
    parser.add_argument(
        "--columnar", dest="columnar", action="store_true", default=None,
        help="force vectorized columnar execution on (shredded typed "
             "batches, predicate masks, batch kernels; the default "
             "follows RUMBLE_COLUMNAR)",
    )
    parser.add_argument(
        "--no-columnar", dest="columnar", action="store_false",
        help="force vectorized columnar execution off (row-at-a-time "
             "reference scan)",
    )
    parser.add_argument(
        "--codegen", dest="codegen", action="store_true", default=None,
        help="force whole-stage code generation on (eligible pipelines "
             "compile into one generated Python loop over columnar "
             "batches; the default follows RUMBLE_CODEGEN)",
    )
    parser.add_argument(
        "--no-codegen", dest="codegen", action="store_false",
        help="force whole-stage code generation off (closure-chained "
             "interpreted pipeline)",
    )
    parser.add_argument(
        "--memory-budget", type=int, metavar="BYTES",
        help="bound the unified memory pool (cached partitions + shuffle "
             "buckets) to this many bytes; overflow evicts LRU cached "
             "partitions and spills shuffle buckets to disk",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="statically analyse the query and print diagnostics instead "
             "of running it; exits 1 when any error-severity diagnostic "
             "is reported",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="with --lint, how to render the diagnostics (default text)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the query under the profiler and print the per-phase/"
             "per-operator breakdown after the results",
    )
    parser.add_argument(
        "--profile-events", metavar="FILE",
        help="with --profile, also write the Spark-UI-style event log "
             "as JSON Lines to FILE",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run under the concurrency sanitizer (lock-order analysis "
             "+ lockset race detection; findings print to stderr; "
             "equivalent to RUMBLE_SANITIZE=1)",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the multi-tenant JSONiq query server "
                    "(POST /query, GET /status, GET /metrics; "
                    "see docs/serving.md).",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default "
        "127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8090,
        help="bind port (default 8090; 0 picks a free port)",
    )
    parser.add_argument(
        "--executors", type=int, default=4,
        help="simulated executors per tenant engine (default 4)",
    )
    parser.add_argument(
        "--parallelism", type=int, default=8,
        help="default RDD parallelism per tenant engine (default 8)",
    )
    parser.add_argument(
        "--max-concurrent", type=int, default=4,
        help="queries executing at once, server-wide (default 4)",
    )
    parser.add_argument(
        "--tenant-quota", type=int, default=2,
        help="concurrent queries per tenant (default 2)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=32,
        help="waiting queries before load shedding with 429 (default 32)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="default per-query timeout in seconds (default 30)",
    )
    parser.add_argument(
        "--plan-cache", type=int, default=128, metavar="ENTRIES",
        help="plan cache capacity per tenant; 0 disables (default 128)",
    )
    parser.add_argument(
        "--result-cache", type=int, default=64, metavar="ENTRIES",
        help="result cache capacity per tenant; 0 disables (default 64)",
    )
    parser.add_argument(
        "--cap", type=int, default=200,
        help="maximum items returned per query (default 200)",
    )
    parser.add_argument(
        "--mount", action="append", default=[], metavar="SCHEME=DIR",
        help="serve scheme:// URIs from a local directory",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="on SIGTERM/SIGINT, how long to wait for in-flight queries "
             "before cancelling them (default 5)",
    )
    parser.add_argument(
        "--event-log", metavar="DIR",
        help="flush per-tenant event logs to this directory as JSONL "
             "during graceful shutdown",
    )
    parser.add_argument(
        "--no-cancellation", dest="cancellation", action="store_false",
        help="disable cooperative cancellation (timeouts then only "
             "abandon the response; the worker runs to completion)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, metavar="SEED",
        help="inject deterministic serving-layer faults (slow client "
             "reads, worker deaths, cancellation races) with this seed; "
             "equivalent to RUMBLE_SERVER_CHAOS_SEED",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run the server under the concurrency sanitizer; findings "
             "print to stderr at shutdown (equivalent to "
             "RUMBLE_SANITIZE=1)",
    )
    return parser


def serve_main(argv) -> int:
    arguments = build_serve_parser().parse_args(argv)
    import asyncio
    import signal

    from repro.core.config import RumbleConfig
    from repro.server.http import serve
    from repro.server.service import QueryService
    from repro.spark import storage
    from repro.spark.faults import FaultPlan

    if arguments.sanitize:
        from repro import sanitizer

        sanitizer.enable()
    for mount in arguments.mount:
        scheme, _, root = mount.partition("=")
        if not root:
            print("bad --mount (expected SCHEME=DIR):", mount,
                  file=sys.stderr)
            return 2
        storage.REGISTRY.mount(scheme, root)
    fault_plan = None
    if arguments.chaos_seed is not None:
        fault_plan = FaultPlan(
            seed=arguments.chaos_seed,
            slow_client_rate=0.05,
            worker_death_rate=0.05,
            cancel_race_rate=0.05,
        )
    try:
        session_config = RumbleConfig(
            materialization_cap=arguments.cap,
            plan_cache_size=arguments.plan_cache,
            result_cache_size=arguments.result_cache,
        )
        service = QueryService(
            max_concurrent=arguments.max_concurrent,
            tenant_quota=arguments.tenant_quota,
            queue_limit=arguments.queue_limit,
            default_timeout=arguments.timeout,
            executors=arguments.executors,
            parallelism=arguments.parallelism,
            session_config=session_config,
            result_cap=arguments.cap,
            drain_timeout=arguments.drain_timeout,
            cancellation=arguments.cancellation,
            fault_plan=fault_plan,
            event_log_dir=arguments.event_log,
        )
    except ValueError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2

    def ready(host: str, port: int) -> None:
        # The exact line tests and tooling wait for before connecting.
        print("listening on http://{}:{}".format(host, port), flush=True)

    try:
        summary = asyncio.run(serve(
            service, host=arguments.host, port=arguments.port, ready=ready,
            drain_timeout=arguments.drain_timeout,
            shutdown_signals=(signal.SIGTERM, signal.SIGINT),
        ))
    except KeyboardInterrupt:
        # Signal handlers could not be installed on this platform and
        # Ctrl-C arrived the classic way: exit without a drain summary.
        return 0
    print(
        "drained: {} completed, {} cancelled at the drain deadline".format(
            summary.get("drained", 0),
            summary.get("cancelled_at_deadline", 0),
        ),
        file=sys.stderr,
    )
    _report_sanitizer()
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    arguments = build_parser().parse_args(argv)
    try:
        config = RumbleConfig(
            materialization_cap=arguments.cap, warn_on_cap=True,
            parse_mode=arguments.parse_mode,
            adaptive=arguments.adaptive,
            memory_budget=arguments.memory_budget,
            sanitize=arguments.sanitize,
            columnar=arguments.columnar,
            codegen=arguments.codegen,
        )
    except ValueError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    if arguments.chaos_seed is not None:
        from repro.core import make_engine
        from repro.spark import FaultPlan

        fault_plan = FaultPlan(
            seed=arguments.chaos_seed,
            crash_rate=arguments.chaos_crash_rate,
            executor_death_rate=arguments.chaos_crash_rate / 4.0,
            fetch_failure_rate=arguments.chaos_fetch_rate,
            slow_task_rate=arguments.chaos_slow_rate,
        )
        engine = make_engine(config=config, fault_plan=fault_plan)
    else:
        engine = Rumble(config=config)
    for mount in arguments.mount:
        scheme, _, root = mount.partition("=")
        if not root:
            print("bad --mount (expected SCHEME=DIR):", mount,
                  file=sys.stderr)
            return 2
        engine.mount(scheme, root)

    if arguments.shell:
        RumbleShell(engine).run(sys.stdin)
        return 0

    if arguments.query_file:
        with open(arguments.query_file, "r", encoding="utf-8") as handle:
            query_text = handle.read()
    elif arguments.query_option:
        query_text = arguments.query_option
    elif arguments.query:
        query_text = arguments.query
    else:
        build_parser().print_usage(sys.stderr)
        return 2

    if arguments.lint:
        return _lint(query_text, arguments.format)

    try:
        return _run(engine, query_text, arguments)
    except JsoniqException as error:
        print("error: {}".format(error), file=sys.stderr)
        return 1
    finally:
        _report_sanitizer()


def _run(engine: Rumble, query_text: str, arguments) -> int:
    """Execute (or profile) one query; shared exit path for main()."""
    if arguments.profile:
        report = engine.profile(query_text, cap=arguments.cap)
        for item in report.items:
            print(item.serialize())
        print(report.render())
        if arguments.profile_events:
            from repro.obs import EventLog

            log = EventLog()
            log.events = list(report.events)
            try:
                log.write(arguments.profile_events)
            except OSError as error:
                print("cannot write --profile-events file: {}".format(
                    error
                ), file=sys.stderr)
                return 1
            print("wrote {} event(s) to {}".format(
                len(report.events), arguments.profile_events
            ))
        _report_chaos(engine, arguments)
        return 0
    result = engine.query(query_text)
    if arguments.output:
        files = result.write_json_lines(arguments.output)
        print("wrote {} part file(s) to {}".format(
            len(files), arguments.output
        ))
        _report_chaos(engine, arguments)
        return 0
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for item in result.collect():
            print(item.serialize())
    _report_chaos(engine, arguments)
    return 0


def _lint(query_text: str, output_format: str) -> int:
    """Run the linter and render its findings; exit 1 on errors."""
    from repro.jsoniq.analysis.diagnostics import ERROR
    from repro.jsoniq.analysis.linter import lint_query

    diagnostics = lint_query(query_text)
    if output_format == "json":
        import json

        print(json.dumps([d.to_dict() for d in diagnostics], indent=2))
    elif diagnostics:
        for diagnostic in diagnostics:
            print(diagnostic.render())
    else:
        print("no issues found")
    return 1 if any(d.severity == ERROR for d in diagnostics) else 0


def _report_sanitizer() -> None:
    """Print any uncaptured sanitizer findings on stderr."""
    from repro import sanitizer

    if not sanitizer.enabled():
        return
    findings = sanitizer.drain_reports()
    for report in findings:
        print(report.render(), file=sys.stderr)
    print(
        "sanitizer: {} report(s)".format(len(findings)), file=sys.stderr
    )


def _report_chaos(engine: Rumble, arguments) -> None:
    """After a chaos run, summarize injections and recoveries on stderr."""
    if arguments.chaos_seed is None:
        return
    counts = engine.spark.spark_context.faults.counts
    summary = ", ".join(
        "{}={}".format(kind, count)
        for kind, count in sorted(counts.items())
    ) or "no faults fired"
    print(
        "chaos[seed={}]: {}".format(arguments.chaos_seed, summary),
        file=sys.stderr,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
