"""Command-line interface: run JSONiq queries like the Rumble jar does.

Usage::

    python -m repro 'for $x in 1 to 3 return $x * $x'
    python -m repro --query-file query.jq --output out-dir
    python -m repro --shell
    echo 'count(json-file("data.json"));' | python -m repro --shell
"""

from __future__ import annotations

import argparse
import sys

from repro.core import Rumble, RumbleConfig
from repro.core.shell import RumbleShell
from repro.jsoniq.errors import JsoniqException


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run JSONiq queries on the Rumble reproduction engine.",
    )
    parser.add_argument(
        "query", nargs="?", help="JSONiq query text to execute"
    )
    parser.add_argument(
        "--query-file", "-f", help="read the query from a file"
    )
    parser.add_argument(
        "--output", "-o",
        help="write results as JSON Lines to this directory "
             "(parallel part files) instead of printing",
    )
    parser.add_argument(
        "--cap", type=int, default=200,
        help="maximum number of items to print (default 200)",
    )
    parser.add_argument(
        "--mount", action="append", default=[], metavar="SCHEME=DIR",
        help="serve scheme:// URIs from a local directory "
             "(e.g. --mount hdfs=/data)",
    )
    parser.add_argument(
        "--shell", action="store_true",
        help="start the interactive shell (reads stdin)",
    )
    return parser


def main(argv=None) -> int:
    arguments = build_parser().parse_args(argv)
    engine = Rumble(config=RumbleConfig(
        materialization_cap=arguments.cap, warn_on_cap=True,
    ))
    for mount in arguments.mount:
        scheme, _, root = mount.partition("=")
        if not root:
            print("bad --mount (expected SCHEME=DIR):", mount,
                  file=sys.stderr)
            return 2
        engine.mount(scheme, root)

    if arguments.shell:
        RumbleShell(engine).run(sys.stdin)
        return 0

    if arguments.query_file:
        with open(arguments.query_file, "r", encoding="utf-8") as handle:
            query_text = handle.read()
    elif arguments.query:
        query_text = arguments.query
    else:
        build_parser().print_usage(sys.stderr)
        return 2

    try:
        result = engine.query(query_text)
        if arguments.output:
            files = result.write_json_lines(arguments.output)
            print("wrote {} part file(s) to {}".format(
                len(files), arguments.output
            ))
            return 0
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for item in result.collect():
                print(item.serialize())
        return 0
    except JsoniqException as error:
        print("error: {}".format(error), file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
