"""The documented lock hierarchy of the serving stack.

``LOCK_ORDER`` lists every named lock in the repository from outermost
to innermost: a thread holding lock *i* may acquire lock *j* only when
``j`` appears **after** ``i`` in this list.  The ordering is derived
from the real nesting in the code (see ``docs/concurrency.md``):

* a serving worker holds its ``Session`` lock for the whole query, so
  everything the engine touches — caches, the executor pool, fault
  ledgers, the memory manager, storage, cancel tokens, metrics, the
  event log — nests inside it;
* the memory manager calls out to observability (counters + events)
  while shrinking, so ``spark.memory`` ranks before all ``obs.*``;
* metric instruments (``Counter``/``Gauge``) are leaves: nothing is
  ever acquired while holding one.

The runtime detector reports any acquisition edge that contradicts
this order (``hierarchy-violation``) and, independently, any cycle in
the observed edge graph (``potential-deadlock``) — so an undocumented
lock can still be caught by the cycle check.  The static ``RSL004``
rule enforces the same table over lexically nested ``with`` blocks,
using ``SITE_ATTRS`` to map ``self._lock``-style sites to lock names.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

LOCK_ORDER: Tuple[str, ...] = (
    "server.session",
    "server.service.busy",
    "server.plan_cache",
    "server.result_cache",
    "spark.cluster.pool",
    "spark.faults.plan",
    "spark.faults.manager",
    "spark.memory",
    "spark.shuffle.stats",
    "spark.storage.registry",
    "spark.columnar.ledger",
    "items.columnar.batch_cache",
    "cancel.token",
    "obs.metrics.registry",
    "obs.events",
    "obs.metrics.instrument",
)

RANK: Dict[str, int] = {name: rank for rank, name in enumerate(LOCK_ORDER)}

#: ``(class name, attribute name) -> lock name`` for the static lint:
#: inside class ``C``, ``with self.<attr>:`` acquires the named lock.
SITE_ATTRS: Dict[Tuple[str, str], str] = {
    ("Session", "_lock"): "server.session",
    ("QueryService", "_busy_lock"): "server.service.busy",
    ("PlanCache", "_lock"): "server.plan_cache",
    ("ResultCache", "_lock"): "server.result_cache",
    ("ExecutorPool", "_lock"): "spark.cluster.pool",
    ("FaultPlan", "_lock"): "spark.faults.plan",
    ("FaultManager", "_lock"): "spark.faults.manager",
    ("MemoryManager", "_lock"): "spark.memory",
    ("ShuffleStats", "_lock"): "spark.shuffle.stats",
    ("FileSystemRegistry", "_lock"): "spark.storage.registry",
    ("ColumnarLedger", "_lock"): "spark.columnar.ledger",
    ("ColumnBatchCache", "_lock"): "items.columnar.batch_cache",
    ("CancelToken", "_lock"): "cancel.token",
    ("MetricsRegistry", "_lock"): "obs.metrics.registry",
    ("EventLog", "_lock"): "obs.events",
    ("Counter", "_lock"): "obs.metrics.instrument",
    ("Gauge", "_lock"): "obs.metrics.instrument",
}


def rank_of(name: str) -> Optional[int]:
    return RANK.get(name)
