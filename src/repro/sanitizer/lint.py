"""The repository self-lint: RSL rules over our own Python AST.

The PR 3 diagnostics engine (``repro.jsoniq.analysis.diagnostics``)
gave queries a code/severity/position report format; this module points
the same machinery back at the repository's *implementation*, encoding
the concurrency conventions ``docs/concurrency.md`` documents:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
RSL001    error     attribute write on a ``@shared_state`` object outside
                    any ``with <lock>:`` scope (skipped for classes
                    marked ``async_confined=True`` — the static rule
                    cannot see thread confinement; the runtime lockset
                    tracker covers those)
RSL002    error     ``<lock>.acquire()`` outside a ``with`` statement and
                    without a matching ``.release()`` in an enclosing
                    ``try``/``finally``
RSL003    warning   blocking call (``time.sleep``, ``Future.result()``,
                    ``<lock>.acquire()``) directly inside an
                    ``async def`` — it would stall the event loop
RSL004    error     lexically nested lock acquisitions contradicting the
                    documented hierarchy (``repro.sanitizer.hierarchy``)
========  ========  =====================================================

Purely syntactic — nothing is imported or executed, so the lint runs on
any tree of ``*.py`` files: ``python -m repro.sanitizer.lint src/``.
Writes are tracked through ``self`` only and container mutation via
method calls (``list.append``) is out of scope, matching the runtime
tracker's write-only view.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import List, Optional, Set, Tuple

from repro.jsoniq.analysis.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    DiagnosticSink,
)
from repro.sanitizer.hierarchy import RANK, SITE_ATTRS

#: Lock-site attributes whose name alone identifies the hierarchy entry
#: (``self._lock`` needs the enclosing class; ``service._busy_lock``
#: does not, because exactly one class owns that attribute name).
UNIQUE_ATTRS = {}
for (_cls, _attr), _name in SITE_ATTRS.items():
    UNIQUE_ATTRS[_attr] = None if _attr in UNIQUE_ATTRS else _name
UNIQUE_ATTRS = {a: n for a, n in UNIQUE_ATTRS.items() if n is not None}


def _is_lock_like(expr: ast.AST) -> bool:
    """Heuristic: the expression names a mutex (``...lock...``)."""
    if isinstance(expr, ast.Attribute):
        return "lock" in expr.attr.lower()
    if isinstance(expr, ast.Name):
        return "lock" in expr.id.lower()
    return False


def _dotted(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted(expr.value)
        return None if base is None else base + "." + expr.attr
    return None


class _SharedInfo:
    __slots__ = ("shared", "allow", "confined")

    def __init__(self, shared: bool, allow: Set[str], confined: bool):
        self.shared = shared
        self.allow = allow
        self.confined = confined


def _parse_shared_decorator(node: ast.ClassDef) -> _SharedInfo:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Name):
            name = target.id
        else:
            continue
        if name != "shared_state":
            continue
        allow: Set[str] = set()
        confined = False
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == "allow" and isinstance(
                        kw.value, (ast.Tuple, ast.List, ast.Set)):
                    for elt in kw.value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str):
                            allow.add(elt.value)
                elif kw.arg == "async_confined" and isinstance(
                        kw.value, ast.Constant):
                    confined = bool(kw.value.value)
        return _SharedInfo(True, allow, confined)
    return _SharedInfo(False, set(), False)


class _Checker(ast.NodeVisitor):
    def __init__(self, sink: DiagnosticSink):
        self.sink = sink
        self.report = lambda code, severity, message, node: sink.report(
            code, severity, message,
            line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", 0),
        )
        self.class_stack: List[Tuple[str, _SharedInfo]] = []
        self.func_stack: List[Tuple[str, bool]] = []
        # Per-function lexical context (saved/restored across nested
        # defs: a ``with`` in the enclosing function does not protect
        # code that runs later inside a nested one).
        self.with_locks: List[Tuple[bool, Optional[str]]] = []
        self.if_stack: List[ast.If] = []
        self.released: Set[str] = set()

    # -- context management --------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append((node.name, _parse_shared_decorator(node)))
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_function(self, node, is_async: bool) -> None:
        self.func_stack.append((node.name, is_async))
        saved_with, self.with_locks = self.with_locks, []
        saved_if, self.if_stack = self.if_stack, []
        saved_released = self.released
        # The idiomatic pairing puts ``acquire()`` on the statement
        # *before* the ``try``, so an enclosing-scope check would miss
        # it; prescan the whole function for finally-releases instead.
        self.released = self._finally_releases(node)
        # Convention for internal helpers guarded by a *non-reentrant*
        # lock: a docstring declaring "caller holds the lock" asserts
        # the protection RSL001 cannot see lexically.
        doc = ast.get_docstring(node) or ""
        if "caller holds the lock" in doc.lower():
            self.with_locks.append((True, None))
        self.generic_visit(node)
        self.with_locks = saved_with
        self.if_stack = saved_if
        self.released = saved_released
        self.func_stack.pop()

    @staticmethod
    def _finally_releases(func_node) -> Set[str]:
        released: Set[str] = set()
        for sub in ast.walk(func_node):
            if not isinstance(sub, ast.Try):
                continue
            for stmt in sub.finalbody:
                for call in ast.walk(stmt):
                    if (isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Attribute)
                            and call.func.attr == "release"):
                        dotted = _dotted(call.func.value)
                        if dotted is not None:
                            released.add(dotted)
        return released

    def visit_If(self, node: ast.If) -> None:
        self.if_stack.append(node)
        self.generic_visit(node)
        self.if_stack.pop()

    def _done_guarded(self, dotted: Optional[str]) -> bool:
        """True when an enclosing ``if`` tested ``<dotted>.done()`` —
        ``task.result()`` on a completed asyncio task is not blocking."""
        if dotted is None:
            return False
        for branch in self.if_stack:
            for sub in ast.walk(branch.test):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "done"
                        and _dotted(sub.func.value) == dotted):
                    return True
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, True)

    def _lock_name_of(self, expr: ast.AST) -> Optional[str]:
        """Map a with-item lock expression to a hierarchy lock name."""
        if not isinstance(expr, ast.Attribute):
            return None
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            for cls_name, _info in reversed(self.class_stack):
                return SITE_ATTRS.get((cls_name, expr.attr))
        return UNIQUE_ATTRS.get(expr.attr)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            if not _is_lock_like(expr):
                continue
            name = self._lock_name_of(expr)
            rank = RANK.get(name) if name is not None else None
            if rank is not None:
                for _held_lockish, held_name in self.with_locks:
                    held_rank = RANK.get(held_name) if held_name else None
                    if held_rank is not None and held_rank > rank:
                        self.report(
                            "RSL004", ERROR,
                            "lock {!r} (rank {}) acquired while holding "
                            "{!r} (rank {}): contradicts the documented "
                            "hierarchy".format(
                                name, rank, held_name, held_rank
                            ),
                            expr,
                        )
                        break
            self.with_locks.append((True, name))
            pushed += 1
        self.generic_visit(node)
        del self.with_locks[len(self.with_locks) - pushed:]

    # -- RSL001: unlocked writes to shared state -----------------------------

    def _check_store(self, target: ast.AST, node: ast.AST) -> None:
        if not self.class_stack or not self.func_stack:
            return
        _cls_name, info = self.class_stack[-1]
        if not info.shared or info.confined:
            return
        func_name = self.func_stack[-1][0]
        if func_name in ("__init__", "__new__"):
            return
        attr: Optional[ast.Attribute] = None
        if isinstance(target, ast.Attribute):
            attr = target
        elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Attribute):
            attr = target.value
        if attr is None or not isinstance(attr.value, ast.Name):
            return
        if attr.value.id != "self" or attr.attr in info.allow:
            return
        if any(lockish for lockish, _name in self.with_locks):
            return
        self.report(
            "RSL001", ERROR,
            "write to shared state self.{} outside any 'with <lock>:' "
            "scope (class {} is @shared_state)".format(
                attr.attr, _cls_name
            ),
            node,
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store(node.target, node)
        self.generic_visit(node)

    # -- RSL002 / RSL003: calls ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        in_async = bool(self.func_stack) and self.func_stack[-1][1]
        if isinstance(func, ast.Attribute):
            if func.attr == "acquire" and _is_lock_like(func.value):
                dotted = _dotted(func.value) or "<lock>"
                if in_async:
                    self.report(
                        "RSL003", WARNING,
                        "blocking {}.acquire() directly inside an async "
                        "function would stall the event loop".format(dotted),
                        node,
                    )
                elif dotted not in self.released:
                    self.report(
                        "RSL002", ERROR,
                        "{}.acquire() without 'with' and without a "
                        "matching release() in an enclosing "
                        "try/finally".format(dotted),
                        node,
                    )
            elif (in_async and func.attr == "result"
                    and not self._done_guarded(_dotted(func.value))):
                self.report(
                    "RSL003", WARNING,
                    "blocking .result() directly inside an async function "
                    "would stall the event loop (await it instead)",
                    node,
                )
            elif (in_async and func.attr == "sleep"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"):
                self.report(
                    "RSL003", WARNING,
                    "time.sleep() directly inside an async function would "
                    "stall the event loop (use asyncio.sleep)",
                    node,
                )
        self.generic_visit(node)


def lint_source(source: str, filename: str = "<string>") -> List[Diagnostic]:
    sink = DiagnosticSink()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        sink.report(
            "RSL000", ERROR, "syntax error: {}".format(exc.msg),
            line=exc.lineno or 0, column=exc.offset or 0,
        )
        return sink.sorted()
    _Checker(sink).visit(tree)
    return sink.sorted()


def iter_python_files(paths) -> List[str]:
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs
                if d != "__pycache__" and not d.startswith(".")
            )
            out.extend(
                os.path.join(root, f) for f in sorted(files)
                if f.endswith(".py")
            )
    return out


def lint_paths(paths) -> List[Tuple[str, Diagnostic]]:
    findings: List[Tuple[str, Diagnostic]] = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(
            (filename, diag) for diag in lint_source(source, filename)
        )
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.sanitizer.lint <path> [path ...]",
              file=sys.stderr)
        return 2
    missing = [path for path in argv if not os.path.exists(path)]
    if missing:
        for path in missing:
            print("self-lint: no such path: {}".format(path),
                  file=sys.stderr)
        return 2
    findings = lint_paths(argv)
    for filename, diag in findings:
        print("{}:{}".format(filename, diag.render()))
    if findings:
        print("self-lint: {} finding(s)".format(len(findings)),
              file=sys.stderr)
        return 1
    print("self-lint: clean ({} files)".format(
        len(iter_python_files(argv))))
    return 0


if __name__ == "__main__":
    sys.exit(main())
