"""Instrumented locks and the global lock-order graph.

``san_lock(name)`` is the drop-in replacement for ``threading.Lock()``
used at every lock site in the repository.  With the sanitizer off it
returns a *plain* ``threading.Lock`` — the decision is taken once, at
lock construction, so the steady state pays nothing (no wrapper, no
branch, no extra attribute).  With the sanitizer on it returns a
:class:`SanLock` that, around the real lock, maintains:

* a per-thread stack of currently held locks (with cheap acquisition
  stacks captured by walking ``sys._getframe`` — ``traceback`` is an
  order of magnitude slower and would blow the 2x wall-clock budget);
* a process-wide *lock-order graph*: an edge ``A -> B`` whenever a
  thread acquires ``B`` while holding ``A``.  Locks are identified by
  their site **name** (lockdep's "lock class"), so two code paths that
  nest *instances* of the same two classes in opposite orders collide
  on the same pair of nodes even if no deadlock fires at runtime.

On each **new** edge the graph runs a depth-first reachability check;
a path ``B -> ... -> A`` closes a cycle and produces one
``potential-deadlock`` report carrying both acquisition stacks.  Each
edge is also checked against the documented hierarchy
(:mod:`repro.sanitizer.hierarchy`): an edge from a higher-ranked to a
lower-ranked name is a ``hierarchy-violation`` even when no cycle
exists yet.  Edges are recorded at acquisition *attempt* time, before
blocking on the real lock, so the report fires even for an acquisition
that would actually deadlock.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.sanitizer import reports as _reports
from repro.sanitizer.hierarchy import RANK
from repro.sanitizer.state import STATE, suppressed

Frame = Tuple[str, int, str]


def stack_from(frame, limit: int = 10) -> Tuple[Frame, ...]:
    """Walk an already-fetched frame into a cheap partial stack."""
    out: List[Frame] = []
    while frame is not None and len(out) < limit:
        code = frame.f_code
        out.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return tuple(out)


def capture_stack(skip: int = 2, limit: int = 10) -> Tuple[Frame, ...]:
    """A cheap partial stack: ``limit`` frames above ``skip`` callers."""
    try:
        frame = sys._getframe(skip)
    except ValueError:  # shallower than skip
        return ()
    return stack_from(frame, limit)


class _Held:
    __slots__ = ("lock", "name", "stack")

    def __init__(self, lock, name: str, stack: Tuple[Frame, ...]):
        self.lock = lock
        self.name = name
        self.stack = stack


_tls = threading.local()

#: Bumped on :func:`reset` to invalidate every thread's seen-context
#: cache (thread-locals cannot be cleared from the resetting thread).
_epoch = 0


def _held_stack() -> List[_Held]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def _seen_contexts() -> set:
    """(held names, acquired name) tuples this thread fully analysed.

    Membership means every ``held -> name`` edge was already offered to
    the graph with a real acquisition stack, so the hot path can skip
    ``capture_stack`` — the dominant cost for per-item lock traffic
    like metrics increments."""
    if getattr(_tls, "seen_epoch", None) != _epoch:
        _tls.seen_epoch = _epoch
        _tls.seen = set()
    return _tls.seen


def held_names() -> Tuple[str, ...]:
    return tuple(entry.name for entry in _held_stack())


def held_lock_ids() -> FrozenSet[int]:
    """Identities of the locks the current thread holds (for locksets).

    Memoized against a push/pop version counter: tracked writes are far
    more frequent than lock transitions, so most calls hit the cache."""
    version = getattr(_tls, "version", 0)
    cached = getattr(_tls, "ids_cache", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    ids = frozenset(id(entry.lock) for entry in _held_stack())
    _tls.ids_cache = (version, ids)
    return ids


def held_any() -> bool:
    """Whether the current thread holds any sanitized lock."""
    return bool(getattr(_tls, "stack", None))


def _push(entry: _Held) -> None:
    _held_stack().append(entry)
    _tls.version = getattr(_tls, "version", 0) + 1


def _pop(lock, flush: bool = True) -> None:
    stack = _held_stack()
    for index in range(len(stack) - 1, -1, -1):
        if stack[index].lock is lock:
            del stack[index]
            _tls.version = getattr(_tls, "version", 0) + 1
            if flush and not stack:
                # Outermost release: now safe to mirror any reports
                # recorded while this thread was inside a lock (the
                # mirror itself takes observability locks).  Callers
                # must have physically released the inner lock first —
                # the mirror may need that very lock.  Condition waits
                # pass ``flush=False`` because the condition's lock is
                # still held at pop time.
                _reports.flush_mirror()
            return
    # Tolerate an unmatched release: the lock may have been acquired
    # before enable() or the entry dropped by a capture-window reset.


# -- The lock-order graph ----------------------------------------------------

_graph_lock = threading.Lock()  # plain on purpose
_edges: Dict[Tuple[str, str], Tuple[Tuple[Frame, ...], Tuple[Frame, ...]]] = {}
_succ: Dict[str, Set[str]] = {}
_reported_cycles: Set[FrozenSet[str]] = set()
_reported_ranks: Set[Tuple[str, str]] = set()


def _find_path(start: str, goal: str) -> Optional[List[str]]:
    """DFS in ``_succ`` (caller holds ``_graph_lock``)."""
    seen = {start}
    trail: List[str] = [start]

    def walk(node: str) -> bool:
        if node == goal:
            return True
        for nxt in _succ.get(node, ()):
            if nxt in seen:
                continue
            seen.add(nxt)
            trail.append(nxt)
            if walk(nxt):
                return True
            trail.pop()
        return False

    return trail if walk(start) else None


def _record_edge(held: _Held, name: str, stack: Tuple[Frame, ...]) -> None:
    key = (held.name, name)
    cycle_path: Optional[List[str]] = None
    rank_violation = False
    with _graph_lock:
        is_new = key not in _edges
        if is_new:
            _edges[key] = (held.stack, stack)
            _succ.setdefault(held.name, set()).add(name)
            path = _find_path(name, held.name)
            if path is not None:
                nodes = frozenset(path)
                if nodes not in _reported_cycles:
                    _reported_cycles.add(nodes)
                    cycle_path = path
        rank_from = RANK.get(held.name)
        rank_to = RANK.get(name)
        if (rank_from is not None and rank_to is not None
                and rank_from > rank_to and key not in _reported_ranks):
            _reported_ranks.add(key)
            rank_violation = True
    if rank_violation:
        _reports.record(
            "hierarchy-violation",
            "acquired {!r} (rank {}) while holding {!r} (rank {}); the "
            "documented order is {!r} before {!r}".format(
                name, rank_to, held.name, rank_from, name, held.name
            ),
            stacks=[
                ("holding " + held.name, held.stack),
                ("acquiring " + name, stack),
            ],
            edge=[held.name, name],
        )
    if cycle_path is not None:
        stacks = [("new edge: {} -> {}".format(held.name, name), stack)]
        with _graph_lock:
            for a, b in zip(cycle_path, cycle_path[1:]):
                recorded = _edges.get((a, b))
                if recorded is not None:
                    stacks.append(
                        ("prior edge: {} -> {}".format(a, b), recorded[1])
                    )
        _reports.record(
            "potential-deadlock",
            "lock-order cycle: {} (locks {} and {} are taken in both "
            "orders)".format(
                " -> ".join([held.name, name] + cycle_path[1:]),
                held.name, name,
            ),
            stacks=stacks,
            cycle=[held.name] + cycle_path,
        )


#: Representative first-acquisition stack per lock name, reused by the
#: seen-context fast path (reports triggered from a fast-path entry show
#: a representative earlier site instead of the literal one).
_name_stacks: Dict[str, Tuple[Frame, ...]] = {}


def _note_acquire(lock, reentrant: bool = False) -> Optional[_Held]:
    """Analysis run at acquisition-attempt time; returns the held-stack
    entry to push once the real acquire succeeds."""
    if not STATE.active:
        return None
    if suppressed():
        return _Held(lock, lock.name, ())
    held_stack = _held_stack()
    context = (tuple(entry.name for entry in held_stack), lock.name)
    seen = _seen_contexts()
    analysed = context in seen
    if analysed:
        # Every edge this acquisition can contribute was already offered
        # to the graph; skip the (dominant) stack capture.
        stack = _name_stacks.get(lock.name, ())
    else:
        stack = capture_stack(3)
        _name_stacks.setdefault(lock.name, stack)
    entry = _Held(lock, lock.name, stack)
    for held in held_stack:
        if held.lock is lock:
            if not reentrant:
                _reports.record(
                    "recursive-lock",
                    "non-reentrant lock {!r} re-acquired by the thread "
                    "already holding it (guaranteed deadlock)".format(
                        lock.name
                    ),
                    stacks=[
                        ("first acquisition", held.stack),
                        ("re-acquisition",
                         stack if stack else capture_stack(3)),
                    ],
                )
            continue
        if held.name == lock.name:
            # Two sibling instances of one lock class: no ordering
            # information (the graph is keyed by class name).
            continue
        if not analysed:
            _record_edge(held, lock.name, stack)
    if not analysed:
        seen.add(context)
    return entry


class SanLock:
    """An instrumented non-reentrant mutex (``threading.Lock`` shape)."""

    __slots__ = ("name", "_inner")

    def __init__(self, name: str = "lock"):
        self.name = name
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        entry = _note_acquire(self)
        ok = self._inner.acquire(blocking, timeout)
        if ok and entry is not None:
            _push(entry)
        return ok

    def release(self) -> None:
        # Physical release first: _pop may flush deferred report
        # mirroring, which acquires observability locks — if this lock
        # *is* one of those, popping first would self-deadlock.  The
        # held stack is thread-local, so the reorder is safe.
        self._inner.release()
        _pop(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "SanLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class SanRLock:
    """An instrumented reentrant mutex (``threading.RLock`` shape).

    Only the outermost acquisition records graph edges and held-stack
    state; nested re-acquisitions by the owning thread are free.
    """

    __slots__ = ("name", "_inner", "_local")

    def __init__(self, name: str = "rlock"):
        self.name = name
        self._inner = threading.RLock()
        self._local = threading.local()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        depth = getattr(self._local, "depth", 0)
        entry = _note_acquire(self, reentrant=True) if depth == 0 else None
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._local.depth = depth + 1
            if entry is not None:
                _push(entry)
        return ok

    def release(self) -> None:
        depth = getattr(self._local, "depth", 1) - 1
        self._local.depth = depth
        # Physical release before _pop, as in SanLock.release: the
        # deferred-mirror flush must never run while this lock is held.
        self._inner.release()
        if depth == 0:
            _pop(self)

    def __enter__(self) -> "SanRLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class SanCondition:
    """An instrumented condition variable over a :class:`SanLock`.

    ``wait()`` releases the underlying lock inside the real condition,
    so the held-stack entry is popped for the duration and re-pushed
    (with a fresh stack) on wakeup — otherwise every lock acquired by
    the *woken* thread would appear nested inside the condition's lock.
    """

    __slots__ = ("name", "_san", "_inner")

    def __init__(self, lock: Optional[SanLock] = None,
                 name: str = "condition"):
        self._san = lock if lock is not None else SanLock(name)
        self.name = self._san.name
        self._inner = threading.Condition(self._san._inner)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._san.acquire(blocking, timeout)

    def release(self) -> None:
        self._san.release()

    def __enter__(self) -> "SanCondition":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def wait(self, timeout: Optional[float] = None) -> bool:
        # flush=False: the condition's lock is still physically held
        # here (the inner wait() releases it); flushing the deferred
        # report mirror now could re-acquire that very lock.  Pending
        # reports flush on the eventual plain release.
        _pop(self._san, flush=False)
        try:
            return self._inner.wait(timeout)
        finally:
            if STATE.active:
                _push(_Held(self._san, self.name, capture_stack(2)))

    def wait_for(self, predicate, timeout: Optional[float] = None):
        _pop(self._san, flush=False)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            if STATE.active:
                _push(_Held(self._san, self.name, capture_stack(2)))

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


# -- Factories: the only API the rest of the repository uses -----------------

def san_lock(name: str = "lock"):
    """A mutex for site ``name``: plain when the sanitizer is off."""
    if not STATE.active:
        return threading.Lock()
    return SanLock(name)


def san_rlock(name: str = "rlock"):
    if not STATE.active:
        return threading.RLock()
    return SanRLock(name)


def san_condition(name: str = "condition", lock=None):
    if not STATE.active:
        return threading.Condition(lock)
    if lock is not None and not isinstance(lock, SanLock):
        # Silently substituting a fresh lock would let enabling the
        # sanitizer change synchronization semantics: callers
        # coordinating via the original mutex would lose mutual
        # exclusion with the condition's waiters.
        raise TypeError(
            "san_condition(lock=...) needs a SanLock under the "
            "sanitizer (got {}); build the lock with "
            "san_lock()".format(type(lock).__name__)
        )
    return SanCondition(lock=lock, name=name)


def edges() -> Dict[Tuple[str, str], tuple]:
    with _graph_lock:
        return dict(_edges)


def reset() -> None:
    """Forget the observed graph (tests; enable/disable transitions)."""
    global _epoch
    with _graph_lock:
        _edges.clear()
        _succ.clear()
        _reported_cycles.clear()
        _reported_ranks.clear()
        _name_stacks.clear()
        _epoch += 1
