"""The sanitizer's report store.

Every detector (lock-order graph, lockset tracker, hierarchy check)
funnels its findings through :func:`record`.  Reports accumulate in a
process-wide list that tests and the CLI drain; while a
:func:`capture` block is active they are redirected into the caller's
box instead, which is how the seeded-race *positive* tests assert on a
report without tripping the suite-wide "no uncaptured reports" gate.

Uncaptured reports are also mirrored into any registered
:class:`repro.obs.Observability` instance as ``rumble.sanitizer.*``
counters and a ``SanitizerReport`` JSONL event.  The mirror runs under
:func:`repro.sanitizer.state.suppress` because the counters themselves
take sanitized locks — without suppression a report about lock misuse
could recursively generate reports about the reporting.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Iterable, List, Optional, Tuple

from repro.sanitizer.state import suppress

#: Event name mirrored into the JSONL event log (kept in sync with
#: ``repro.obs.events.SANITIZER_REPORT``; no import to avoid a cycle —
#: ``repro.obs`` imports the sanitizer for its locks).
SANITIZER_REPORT_EVENT = "SanitizerReport"

Frame = Tuple[str, int, str]  # (filename, lineno, function)


class Report:
    """One sanitizer finding.

    ``kind`` is a short machine tag: ``potential-deadlock``,
    ``data-race``, ``hierarchy-violation`` or ``recursive-lock``.
    ``stacks`` holds the *two* implicated acquisition/write stacks
    (named so the rendering says which is which).
    """

    __slots__ = ("kind", "message", "stacks", "details")

    def __init__(self, kind: str, message: str,
                 stacks: Iterable[Tuple[str, Iterable[Frame]]] = (),
                 **details):
        self.kind = kind
        self.message = message
        self.stacks = tuple((label, tuple(frames)) for label, frames in stacks)
        self.details = details

    def render(self) -> str:
        lines = ["[{}] {}".format(self.kind, self.message)]
        for label, frames in self.stacks:
            lines.append("  {}:".format(label))
            for filename, lineno, function in frames:
                lines.append(
                    "    {}:{} in {}".format(filename, lineno, function)
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "message": self.message,
            "stacks": [
                {
                    "label": label,
                    "frames": [
                        {"file": f, "line": n, "function": fn}
                        for f, n, fn in frames
                    ],
                }
                for label, frames in self.stacks
            ],
            **self.details,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Report({!r}, {!r})".format(self.kind, self.message)


_lock = threading.Lock()  # plain on purpose: guards the sanitizer itself
_reports: List[Report] = []
_captures: List["_Capture"] = []
_observers: "weakref.WeakSet" = weakref.WeakSet()
#: Reports whose mirroring is postponed because the recording thread
#: was holding sanitized locks at record time (mirroring takes the
#: observability locks itself — doing that under, say, the metrics
#: registry lock would self-deadlock).  Flushed by the lock layer when
#: the thread's held stack empties, and by :func:`drain_reports`.
_pending_mirror: List[Report] = []


def _holding_sanitized_locks() -> bool:
    from repro.sanitizer import locks as _locks
    return _locks.held_any()


class _Capture:
    """One open capture window.

    A window only diverts reports from the thread that opened it and
    from threads created *after* it opened (the workers the capturing
    test spawns).  A finding raised by a thread that already existed —
    a server worker, a background flusher — still reaches the global
    store and the observability mirror, so a concurrent genuine report
    cannot be swallowed by an unrelated test's capture block.
    """

    __slots__ = ("box", "owner", "preexisting")

    def __init__(self, box: List[Report], owner: int,
                 preexisting: frozenset):
        self.box = box
        self.owner = owner
        self.preexisting = preexisting

    def accepts(self, thread_id: int) -> bool:
        return thread_id == self.owner or thread_id not in self.preexisting


def record(kind: str, message: str,
           stacks: Iterable[Tuple[str, Iterable[Frame]]] = (),
           **details) -> Report:
    report = Report(kind, message, stacks, **details)
    defer = _holding_sanitized_locks()
    thread_id = threading.get_ident()
    with _lock:
        for window in reversed(_captures):
            if window.accepts(thread_id):
                window.box.append(report)
                return report
        _reports.append(report)
        if defer:
            _pending_mirror.append(report)
            return report
        sinks = list(_observers)
    _mirror(report, sinks)
    return report


def flush_mirror() -> None:
    """Mirror any reports recorded while sanitized locks were held."""
    if not _pending_mirror:
        return
    if _holding_sanitized_locks():
        return  # still unsafe; a later release will flush
    with _lock:
        pending = list(_pending_mirror)
        del _pending_mirror[:]
        sinks = list(_observers)
    for report in pending:
        _mirror(report, sinks)


def _mirror(report: Report, sinks) -> None:
    with suppress():
        for obs in sinks:
            try:
                obs.metrics.counter("rumble.sanitizer.reports").inc()
                obs.metrics.counter(
                    "rumble.sanitizer." + report.kind.replace("-", "_")
                ).inc()
                obs.events.emit(
                    SANITIZER_REPORT_EVENT,
                    kind=report.kind,
                    message=report.message,
                )
            except Exception:  # a broken sink must not mask the finding
                pass


@contextmanager
def capture():
    """Redirect reports raised inside the block into the yielded list.

    Captured reports never reach the global store or the observability
    mirror — they belong to the test that provoked them.  The window is
    scoped to the capturing thread and to threads started after it
    opened; findings from pre-existing background threads bypass it
    (see :class:`_Capture`).
    """
    box: List[Report] = []
    owner = threading.get_ident()
    preexisting = frozenset(
        t.ident for t in threading.enumerate() if t.ident is not None
    ) - {owner}
    window = _Capture(box, owner, preexisting)
    with _lock:
        _captures.append(window)
    try:
        yield box
    finally:
        with _lock:
            _captures.remove(window)


def all_reports() -> List[Report]:
    """A snapshot of the uncaptured reports recorded so far.

    Named so the accessor cannot shadow this submodule when re-exported
    from the package (``repro.sanitizer.reports`` stays the module).
    """
    with _lock:
        return list(_reports)


def drain_reports() -> List[Report]:
    flush_mirror()
    with _lock:
        out = list(_reports)
        del _reports[:]
        return out


def add_observer(obs) -> None:
    """Mirror future uncaptured reports into ``obs`` (held weakly)."""
    with _lock:
        _observers.add(obs)


def remove_observer(obs) -> None:
    with _lock:
        _observers.discard(obs)


def reset() -> None:
    with _lock:
        del _reports[:]
        del _pending_mirror[:]
