"""Eraser-style lockset race detection for ``@shared_state`` classes.

The classic Eraser algorithm, specialised to *writes*: for every field
of a registered shared object the tracker runs a small state machine —

* **exclusive** while only one thread has ever written the field
  (object construction and single-threaded phases stay silent and
  refine nothing — so the ubiquitous "initialize unlocked in the
  constructor, then publish" pattern never false-positives); while
  every recorded write still comes from ``__init__``, a write from a
  different thread *transfers ownership* instead of sharing — the
  "main constructs, worker uses" handoff;
* on the first write from a *second* thread the field becomes
  **shared** and its candidate lockset ``C`` starts as the locks that
  write holds;
* every later write refines ``C`` by intersection with the locks the
  writer holds.  ``C`` going empty means no single lock protected all
  writes — a ``data-race`` report carrying the two implicated write
  stacks.

We deliberately track writes only (reads would require instrumenting
``__getattribute__``, whose cost is far beyond the sanitizer's 2x
wall-clock budget); the serving stack's invariants are all of the
"every mutation holds the structure's lock" form, so write-write
coverage is what the manual audit was checking by hand.  For the same
budget reason, steady-state writes (same owner while exclusive; held
set covering the candidate lockset while shared) skip the per-write
stack capture: the "previous write" stack in a report is then a
*representative* earlier write of the field, not the literal last one.

Instrumentation is installed by swapping the registered class's
``__setattr__`` at :func:`repro.sanitizer.enable` time (the decorator
alone is free), so existing instances are covered too.  Locks are
identified per *instance* (``id``) — a lockset must prove that the same
actual mutex covered every write.  Because ``id`` values can be reused
after garbage collection, any tracked write issued from a function
named ``__init__`` wipes all recorded state for that object id: every
registered class initialises its fields in ``__init__``, so a recycled
id is re-virginised before its first post-construction write.

``@shared_state(allow=(...))`` exempts deliberately lock-free fields
(e.g. ``CancelToken.checks``, a racy-by-design observability counter).
``async_confined=True`` marks classes mutated only on the asyncio event
loop: the runtime tracker still watches them (a write from a second
thread starts a real lockset), but the static RSL001 rule — which
cannot see thread confinement — skips them.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.sanitizer import locks as _locks
from repro.sanitizer import reports as _reports
from repro.sanitizer.state import STATE, suppressed

Frame = Tuple[str, int, str]


class _FieldState:
    __slots__ = ("owner", "lockset", "stack", "thread", "reported",
                 "cls_name", "init_only")

    def __init__(self, owner: int, stack: Tuple[Frame, ...], thread: str,
                 cls_name: str, init_only: bool):
        self.owner = owner          # writing thread while exclusive
        self.lockset: Optional[FrozenSet[int]] = None  # None => exclusive
        self.stack = stack          # a representative write's stack
        self.thread = thread        # that writer's thread name
        self.reported = False
        self.cls_name = cls_name
        #: True while every write so far happened inside ``__init__``:
        #: the object can still be handed off to another thread.
        self.init_only = init_only


_REGISTRY: List[type] = []
_tracker_lock = threading.Lock()  # plain on purpose
_fields: Dict[Tuple[int, str], _FieldState] = {}
_by_id: Dict[int, Set[str]] = {}


def shared_state(cls: Optional[type] = None, *, allow=(),
                 async_confined: bool = False):
    """Register a class whose instances are shared across threads.

    Usable bare (``@shared_state``) or with options
    (``@shared_state(allow=("checks",))``).  Registration is free; the
    write-tracking ``__setattr__`` is only installed while the
    sanitizer is enabled.
    """
    def decorate(target: type) -> type:
        target.__san_shared__ = True
        target.__san_allow__ = frozenset(allow)
        target.__san_async_confined__ = bool(async_confined)
        _REGISTRY.append(target)
        if STATE.active:
            instrument(target)
        return target

    if cls is not None:
        return decorate(cls)
    return decorate


def registry() -> List[type]:
    return list(_REGISTRY)


def instrument(cls: type) -> None:
    if cls.__dict__.get("__san_instrumented__"):
        return
    orig = cls.__setattr__

    def tracking_setattr(self, name, value,
                         __orig=orig, __cls=cls):
        __orig(self, name, value)
        if STATE.active and not suppressed():
            if name not in __cls.__san_allow__:
                _track_write(self, __cls.__name__, name)

    cls.__san_orig_setattr__ = orig
    cls.__setattr__ = tracking_setattr
    cls.__san_instrumented__ = True


def deinstrument(cls: type) -> None:
    if not cls.__dict__.get("__san_instrumented__"):
        return
    cls.__setattr__ = cls.__san_orig_setattr__
    cls.__san_instrumented__ = False


def _track_write(obj, cls_name: str, field: str) -> None:
    oid = id(obj)
    tid = threading.get_ident()
    frame = sys._getframe(2)  # the code that performed the write
    in_init = frame.f_code.co_name == "__init__"
    race: Optional[Tuple[_FieldState, Tuple[Frame, ...], str]] = None
    with _tracker_lock:
        if in_init:
            # A constructor write: this object id is (being) born, so
            # any state recorded under the same id belongs to a dead,
            # garbage-collected predecessor.  Wipe it — otherwise id
            # reuse would fabricate cross-object "races".
            for name in _by_id.pop(oid, ()):
                _fields.pop((oid, name), None)
        key = (oid, field)
        st = _fields.get(key)
        if st is None or st.cls_name != cls_name:
            _fields[key] = _FieldState(
                tid, _locks.stack_from(frame, 8),
                threading.current_thread().name, cls_name, in_init
            )
            _by_id.setdefault(oid, set()).add(field)
            return
        if st.reported:
            return
        if st.lockset is None and st.owner == tid:
            # Steady single-threaded phase (classic Eraser
            # "exclusive"): no lockset refinement, and the first
            # write's (representative) stack is kept — capturing one
            # per write is the dominant cost on per-item paths like
            # metrics increments.
            if not in_init:
                st.init_only = False
            return
        if st.lockset is None and st.init_only:
            # Ownership handoff: every write so far happened during
            # construction, so the constructing thread published the
            # object to exactly this thread ("main builds, worker
            # uses").  Stay exclusive under the new owner.
            st.owner = tid
            st.init_only = in_init
            st.stack = _locks.stack_from(frame, 8)
            st.thread = threading.current_thread().name
            return
        held = _locks.held_lock_ids()
        if st.lockset is None:
            # First write from a second thread: the candidate lockset
            # starts from *this* write's held set (canonical Eraser).
            # Intersecting with the exclusive phase would flag the
            # ubiquitous "initialize unlocked in the constructor, then
            # share" pattern, which is safe — publication happens
            # after construction.
            st.lockset = held
        elif st.lockset.issubset(held):
            # Steady shared phase: the intersection cannot shrink, so
            # neither the lockset nor the (representative) stack needs
            # touching.
            return
        else:
            st.lockset &= held
        if not st.lockset:
            st.reported = True
            race = (st, _locks.stack_from(frame, 8),
                    threading.current_thread().name)
        else:
            st.stack = _locks.stack_from(frame, 8)
            st.thread = threading.current_thread().name
    if race is not None:
        st, cur_stack, cur_thread = race
        _reports.record(
            "data-race",
            "{}.{}: writes from threads {!r} and {!r} share no common "
            "lock (candidate lockset went empty)".format(
                cls_name, field, st.thread, cur_thread
            ),
            stacks=[
                ("previous write ({})".format(st.thread), st.stack),
                ("current write ({})".format(cur_thread), cur_stack),
            ],
            object_class=cls_name,
            field=field,
        )


def reset() -> None:
    with _tracker_lock:
        _fields.clear()
        _by_id.clear()
