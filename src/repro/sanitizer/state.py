"""Process-wide activation state for the concurrency sanitizer.

Kept in its own tiny module so every other sanitizer component (and the
``san_lock`` call sites spread across the package) can consult one flag
without import cycles.  The flag flips in exactly two places:

* :func:`repro.sanitizer.enable` / ``disable`` (driven by
  ``RumbleConfig(sanitize=True)`` or tests), and
* import time, when ``RUMBLE_SANITIZE`` is set in the environment —
  which is the only way to instrument locks created at module import
  (e.g. the process-wide filesystem ``REGISTRY``).

The sanitizer's own bookkeeping must never recurse into itself: when a
report is mirrored into observability counters, those counters acquire
sanitized locks, which would record edges and possibly new reports.
:func:`suppress` marks such sections; instrumented code paths check
:func:`suppressed` and skip *analysis* (never the underlying locking).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager


class _State:
    __slots__ = ("active",)

    def __init__(self) -> None:
        self.active = False


STATE = _State()

_tls = threading.local()


def env_wants_sanitize() -> bool:
    value = os.environ.get("RUMBLE_SANITIZE", "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def suppressed() -> bool:
    """True while the current thread is inside sanitizer bookkeeping."""
    return getattr(_tls, "depth", 0) > 0


@contextmanager
def suppress():
    """Disable analysis (not locking) on this thread for a section."""
    _tls.depth = getattr(_tls, "depth", 0) + 1
    try:
        yield
    finally:
        _tls.depth -= 1
