"""The concurrency sanitizer: runtime + static correctness tooling.

Three layers (see ``docs/concurrency.md`` for the full contract):

1. **Instrumented locks** (:mod:`repro.sanitizer.locks`) — every lock
   site in the repository calls ``san_lock("<name>")`` instead of
   ``threading.Lock()``.  Disabled, that returns a plain lock (zero
   cost); enabled, a :class:`SanLock` that feeds a process-wide
   lock-order graph with cycle detection (``potential-deadlock``) and
   a documented-hierarchy check (``hierarchy-violation``).
2. **Lockset race detection** (:mod:`repro.sanitizer.lockset`) —
   classes annotated ``@shared_state`` get Eraser-style per-field
   write tracking (``data-race`` when the candidate lockset empties).
3. **Static self-lint** (:mod:`repro.sanitizer.lint`) — RSL rules over
   the repository's own AST; ``python -m repro.sanitizer.lint src/``.

Activation: ``RUMBLE_SANITIZE=1`` in the environment (covers locks
created at import time), ``RumbleConfig(sanitize=True)``, or calling
:func:`enable` directly.  All findings land in
:mod:`repro.sanitizer.reports`; attach an observability instance with
``add_observer`` to mirror them as ``rumble.sanitizer.*`` counters and
``SanitizerReport`` events.
"""

from __future__ import annotations

from repro.sanitizer import lockset as _lockset
from repro.sanitizer import locks as _locks
from repro.sanitizer import reports as _reports
from repro.sanitizer.locks import (
    SanCondition,
    SanLock,
    SanRLock,
    san_condition,
    san_lock,
    san_rlock,
)
from repro.sanitizer.lockset import shared_state
from repro.sanitizer.reports import (
    Report,
    add_observer,
    all_reports,
    capture,
    drain_reports,
    remove_observer,
)
from repro.sanitizer.state import STATE, env_wants_sanitize

# NB: the accessor is named ``all_reports`` (not ``reports``) so this
# re-export cannot rebind the package attribute ``repro.sanitizer
# .reports`` from the submodule to a function.

__all__ = [
    "SanCondition", "SanLock", "SanRLock", "Report",
    "san_condition", "san_lock", "san_rlock", "shared_state",
    "add_observer", "remove_observer", "capture", "all_reports",
    "drain_reports", "enable", "disable", "enabled", "reset",
]


def enabled() -> bool:
    return STATE.active


def enable() -> None:
    """Turn the sanitizer on process-wide.

    Locks constructed *after* this point are instrumented; already
    registered ``@shared_state`` classes are instrumented immediately
    (existing instances included, since the hook lives on the class).
    """
    if STATE.active:
        return
    STATE.active = True
    for cls in _lockset.registry():
        _lockset.instrument(cls)


def disable() -> None:
    """Turn the sanitizer off and drop its accumulated state.

    Outstanding :class:`SanLock` instances keep working (their
    analysis short-circuits on the flag); tracked classes get their
    original ``__setattr__`` back.  Reports already recorded survive
    until drained.
    """
    if not STATE.active:
        return
    STATE.active = False
    for cls in _lockset.registry():
        _lockset.deinstrument(cls)
    _locks.reset()
    _lockset.reset()


def reset() -> None:
    """Forget observed edges, locksets and reports (test isolation)."""
    _locks.reset()
    _lockset.reset()
    _reports.reset()


if env_wants_sanitize():
    enable()
